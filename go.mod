module shortcutpa

go 1.24
