package mst

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
	"shortcutpa/internal/subpart"
)

// Options configure an MST run.
type Options struct {
	// Baseline disables shortcuts inside the per-phase aggregations.
	Baseline bool
}

// Result is the MST outcome. InMST is indexed by graph edge index; on a
// connected graph exactly n-1 entries are true, and the selected tree is
// the unique MST under (weight, edge-id) lexicographic comparison.
type Result struct {
	InMST  []bool
	Weight graph.Weight
	Phases int
}

const inf62 = int64(1) << 62

// Run computes the MST of the engine's network.
func Run(e *core.Engine, opts Options) (*Result, error) {
	n := e.N
	g := e.Net.Graph()
	csr := g.CSR()

	leader := make([]int64, n)
	sameFrag := make([]bool, len(csr.PortTo)) // flat per-port fragment flags
	for v := 0; v < n; v++ {
		leader[v] = e.Net.ID(v)
	}
	dsu := graph.NewDSU(n)
	res := &Result{InMST: make([]bool, g.M())}

	// Phase-lifetime scratch, reused across the O(log n) Borůvka phases
	// (every entry is rewritten per phase).
	isLeader := make([]bool, n)
	cand := make([]congest.Val, n)
	chosen := make([]int, n)
	fi := &part.Info{
		Row:      csr.RowStart,
		SamePart: sameFrag,
		LeaderID: leader,
		IsLeader: isLeader,
	}

	maxPhases := 2*log2(n) + 8
	for phase := 0; ; phase++ {
		if phase > maxPhases {
			return nil, fmt.Errorf("mst: did not converge in %d phases", maxPhases)
		}
		fi.Dense, _ = dsu.Labels()
		for v := 0; v < n; v++ {
			isLeader[v] = leader[v] == e.Net.ID(v)
		}
		var agg subpart.Agg
		if opts.Baseline {
			agg = e.AggregatorOpts(fi, core.InfraOptions{NoShortcut: true})
		} else {
			agg = e.Aggregator(fi)
		}

		// Minimum outgoing edge per fragment: one PA-min over local
		// candidates (weight, edge id).
		hasAny := false
		for v := 0; v < n; v++ {
			cand[v] = congest.Val{A: inf62}
			frag := fi.SameRow(v)
			g.ForPorts(v, func(q, _, edge int) bool {
				if !frag[q] {
					val := congest.Val{A: int64(g.Edge(edge).W), B: int64(edge)}
					cand[v] = congest.MinPair(cand[v], val)
					hasAny = true
				}
				return true
			})
		}
		if !hasAny {
			break // every fragment is a full component
		}
		moe, err := agg.Aggregate(cand, congest.MinPair)
		if err != nil {
			return nil, fmt.Errorf("mst: phase %d MOE: %w", phase, err)
		}

		// The fragment's endpoint of the MOE marks its port.
		for v := 0; v < n; v++ {
			chosen[v] = -1
			if moe[v].A == inf62 {
				continue
			}
			frag := fi.SameRow(v)
			g.ForPorts(v, func(q, _, edge int) bool {
				if !frag[q] &&
					int64(g.Edge(edge).W) == moe[v].A &&
					int64(edge) == moe[v].B {
					chosen[v] = q
				}
				return true
			})
		}

		sj, err := subpart.StarJoin(e.Net, fi, chosen, agg, e.Mode == core.Deterministic, int64(phase), int64(16*n+4096))
		if err != nil {
			return nil, fmt.Errorf("mst: phase %d star joining: %w", phase, err)
		}

		// Joiners merge along their MOE: the edge enters the MST, the
		// fragment adopts the receiver's leader.
		for v := 0; v < n; v++ {
			if sj.Role[v] == subpart.RoleJoiner && chosen[v] >= 0 {
				res.InMST[g.EdgeIndex(v, chosen[v])] = true
				dsu.Union(v, g.Neighbor(v, chosen[v]))
			}
		}
		if err := e.AdoptJoinerLeaders(chosen, sj, leader, agg); err != nil {
			return nil, fmt.Errorf("mst: phase %d adopt: %w", phase, err)
		}
		if err := e.ExchangeLeaderIDs(leader, sameFrag); err != nil {
			return nil, fmt.Errorf("mst: phase %d exchange: %w", phase, err)
		}
		res.Phases = phase + 1
	}

	for i, in := range res.InMST {
		if in {
			res.Weight += g.Edge(i).W
		}
	}
	return res, nil
}

func log2(n int) int {
	k := 0
	for s := 1; s < n; s *= 2 {
		k++
	}
	return k
}
