package mst

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
)

func newEngine(t *testing.T, g *graph.Graph, seed int64, mode core.Mode) *core.Engine {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	e, err := core.NewEngine(net, mode)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkAgainstKruskal verifies the distributed MST equals the unique
// (weight, edge-id)-lexicographic MST.
func checkAgainstKruskal(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	want := make([]bool, g.M())
	for _, i := range g.KruskalMST() {
		want[i] = true
	}
	for i := 0; i < g.M(); i++ {
		if res.InMST[i] != want[i] {
			t.Fatalf("edge %d (%v): got inMST=%v, want %v", i, g.Edge(i), res.InMST[i], want[i])
		}
	}
	if res.Weight != g.MSTWeight() {
		t.Fatalf("weight %d, want %d", res.Weight, g.MSTWeight())
	}
}

func TestMSTOnSmallKnownGraph(t *testing.T) {
	// A 4-cycle with a chord: MST is forced by weights.
	g := graph.MustNew(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 2},
		{U: 3, V: 0, W: 3}, {U: 1, V: 3, W: 5},
	})
	e := newEngine(t, g, 1, core.Randomized)
	res, err := Run(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstKruskal(t, g, res)
}

func TestMSTRandomWeightedGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		g := graph.RandomizeWeights(graph.RandomConnected(40+rng.Intn(40), 0.08, rng), 50, rng)
		e := newEngine(t, g, int64(trial+10), core.Randomized)
		res, err := Run(e, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkAgainstKruskal(t, g, res)
	}
}

func TestMSTUniformWeightsTieBreaking(t *testing.T) {
	// All weights equal: the unique MST under edge-id tie-breaking must
	// still come out (exercises the lexicographic rule).
	g := graph.Grid(5, 6)
	e := newEngine(t, g, 3, core.Randomized)
	res, err := Run(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstKruskal(t, g, res)
}

func TestMSTBaselineMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomizeWeights(graph.RandomConnected(50, 0.07, rng), 30, rng)
	e := newEngine(t, g, 5, core.Randomized)
	res, err := Run(e, Options{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstKruskal(t, g, res)
}

func TestMSTOnGridStar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.RandomizeWeights(graph.GridStar(6, 25), 100, rng)
	e := newEngine(t, g, 7, core.Randomized)
	res, err := Run(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstKruskal(t, g, res)
	if res.Phases < 2 {
		t.Fatalf("suspiciously few phases: %d", res.Phases)
	}
}

func TestMSTPhaseCountLogarithmic(t *testing.T) {
	g := graph.Path(128)
	e := newEngine(t, g, 8, core.Randomized)
	res, err := Run(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstKruskal(t, g, res)
	if res.Phases > 2*8+8 {
		t.Fatalf("phases %d exceed O(log n) envelope", res.Phases)
	}
}

func TestMSTDeterministicMode(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 3; trial++ {
		g := graph.RandomizeWeights(graph.RandomConnected(45, 0.08, rng), 40, rng)
		e := newEngine(t, g, int64(trial+30), core.Deterministic)
		res, err := Run(e, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkAgainstKruskal(t, g, res)
	}
}

func TestMSTDeterministicIsReproducible(t *testing.T) {
	run := func() (graph.Weight, int64) {
		rng := rand.New(rand.NewSource(10))
		g := graph.RandomizeWeights(graph.Grid(6, 10), 25, rng)
		e := newEngine(t, g, 11, core.Deterministic)
		res, err := Run(e, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Weight, e.Net.Total().Rounds
	}
	w1, r1 := run()
	w2, r2 := run()
	if w1 != w2 || r1 != r2 {
		t.Fatalf("deterministic MST not reproducible: (%d,%d) vs (%d,%d)", w1, r1, w2, r2)
	}
}

func TestMSTOnTreeGraphSelectsAllEdges(t *testing.T) {
	// On a tree, the MST is the whole graph.
	rng := rand.New(rand.NewSource(12))
	g := graph.RandomizeWeights(graph.RandomTree(40, rng), 9, rng)
	e := newEngine(t, g, 13, core.Randomized)
	res, err := Run(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range res.InMST {
		if !in {
			t.Fatalf("tree edge %d not selected", i)
		}
	}
}
