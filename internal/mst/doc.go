// Package mst implements Corollary 1.3: a round- and message-optimal
// distributed Minimum Spanning Tree via Borůvka's algorithm [34] over
// Part-Wise Aggregation. Each phase, every fragment finds its
// minimum-weight outgoing edge with one PA call (ties broken by a unique
// edge identifier, making the MST unique), a star joining merges a constant
// fraction of the fragments along their chosen edges, and joiners adopt
// their receiver's leader; O(log n) phases complete the tree.
//
// The package also provides the no-shortcut baseline (the same Borůvka
// skeleton with PA aggregating over fragment spanning trees only), whose
// round complexity degrades to Θ(max fragment diameter) per phase — the
// round-suboptimal prior-work extreme the paper improves on.
package mst
