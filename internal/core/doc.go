// Package core implements the paper's primary contribution: round- and
// message-optimal Part-Wise Aggregation (Theorem 1.2), together with the
// shortcut-construction subroutines it relies on — the randomized CoreFast
// construction (Algorithm 4, after [19]), the deterministic heavy-path
// construction (Algorithms 7 and 8), block-parameter verification
// (Algorithm 2), star-joining-based leaderless PA (Algorithm 9 /
// Appendix B), and the prior-work baselines of Section 3.1.
package core
