package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
)

// Property-based end-to-end test: on randomly drawn (graph, partition,
// values, combiner, seed) instances, Solve must agree with the offline
// per-part reduction at every node. This is the Definition 1.1 contract
// under testing/quick's generator.

// paInstance is a randomly generated PA instance descriptor.
type paInstance struct {
	N      uint8 // 16..95 nodes
	Degree uint8 // edge density knob
	Parts  uint8 // 1..8 parts
	FIdx   uint8
	Seed   int64
}

func TestQuickSolveMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end sweep")
	}
	combiners := []congest.Combine{congest.SumPair, congest.MinPair, congest.MaxPair, congest.OrPair}
	prop := func(inst paInstance) bool {
		n := 16 + int(inst.N)%80
		k := 1 + int(inst.Parts)%8
		p := (1.5 + float64(inst.Degree%40)/10) / float64(n)
		rng := rand.New(rand.NewSource(inst.Seed))
		g := graph.RandomConnected(n, p, rng)
		parts := graph.RandomConnectedPartition(g, k, rng)
		f := combiners[int(inst.FIdx)%len(combiners)]

		net := congest.NewNetwork(g, inst.Seed)
		e, err := NewEngine(net, Randomized)
		if err != nil {
			t.Logf("engine: %v", err)
			return false
		}
		in, err := part.FromDense(net, parts)
		if err != nil {
			t.Logf("partition: %v", err)
			return false
		}
		vals := make([]congest.Val, n)
		for v := range vals {
			vals[v] = congest.Val{A: rng.Int63n(1 << 30), B: rng.Int63n(1 << 30)}
		}
		res, err := e.SolveLeaderless(in, vals, f)
		if err != nil {
			t.Logf("solve: %v", err)
			return false
		}
		want := offlineAggregate(in.Dense, vals, f)
		for v := 0; v < n; v++ {
			if res.Values[v] != want[in.Dense[v]] {
				t.Logf("node %d: got %+v want %+v", v, res.Values[v], want[in.Dense[v]])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
