package core

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
	"shortcutpa/internal/subpart"
)

// leaderless.go implements Appendix B / Algorithm 9: converting the PA
// algorithm with known leaders into one without the assumption, at a
// logarithmic overhead. Groups start as singletons (every node its own
// leader) and coarsen by repeated star joinings — each group picks an edge
// to another group inside the same part, a star joining designates
// joiners, and joiners adopt their receiver's leader — until groups equal
// parts, at which point every part knows a leader and the main algorithm
// runs.

// Aggregator returns a PA-backed aggregation service over partition in
// (with known leaders): infrastructure is built on first use and reused,
// so a star joining's O(log* n) aggregations pay construction once.
func (e *Engine) Aggregator(in *part.Info) subpart.Agg {
	return &paAgg{e: e, in: in}
}

// AggregatorOpts is Aggregator with infrastructure ablation options (used
// by application baselines, e.g. Borůvka without shortcuts).
func (e *Engine) AggregatorOpts(in *part.Info, opts InfraOptions) subpart.Agg {
	return &paAgg{e: e, in: in, opts: &opts}
}

type paAgg struct {
	e    *Engine
	in   *part.Info
	inf  *Infra
	opts *InfraOptions
}

// Aggregate implements subpart.Agg.
func (a *paAgg) Aggregate(vals []congest.Val, f congest.Combine) ([]congest.Val, error) {
	if a.inf == nil {
		var inf *Infra
		var err error
		if a.opts != nil {
			inf, err = a.e.BuildInfraOpts(a.in, *a.opts)
		} else {
			inf, err = a.e.BuildInfra(a.in)
		}
		if err != nil {
			return nil, err
		}
		a.inf = inf
	}
	res, err := a.e.SolveWithInfra(a.inf, vals, f)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// Message kinds for group coarsening.
const (
	kAdoptQ int32 = iota + 120
	kAdoptA
	kGroupX
)

// SolveLeaderless solves PA when no part leaders are known (Lemma B.1):
// O(log n) star-joining coarsening levels, then the leader-based Solve.
// On return, in has leaders installed (so follow-up calls can use Solve).
func (e *Engine) SolveLeaderless(in *part.Info, vals []congest.Val, f congest.Combine) (*Result, error) {
	if err := e.CoarsenToLeaders(in); err != nil {
		return nil, err
	}
	return e.Solve(in, vals, f)
}

// CoarsenToLeaders elects part leaders via Algorithm 9's coarsening,
// installing them into in.
func (e *Engine) CoarsenToLeaders(in *part.Info) error {
	n := e.N
	g := e.Net.Graph()
	csr := g.CSR()

	// Group state: leader IDs and flat group-membership per CSR port offset.
	leader := make([]int64, n)
	sameGroup := make([]bool, len(csr.PortTo))
	for v := 0; v < n; v++ {
		leader[v] = e.Net.ID(v)
	}
	dsu := graph.NewDSU(n) // engine-side dense labels for Dense/diagnostics

	// Level-lifetime scratch, reused across the O(log n) coarsening levels
	// (every entry is rewritten per level).
	isLeader := make([]bool, n)
	cand := make([]congest.Val, n)
	chosen := make([]int, n)
	gi := &part.Info{
		Row:      csr.RowStart,
		SamePart: sameGroup,
		LeaderID: leader,
		IsLeader: isLeader,
	}

	maxLevels := 2*log2(n) + 8
	for level := 0; ; level++ {
		if level > maxLevels {
			return fmt.Errorf("core: leaderless coarsening did not converge in %d levels", maxLevels)
		}
		gi.Dense, _ = dsu.Labels()
		for v := 0; v < n; v++ {
			isLeader[v] = leader[v] == e.Net.ID(v)
		}

		// Candidate out-edges: same original part, different group. Each
		// group picks the minimum (endpoint ID, port).
		agg := e.Aggregator(gi)
		hasAny := false
		for v := 0; v < n; v++ {
			cand[v] = congest.Val{A: 1 << 62}
			same := in.SameRow(v)
			group := sameGroup[csr.RowStart[v]:csr.RowStart[v+1]]
			for q := range same {
				if same[q] && !group[q] {
					val := congest.Val{A: e.Net.ID(v), B: int64(q)}
					cand[v] = congest.MinPair(cand[v], val)
					hasAny = true
				}
			}
		}
		if !hasAny {
			break // groups == parts everywhere
		}
		mins, err := agg.Aggregate(cand, congest.MinPair)
		if err != nil {
			return fmt.Errorf("core: coarsening level %d: %w", level, err)
		}
		for v := 0; v < n; v++ {
			chosen[v] = -1
			if mins[v].A == e.Net.ID(v) && mins[v].A != 1<<62 {
				chosen[v] = int(mins[v].B)
			}
		}

		res, err := subpart.StarJoin(e.Net, gi, chosen, agg, e.Mode == Deterministic, int64(level), e.maxBudget())
		if err != nil {
			return fmt.Errorf("core: star joining level %d: %w", level, err)
		}

		// Joiners adopt the receiver's leader: the chosen endpoint asks
		// across the edge, the answer rides an aggregation to the group.
		if err := e.AdoptJoinerLeaders(chosen, res, leader, agg); err != nil {
			return err
		}
		// Refresh group membership: everyone announces its (possibly new)
		// leader on every port.
		if err := e.ExchangeLeaderIDs(leader, sameGroup); err != nil {
			return err
		}
		for v := 0; v < n; v++ {
			if res.Role[v] == subpart.RoleJoiner && chosen[v] >= 0 {
				dsu.Union(v, g.Neighbor(v, chosen[v]))
			}
		}
	}

	in.SetLeaders(leader, nil)
	for v := 0; v < n; v++ {
		in.IsLeader[v] = leader[v] == e.Net.ID(v)
	}
	return nil
}

// AdoptJoinerLeaders completes a star joining's merges: joiner endpoints
// query the far side's leader ID across the chosen edge and the answer
// spreads group-wide via one aggregation; members of joiner groups update
// leader[] in place. Shared by Algorithm 9 and the Borůvka MST.
func (e *Engine) AdoptJoinerLeaders(chosen []int, res *subpart.StarJoinResult,
	leader []int64, agg subpart.Agg) error {
	n := e.N
	answer := make([]int64, n)
	for v := range answer {
		answer[v] = -1
	}
	ap := &adoptProc{res: res, chosen: chosen, leader: leader, answer: answer}
	if _, err := e.Net.RunNodes("core/adopt", ap, e.maxBudget()); err != nil {
		return err
	}
	vals := make([]congest.Val, n)
	for v := 0; v < n; v++ {
		vals[v] = congest.Val{A: answer[v]}
	}
	got, err := agg.Aggregate(vals, congest.MaxPair)
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if res.Role[v] == subpart.RoleJoiner && got[v].A >= 0 {
			leader[v] = got[v].A
		}
	}
	return nil
}

// ExchangeLeaderIDs refreshes same-group port flags from a one-round
// leader-ID exchange on every edge. sameGroup is flat over the CSR offsets
// (the part.Info.SamePart shape); every entry is rewritten.
func (e *Engine) ExchangeLeaderIDs(leader []int64, sameGroup []bool) error {
	p := &groupExchangeProc{rs: e.Net.Graph().CSR().RowStart, leader: leader, sameGroup: sameGroup}
	_, err := e.Net.RunNodes("core/group-exchange", p, e.maxBudget())
	return err
}

// adoptProc: joiner endpoints query the far side's leader ID over the
// chosen edge; answers land in the flat answer array.
type adoptProc struct {
	res    *subpart.StarJoinResult
	chosen []int
	leader []int64
	answer []int64
}

// Step implements congest.NodeProc.
func (p *adoptProc) Step(ctx *congest.Ctx, v int) bool {
	if ctx.Round() == 0 && p.res.Role[v] == subpart.RoleJoiner && p.chosen[v] >= 0 {
		ctx.Send(p.chosen[v], congest.Message{Kind: kAdoptQ})
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		switch m.Msg.Kind {
		case kAdoptQ:
			ctx.Send(m.Port, congest.Message{Kind: kAdoptA, A: p.leader[v]})
		case kAdoptA:
			p.answer[v] = m.Msg.A
		}
	})
	return false
}

// groupExchangeProc broadcasts leader IDs once and records same-group flags
// into the flat CSR-offset array.
type groupExchangeProc struct {
	rs        []int32
	leader    []int64
	sameGroup []bool
}

// Step implements congest.NodeProc.
func (p *groupExchangeProc) Step(ctx *congest.Ctx, v int) bool {
	if ctx.Round() == 0 {
		ctx.Broadcast(congest.Message{Kind: kGroupX, A: p.leader[v]})
	}
	row := p.sameGroup[p.rs[v]:p.rs[v+1]]
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		row[m.Port] = m.Msg.A == p.leader[v]
	})
	return false
}

func log2(n int) int {
	k := 0
	for s := 1; s < n; s *= 2 {
		k++
	}
	return k
}
