package core

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
)

func TestDeterministicSolveMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 6; trial++ {
		n := 40 + rng.Intn(60)
		g := graph.RandomConnected(n, 2.5/float64(n), rng)
		parts := graph.RandomConnectedPartition(g, 1+rng.Intn(6), rng)
		e, in := newTestEngine(t, g, parts, int64(trial+90), Deterministic)
		vals := randomVals(g.N(), rng)
		checkSolve(t, e, in, vals, congest.SumPair)
	}
}

func TestDeterministicSolveGridStar(t *testing.T) {
	const rows, cols = 8, 40
	g := graph.GridStar(rows, cols)
	e, in := newTestEngine(t, g, graph.GridStarRowParts(rows, cols), 91, Deterministic)
	rng := rand.New(rand.NewSource(92))
	res := checkSolve(t, e, in, randomVals(g.N(), rng), congest.MinPair)
	if res.Infra.SC.TotalEdges() == 0 {
		t.Fatal("deterministic construction claimed no edges for the row parts")
	}
}

func TestDeterministicDivisionQuality(t *testing.T) {
	const rows, cols = 8, 60
	g := graph.GridStar(rows, cols)
	e, in := newTestEngine(t, g, graph.GridStarRowParts(rows, cols), 93, Deterministic)
	inf, err := e.BuildInfra(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := inf.Div.Validate(e.Net, in, 8*int(e.D)); err != nil {
		t.Fatal(err)
	}
	// Uncovered row parts must have been split into >1 sub-part each of
	// size >= D (completeness) — so at most |P|/D sub-parts.
	counts := inf.Div.CountSubParts(in)
	for p, c := range counts {
		size := 0
		for _, dp := range in.Dense {
			if dp == p {
				size++
			}
		}
		if size <= int(e.D) {
			continue
		}
		if c > size/int(e.D)+1 {
			t.Fatalf("part %d (size %d) has %d sub-parts with D=%d, want <= %d",
				p, size, c, e.D, size/int(e.D)+1)
		}
	}
}

func TestDeterministicIsReproducible(t *testing.T) {
	run := func() (congest.Metrics, []congest.Val) {
		g := graph.GridStar(6, 30)
		e, in := newTestEngine(t, g, graph.GridStarRowParts(6, 30), 94, Deterministic)
		vals := make([]congest.Val, g.N())
		for v := range vals {
			vals[v] = congest.Val{A: int64(v)}
		}
		res, err := e.Solve(in, vals, congest.SumPair)
		if err != nil {
			t.Fatal(err)
		}
		return e.Net.Total(), res.Values
	}
	m1, v1 := run()
	m2, v2 := run()
	if m1 != m2 {
		t.Fatalf("deterministic mode metrics differ: %+v vs %+v", m1, m2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("deterministic mode results differ at node %d", i)
		}
	}
}

func TestDeterministicLeaderlessAndMST(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	g := graph.RandomConnected(50, 0.07, rng)
	parts := graph.RandomConnectedPartition(g, 5, rng)
	e, in := newLeaderlessInfo(t, g, parts, 96, Deterministic)
	vals := randomVals(g.N(), rng)
	res, err := e.SolveLeaderless(in, vals, congest.MinPair)
	if err != nil {
		t.Fatal(err)
	}
	want := offlineAggregate(in.Dense, vals, congest.MinPair)
	for v := 0; v < e.N; v++ {
		if res.Values[v] != want[in.Dense[v]] {
			t.Fatalf("node %d: got %+v want %+v", v, res.Values[v], want[in.Dense[v]])
		}
	}
}
