package core

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
)

func TestSolveNaiveMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomConnected(60, 0.05, rng)
		parts := graph.RandomConnectedPartition(g, 5, rng)
		e, in := newTestEngine(t, g, parts, int64(trial+40), Randomized)
		vals := randomVals(g.N(), rng)
		res, err := e.SolveNaive(in, vals, congest.SumPair)
		if err != nil {
			t.Fatal(err)
		}
		want := offlineAggregate(in.Dense, vals, congest.SumPair)
		for v := 0; v < e.N; v++ {
			if res.Values[v] != want[in.Dense[v]] {
				t.Fatalf("trial %d node %d: got %+v, want %+v", trial, v, res.Values[v], want[in.Dense[v]])
			}
		}
	}
}

func TestSolveBlocksOnlyMatchesOracle(t *testing.T) {
	const rows, cols = 6, 24
	g := graph.GridStar(rows, cols)
	e, in := newTestEngine(t, g, graph.GridStarRowParts(rows, cols), 43, Randomized)
	rng := rand.New(rand.NewSource(44))
	vals := randomVals(g.N(), rng)
	res, err := e.SolveBlocksOnly(in, vals, congest.MinPair)
	if err != nil {
		t.Fatal(err)
	}
	want := offlineAggregate(in.Dense, vals, congest.MinPair)
	for v := 0; v < e.N; v++ {
		if res.Values[v] != want[in.Dense[v]] {
			t.Fatalf("node %d: got %+v, want %+v", v, res.Values[v], want[in.Dense[v]])
		}
	}
}

// figure2Setup builds the Figure 2a instance with the BFS tree rooted at
// the apex, a partition into rows, and elected row leaders.
func figure2Setup(t *testing.T, rows, cols int, seed int64) (*Engine, *part.Info, []congest.Val) {
	t.Helper()
	g := graph.GridStar(rows, cols)
	net := congest.NewNetwork(g, seed)
	e, err := NewEngineAt(net, Randomized, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := part.FromDense(net, graph.GridStarRowParts(rows, cols))
	if err != nil {
		t.Fatal(err)
	}
	if err := part.ElectLeaders(net, in, int64(16*g.N()+4096)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	return e, in, randomVals(g.N(), rng)
}

func TestBlockPushMatchesOracle(t *testing.T) {
	const rows, cols = 8, 30
	e, in, vals := figure2Setup(t, rows, cols, 45)
	inf, err := e.BuildInfraOpts(in, InfraOptions{SingletonSubParts: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.BlockPushAggregate(inf, vals, congest.SumPair)
	if err != nil {
		t.Fatal(err)
	}
	want := offlineAggregate(in.Dense, vals, congest.SumPair)
	for v := 0; v < e.N; v++ {
		if res.Values[v] != want[in.Dense[v]] {
			t.Fatalf("node %d: got %+v, want %+v", v, res.Values[v], want[in.Dense[v]])
		}
	}
}

// figure2PerCallMessages measures per-aggregation messages (infrastructure
// prebuilt) for the sub-part algorithm vs the block-push strawman on the
// Figure 2a instance of the given height.
func figure2PerCallMessages(t *testing.T, rows, cols int, blockPush bool) int64 {
	t.Helper()
	e, in, vals := figure2Setup(t, rows, cols, int64(46+rows))
	var inf *Infra
	var err error
	if blockPush {
		inf, err = e.BuildInfraOpts(in, InfraOptions{SingletonSubParts: true})
	} else {
		inf, err = e.BuildInfra(in)
	}
	if err != nil {
		t.Fatal(err)
	}
	e.Net.ResetMetrics()
	if blockPush {
		_, err = e.BlockPushAggregate(inf, vals, congest.SumPair)
	} else {
		_, err = e.SolveWithInfra(inf, vals, congest.SumPair)
	}
	if err != nil {
		t.Fatal(err)
	}
	return e.Net.Total().Messages
}

func TestFigure2MessageScaling(t *testing.T) {
	// Section 3.1's separation is asymptotic in D: the block-push flow
	// pays Θ(nD) messages while the sub-part algorithm pays Θ̃(n) = Θ(m
	// polylog). The reproduction target is the SHAPE: per-node block-push
	// cost grows roughly linearly as D doubles; per-node sub-part cost is
	// nearly flat; so their ratio strictly widens. (Absolute crossover
	// needs D >> log n; EXPERIMENTS.md reports the sweep.)
	if testing.Short() {
		t.Skip("multi-thousand-node sweep")
	}
	const colsFactor = 8 // paper's D x (n-1)/D aspect: cols >> rows
	heights := []int{6, 12, 24}
	perNodeOurs := make([]float64, len(heights))
	perNodePush := make([]float64, len(heights))
	for k, rows := range heights {
		n := float64(rows*colsFactor*rows + 1)
		perNodeOurs[k] = float64(figure2PerCallMessages(t, rows, colsFactor*rows, false)) / n
		perNodePush[k] = float64(figure2PerCallMessages(t, rows, colsFactor*rows, true)) / n
	}
	for k := 1; k < len(heights); k++ {
		pushGrowth := perNodePush[k] / perNodePush[k-1]
		oursGrowth := perNodeOurs[k] / perNodeOurs[k-1]
		if pushGrowth < 1.5 {
			t.Fatalf("block-push per-node cost grew only %.2fx when D doubled (%v)", pushGrowth, perNodePush)
		}
		if oursGrowth > 1.3 {
			t.Fatalf("sub-part per-node cost grew %.2fx when D doubled — should be nearly flat (%v)", oursGrowth, perNodeOurs)
		}
		ratioPrev := perNodePush[k-1] / perNodeOurs[k-1]
		ratioCur := perNodePush[k] / perNodeOurs[k]
		if ratioCur <= ratioPrev {
			t.Fatalf("message gap did not widen with D: %.2f -> %.2f", ratioPrev, ratioCur)
		}
	}
}

func TestNaiveRoundSeparationOnDeepParts(t *testing.T) {
	// Row parts of the grid-star have diameter cols-1 >> graph diameter.
	// The naive intra-part algorithm must pay rounds ~ cols; the shortcut
	// algorithm stays near the (much smaller) graph diameter budget.
	const rows, cols = 8, 120
	g := graph.GridStar(rows, cols)
	parts := graph.GridStarRowParts(rows, cols)
	rng := rand.New(rand.NewSource(47))
	vals := randomVals(g.N(), rng)

	rounds := func(naive bool) int64 {
		e, in := newTestEngine(t, g, parts, 48, Randomized)
		e.Net.ResetMetrics()
		var err error
		if naive {
			_, err = e.SolveNaive(in, vals, congest.SumPair)
		} else {
			_, err = e.Solve(in, vals, congest.SumPair)
		}
		if err != nil {
			t.Fatal(err)
		}
		return e.Net.Total().Rounds
	}
	naive := rounds(true)
	ours := rounds(false)
	if naive < int64(cols) {
		t.Fatalf("naive rounds %d below part diameter %d — measurement suspect", naive, cols-1)
	}
	_ = ours // ours includes construction; the benchmark reports the split
}
