package core

import (
	"sort"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/part"
	"shortcutpa/internal/shortcut"
	"shortcutpa/internal/subpart"
)

// router.go is the event-driven realization of Algorithm 1 (PA given a
// sub-part division and a T-restricted shortcut) and Algorithm 2
// (verification). The paper presents Algorithm 1 as b lock-step iterations
// of (BlockRoute between representatives; broadcast inside sub-parts;
// one-hop crossing of sub-part exits; routing to representatives) followed
// by a symmetric convergecast and a symmetric result broadcast. Here the
// same flows run event-driven: every information-carrying transmission is a
// TOKEN that the receiver either adopts (first receipt — the edge joins the
// part's broadcast tree) or declines, and the convergecast runs back up the
// recorded broadcast tree. Lock-step iterations are a worst-case analysis
// device; the event-driven execution performs a subset of the same sends,
// so its round count is bounded by the paper's O(bD+c) / O(b(D+c)) budgets,
// which the budget-doubling driver (construct.go) verifies explicitly.
//
// Block traversal follows Observation 4.3's message accounting: only
// representatives inject; every representative on a block lays a BEACON
// path rootward along its block, and tokens descend only along recorded
// beacon paths, so block messages total O(#reps · D) rather than Ω(Σ|H_i|).
//
// Lemma 4.2's scheduling discipline is realized by per-port queues: the
// deterministic variant forwards the packet whose block root is shallowest
// (ties by part ID, then arrival order); the randomized variant uses FIFO
// queues with the whole part delayed by a pseudo-random offset in [0, c)
// derived from the part ID (Algorithm 1's "delay ~ U(c)").

// Router message kinds.
const (
	kToken int32 = iota + 80
	kBeacon
	kAckAdopt
	kAckDecline
	kAgg
	kAggEmpty
	kResult
	kComplain
)

// routerMode selects between solving PA and verifying coverage (Alg 2).
type routerMode int

const (
	modeSolve routerMode = iota + 1
	modeVerify
)

// routerConfig is shared read-only state for one router run.
type routerConfig struct {
	eng        *Engine
	in         *part.Info
	div        *subpart.Division
	sc         *shortcut.Shortcut
	mode       routerMode
	vals       []congest.Val
	f          congest.Combine
	det        bool
	delayRange int64 // randomized: parts delayed by hash(part) mod delayRange
	verifyAt   int64 // verify mode: round at which uncovered nodes complain
	castSeed   int64
}

// partDelay derives the part's start delay from its ID (all members compute
// it identically with no communication).
func (cfg *routerConfig) partDelay(partID int64) int64 {
	if cfg.delayRange <= 1 {
		return 0
	}
	x := uint64(partID) ^ uint64(cfg.castSeed)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x % uint64(cfg.delayRange))
}

// portPart keys per-(port, part) dedup sets.
type portPart struct {
	port int
	part int64
}

// queued is one message waiting on a port, with its scheduling priority.
type queued struct {
	pri1, pri2 int64 // (block-root depth, part ID) for the deterministic rule
	seq        int64
	msg        congest.Message
}

// routerRun is the router phase's shared state machine: one backing array
// of per-node records, stepped through the node index — no per-node proc
// objects or closures.
type routerRun struct {
	nodes []routerProc
}

// Step implements congest.NodeProc.
func (r *routerRun) Step(ctx *congest.Ctx, v int) bool { return r.nodes[v].step(ctx) }

// routerProc is one node's router state (a record in routerRun's backing
// array, not an individually allocated proc).
type routerProc struct {
	cfg    *routerConfig
	v      int
	myPart int64

	treePorts []int // sub-part tree ports (parent + children)
	exitPorts []int // same-part ports leaving my sub-part

	queues  map[int][]queued
	seq     int64
	started bool
	delay   int64

	informedVia map[int64]int // part -> first-receipt port; -1 at the origin
	tokenSent   map[portPart]bool
	beaconFwd   map[int64]bool
	beaconPorts map[int64][]int
	pendingAcks map[int64]int
	children    map[int64][]int
	aggWait     map[int64]int
	agg         map[int64]congest.Val
	aggHas      map[int64]bool
	aggSent     map[int64]bool

	ownVal     congest.Val
	complained bool

	gotResult bool
	result    congest.Val
}

// initRouterProc fills one routerRun record in place.
func initRouterProc(p *routerProc, cfg *routerConfig, v int) {
	*p = routerProc{
		cfg:         cfg,
		v:           v,
		myPart:      cfg.in.LeaderID[v],
		queues:      make(map[int][]queued),
		informedVia: make(map[int64]int),
		tokenSent:   make(map[portPart]bool),
		beaconFwd:   make(map[int64]bool),
		beaconPorts: make(map[int64][]int),
		pendingAcks: make(map[int64]int),
		children:    make(map[int64][]int),
		aggWait:     make(map[int64]int),
		agg:         make(map[int64]congest.Val),
		aggHas:      make(map[int64]bool),
		aggSent:     make(map[int64]bool),
	}
	if cfg.mode == modeSolve {
		p.ownVal = cfg.vals[v]
	}
	div := cfg.div
	if pp := div.ParentPort[v]; pp >= 0 {
		p.treePorts = append(p.treePorts, pp)
	}
	p.treePorts = append(p.treePorts, div.ChildPorts[v]...)
	same := cfg.in.SameRow(v)
	sub := div.SameSubRow(v)
	for q := range same {
		if same[q] && !sub[q] {
			p.exitPorts = append(p.exitPorts, q)
		}
	}
	p.delay = cfg.partDelay(p.myPart)
}

// enqueue schedules a message on a port with the discipline key for its part.
func (p *routerProc) enqueue(port int, m congest.Message) {
	pri1 := int64(0)
	if meta, ok := p.cfg.sc.Meta[p.v][m.A]; ok {
		pri1 = meta.RootDepth
	}
	p.queues[port] = append(p.queues[port], queued{pri1: pri1, pri2: m.A, seq: p.seq, msg: m})
	p.seq++
}

// flush sends at most one queued message per port, picking by discipline,
// and reports whether any queue still has work.
func (p *routerProc) flush(ctx *congest.Ctx) bool {
	pending := false
	ports := make([]int, 0, len(p.queues))
	for port := range p.queues {
		ports = append(ports, port)
	}
	sort.Ints(ports) // deterministic iteration
	for _, port := range ports {
		q := p.queues[port]
		if len(q) == 0 {
			continue
		}
		if ctx.CanSend(port) {
			best := 0
			if p.cfg.det {
				for i := 1; i < len(q); i++ {
					if lessKey(q[i], q[best]) {
						best = i
					}
				}
			}
			ctx.Send(port, q[best].msg)
			p.queues[port] = append(q[:best], q[best+1:]...)
		}
		if len(p.queues[port]) > 0 {
			pending = true
		}
	}
	return pending
}

func lessKey(a, b queued) bool {
	if a.pri1 != b.pri1 {
		return a.pri1 < b.pri1
	}
	if a.pri2 != b.pri2 {
		return a.pri2 < b.pri2
	}
	return a.seq < b.seq
}

// sendToken offers part i's token on port q at most once.
func (p *routerProc) sendToken(i int64, q int) {
	key := portPart{port: q, part: i}
	if p.tokenSent[key] {
		return
	}
	p.tokenSent[key] = true
	p.pendingAcks[i]++
	p.enqueue(q, congest.Message{Kind: kToken, A: i})
}

// spread performs the forwarding a node owes after adopting part i's token:
// members flood their sub-part tree and exit edges (Algorithm 1 lines
// 13-18); nodes on part i's block relay rootward and serve beacon paths.
func (p *routerProc) spread(i int64, via int) {
	cfg := p.cfg
	if i == p.myPart {
		for _, q := range p.treePorts {
			if q != via {
				p.sendToken(i, q)
			}
		}
		for _, q := range p.exitPorts {
			if q != via {
				p.sendToken(i, q)
			}
		}
	}
	if cfg.sc.OnBlock(p.v, i) {
		if cfg.sc.HasUp(p.v, i) {
			if pp := cfg.eng.Tree.ParentPort[p.v]; pp >= 0 && pp != via {
				p.sendToken(i, pp)
			}
		}
		for _, q := range p.beaconPorts[i] {
			if q != via {
				p.sendToken(i, q)
			}
		}
	}
}

// startActions fires once the part's delay expires: the leader originates
// its token; representatives of shortcut-using sub-parts lay beacons.
func (p *routerProc) startActions() {
	cfg := p.cfg
	if cfg.in.IsLeader[p.v] {
		p.informedVia[p.myPart] = -1
		p.spread(p.myPart, -1)
	}
	if cfg.div.IsRep[p.v] && !cfg.div.WholePart[p.v] &&
		cfg.sc.HasUp(p.v, p.myPart) && !p.beaconFwd[p.myPart] {
		if pp := cfg.eng.Tree.ParentPort[p.v]; pp >= 0 {
			p.beaconFwd[p.myPart] = true
			p.enqueue(pp, congest.Message{Kind: kBeacon, A: p.myPart})
		}
	}
}

func (p *routerProc) handle(in congest.Incoming) {
	cfg := p.cfg
	i := in.Msg.A
	switch in.Msg.Kind {
	case kToken:
		if _, ok := p.informedVia[i]; ok {
			p.enqueue(in.Port, congest.Message{Kind: kAckDecline, A: i})
			return
		}
		p.informedVia[i] = in.Port
		p.enqueue(in.Port, congest.Message{Kind: kAckAdopt, A: i})
		p.spread(i, in.Port)
	case kBeacon:
		known := false
		for _, q := range p.beaconPorts[i] {
			if q == in.Port {
				known = true
			}
		}
		if !known {
			p.beaconPorts[i] = append(p.beaconPorts[i], in.Port)
		}
		// Serve the beacon now if the token already passed through and the
		// aggregate has not been sealed (a post-seal adoption would orphan
		// the new child's aggregate; such terminals are reached by the
		// intra-part flood instead).
		if _, ok := p.informedVia[i]; ok && !p.aggSent[i] {
			p.sendToken(i, in.Port)
		}
		if cfg.sc.HasUp(p.v, i) && !p.beaconFwd[i] {
			if pp := cfg.eng.Tree.ParentPort[p.v]; pp >= 0 {
				p.beaconFwd[i] = true
				p.enqueue(pp, congest.Message{Kind: kBeacon, A: i})
			}
		}
	case kAckAdopt:
		p.pendingAcks[i]--
		p.children[i] = append(p.children[i], in.Port)
		p.aggWait[i]++
	case kAckDecline:
		p.pendingAcks[i]--
	case kAgg:
		val := congest.Val{A: in.Msg.B, B: in.Msg.C}
		if p.aggHas[i] {
			p.agg[i] = cfg.f(p.agg[i], val)
		} else {
			p.agg[i] = val
			p.aggHas[i] = true
		}
		p.aggWait[i]--
	case kAggEmpty:
		p.aggWait[i]--
	case kResult:
		if p.forwardResult(i, congest.Val{A: in.Msg.B, B: in.Msg.C}) && i == p.myPart {
			p.gotResult = true
			p.result = congest.Val{A: in.Msg.B, B: in.Msg.C}
		}
	case kComplain:
		// A same-part neighbor did not receive the token (verify mode):
		// record the complaint in this node's contributed bit.
		p.ownVal = congest.OrPair(p.ownVal, congest.Val{A: 1})
	}
}

// forwardResult pushes a result down the adopted subtree once; reports
// whether this was the first receipt.
func (p *routerProc) forwardResult(i int64, val congest.Val) bool {
	key := portPart{port: -1, part: -i - 1} // sentinel: result-seen marker
	if p.tokenSent[key] {
		return false
	}
	p.tokenSent[key] = true
	for _, q := range p.children[i] {
		p.enqueue(q, congest.Message{Kind: kResult, A: i, B: val.A, C: val.B})
	}
	return true
}

// tryComplete seals aggregates whose subtrees have fully reported: interior
// nodes send AGG up their adoption port; the origin (leader) computes the
// final value and starts the RESULT broadcast.
func (p *routerProc) tryComplete(round int64) {
	cfg := p.cfg
	parts := make([]int64, 0, len(p.informedVia))
	for i := range p.informedVia {
		parts = append(parts, i)
	}
	sort.Slice(parts, func(a, b int) bool { return parts[a] < parts[b] })
	for _, i := range parts {
		via := p.informedVia[i]
		if p.aggSent[i] || p.pendingAcks[i] != 0 || p.aggWait[i] != 0 {
			continue
		}
		if i == p.myPart && cfg.mode == modeVerify && round < cfg.verifyAt+2 {
			continue // complaints may still be en route
		}
		total := p.agg[i]
		has := p.aggHas[i]
		if i == p.myPart {
			if has {
				total = cfg.f(total, p.ownVal)
			} else {
				total = p.ownVal
				has = true
			}
		}
		p.aggSent[i] = true
		if via >= 0 {
			if has {
				p.enqueue(via, congest.Message{Kind: kAgg, A: i, B: total.A, C: total.B})
			} else {
				p.enqueue(via, congest.Message{Kind: kAggEmpty, A: i})
			}
		} else {
			// Origin: total = f(P_i); distribute it.
			p.gotResult = true
			p.result = total
			p.forwardResult(i, total)
		}
	}
}

// step runs one round of this node's router record.
func (p *routerProc) step(ctx *congest.Ctx) bool {
	cfg := p.cfg
	round := ctx.Round()
	if !p.started && round >= p.delay {
		p.started = true
		p.startActions()
	}
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		p.handle(in)
	})
	if cfg.mode == modeVerify && round == cfg.verifyAt && !p.complained {
		p.complained = true
		if _, informed := p.informedVia[p.myPart]; !informed {
			for q, ok := range cfg.in.SameRow(p.v) {
				if ok {
					p.enqueue(q, congest.Message{Kind: kComplain, A: p.myPart})
				}
			}
		}
	}
	p.tryComplete(round)
	pending := p.flush(ctx)
	if !p.started {
		return true
	}
	if cfg.mode == modeVerify && round < cfg.verifyAt+2 {
		return true
	}
	return pending
}

// runRouter executes one router phase over the whole network and returns
// the run (per-node records) for result extraction.
func runRouter(cfg *routerConfig, name string, budget int64) (*routerRun, error) {
	n := cfg.eng.N
	r := &routerRun{nodes: make([]routerProc, n)}
	for v := 0; v < n; v++ {
		initRouterProc(&r.nodes[v], cfg, v)
	}
	_, err := cfg.eng.Net.RunNodes(name, r, budget)
	return r, err
}
