package core

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/part"
	"shortcutpa/internal/tree"
)

// Mode selects between the paper's randomized and deterministic variants.
type Mode int

// Modes. Randomized achieves Õ(bD+c) rounds w.h.p.; Deterministic achieves
// Õ(b(D+c)) rounds (Theorem 1.2).
const (
	Randomized Mode = iota + 1
	Deterministic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Randomized:
		return "randomized"
	case Deterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Engine binds a network to the global substrate every PA call shares: the
// elected leader's BFS tree T (Section 2.2; all shortcuts are T-restricted)
// and the globally known quantities n and D (distributed to all nodes during
// setup, as synchronous CONGEST algorithms assume).
type Engine struct {
	Net   *congest.Network
	Tree  *tree.BFSTree
	Heavy *tree.HeavyPaths // built on first deterministic construction
	Mode  Mode
	N     int
	D     int64 // BFS-tree height: D <= diameter <= 2D

	budgetCap int64
}

// NewEngine elects a leader, builds the BFS tree, and distributes n and the
// tree height to all nodes (one convergecast and one broadcast). Setup costs
// O(D) rounds and O(m log n) messages and is included in the network's
// accounting under the tree/* and core/setup phases.
func NewEngine(net *congest.Network, mode Mode) (*Engine, error) {
	n := net.N()
	cap := int64(16*n + 4096)
	leader, err := tree.ElectLeader(net, cap)
	if err != nil {
		return nil, fmt.Errorf("core: leader election: %w", err)
	}
	t, err := tree.BuildBFS(net, leader, cap)
	if err != nil {
		return nil, fmt.Errorf("core: BFS tree: %w", err)
	}
	// Nodes learn (n, height): max-depth and count convergecast, then a
	// broadcast down the tree.
	vals := make([]congest.Val, n)
	for v := 0; v < n; v++ {
		vals[v] = congest.Val{A: int64(t.Depth[v]), B: 1}
	}
	agg, err := tree.Convergecast(net, t, vals,
		func(x, y congest.Val) congest.Val {
			return congest.Val{A: max(x.A, y.A), B: x.B + y.B}
		}, nil, cap)
	if err != nil {
		return nil, fmt.Errorf("core: setup convergecast: %w", err)
	}
	if _, err := tree.Broadcast(net, t, agg[t.Root], cap); err != nil {
		return nil, fmt.Errorf("core: setup broadcast: %w", err)
	}
	d := max(agg[t.Root].A, 1)
	return &Engine{
		Net:       net,
		Tree:      t,
		Mode:      mode,
		N:         n,
		D:         d,
		budgetCap: cap,
	}, nil
}

// initialBudget is the starting round/congestion budget for the doubling
// driver (Section 1.3's "simple doubling trick"): order D, doubled until the
// partition's verification passes.
func (e *Engine) initialBudget() int64 {
	return 2*(e.D+1) + 16
}

// maxBudget caps the doubling driver; pure intra-part spreading covers any
// connected part within O(n) rounds, so exceeding this indicates a bug.
func (e *Engine) maxBudget() int64 { return e.budgetCap }

// EnsureHeavy builds the heavy-path decomposition on demand (deterministic
// construction substrate).
func (e *Engine) EnsureHeavy() error {
	if e.Heavy != nil {
		return nil
	}
	h, err := tree.DecomposeHeavyPaths(e.Net, e.Tree, e.budgetCap)
	if err != nil {
		return fmt.Errorf("core: heavy paths: %w", err)
	}
	e.Heavy = h
	return nil
}

// requireLeaders verifies the Section 4 assumption that every node knows its
// part leader.
func requireLeaders(in *part.Info) error {
	for v, id := range in.LeaderID {
		if id < 0 {
			return fmt.Errorf("core: node %d has no known part leader (use SolveLeaderless)", v)
		}
	}
	return nil
}
