package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/part"
	"shortcutpa/internal/shortcut"
	"shortcutpa/internal/subpart"
)

// construct.go drives shortcut construction per Section 5.2 (randomized,
// Algorithm 4 around the CoreFast primitive of [19]) and the
// budget-doubling search of Section 1.3 ("our algorithms need not know the
// optimal values of block parameter and congestion, as a simple doubling
// trick can be used").
//
// One budget parameter R plays the roles of both the congestion threshold
// (CoreFast rejects a part's claim at an edge already carrying R parts in
// the current run) and the verification deadline (Algorithm 2 passes a part
// iff the Algorithm 1 broadcast covered it within the R-derived schedule).
// Parts that verify are frozen with their claims; the rest retry, and R
// doubles when a full round of retries makes no progress — so the final
// budget is within a constant factor of the best (bD + c) any shortcut of
// the graph admits, as the paper's doubling remark prescribes.

const kClaim int32 = 95

// Infra is the per-partition infrastructure a PA call needs: the coverage
// classification, the sub-part division, the shortcut, and the verified
// budget under which Algorithm 1 completes.
type Infra struct {
	In  *part.Info
	PB  *part.BFS
	Div *subpart.Division
	SC  *shortcut.Shortcut

	// Budget is the verified round budget R (the doubling knob).
	Budget int64
	// CastSeed fixes the randomized variant's part delays so the verified
	// schedule replays exactly in later Solve runs.
	CastSeed int64
	// Attempts records how many (CoreFast + verify) rounds construction
	// used, for experiment reporting.
	Attempts int
}

// routerCfg assembles the router configuration for this infrastructure.
func (inf *Infra) routerCfg(e *Engine, mode routerMode, vals []congest.Val, f congest.Combine) *routerConfig {
	cfg := &routerConfig{
		eng:      e,
		in:       inf.In,
		div:      inf.Div,
		sc:       inf.SC,
		mode:     mode,
		vals:     vals,
		f:        f,
		det:      e.Mode == Deterministic,
		castSeed: inf.CastSeed,
	}
	if e.Mode == Randomized {
		cfg.delayRange = inf.Budget
	}
	cfg.verifyAt = 2*inf.Budget + cfg.delayRange + 32
	return cfg
}

// runBudget is the hard round cap for one router run under budget R.
func (inf *Infra) runBudget(cfg *routerConfig) int64 {
	return 2*cfg.verifyAt + 2*inf.Budget + 256
}

// BuildInfra computes the full PA infrastructure for a partition with known
// leaders: coverage classification (radius-D intra-part BFS), a sub-part
// division, and a verified shortcut. Mode selects the randomized
// (Algorithms 3+4) or deterministic (Algorithms 6+7+8) pipeline.
func (e *Engine) BuildInfra(in *part.Info) (*Infra, error) {
	if err := requireLeaders(in); err != nil {
		return nil, err
	}
	pb, err := part.RestrictedBFS(e.Net, in, e.D, e.maxBudget())
	if err != nil {
		return nil, fmt.Errorf("core: coverage BFS: %w", err)
	}
	var div *subpart.Division
	if e.Mode == Deterministic {
		div, err = DeterministicDivision(e, in, pb)
	} else {
		div, err = subpart.RandomDivision(e.Net, in, pb, e.D, e.maxBudget())
	}
	if err != nil {
		return nil, fmt.Errorf("core: sub-part division: %w", err)
	}
	inf := &Infra{In: in, PB: pb, Div: div, CastSeed: e.Net.Seed()}
	if e.Mode == Deterministic {
		err = e.buildShortcutDeterministic(inf)
	} else {
		err = e.buildShortcutRandom(inf)
	}
	if err != nil {
		return nil, err
	}
	return inf, nil
}

// buildShortcutRandom is Algorithm 4: the shared driver around the
// CoreFast claim wave.
func (e *Engine) buildShortcutRandom(inf *Infra) error {
	return e.runConstructionDriver(inf, e.coreFast)
}

// runConstructionDriver repeats { claim wave for active parts; block setup;
// Algorithm 2 verification; freeze verified parts; drop failed claims }
// with the budget doubling on sustained failure — the outer loops of
// Algorithms 4 and 8 and the Section 1.3 doubling trick, shared by both
// construction pipelines.
func (e *Engine) runConstructionDriver(inf *Infra, claim func(*Infra, []int64) error) error {
	sc := shortcut.New(e.Tree, e.N)
	inf.SC = sc

	active := e.uncoveredParts(inf)
	inf.Budget = e.initialBudget()
	logN := 1
	for s := 1; s < e.N; s *= 2 {
		logN++
	}
	for len(active) > 0 {
		if inf.Budget > e.maxBudget() {
			return fmt.Errorf("core: construction exceeded budget cap %d with %d parts unverified",
				e.maxBudget(), len(active))
		}
		progressed := false
		for rep := 0; rep < logN && len(active) > 0; rep++ {
			inf.Attempts++
			if err := claim(inf, active); err != nil {
				return err
			}
			if err := shortcut.SetupBlocks(e.Net, sc, e.maxBudget()); err != nil {
				return fmt.Errorf("core: block setup: %w", err)
			}
			passed, err := e.verifyParts(inf, active)
			if err != nil {
				return err
			}
			next := active[:0]
			for _, id := range active {
				if passed[id] {
					progressed = true
				} else {
					sc.DropPart(id)
					next = append(next, id)
				}
			}
			active = next
		}
		if !progressed {
			inf.Budget *= 2
		}
	}
	// Final sanity verification over everything at the settled budget.
	if _, err := e.verifyParts(inf, nil); err != nil {
		return err
	}
	return nil
}

// uncoveredParts lists the part IDs that need shortcuts (not covered by the
// radius-D BFS), in deterministic order.
func (e *Engine) uncoveredParts(inf *Infra) []int64 {
	seen := make(map[int64]struct{})
	var out []int64
	for v := 0; v < e.N; v++ {
		if !inf.PB.Covered[v] {
			id := inf.In.LeaderID[v]
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// coreFast runs one claim wave: representatives of active parts send their
// part ID rootward along T; each node forwards each distinct part at most
// once per edge (one claim per round, FIFO), and an edge already carrying
// the threshold number of parts from this run rejects further parts, which
// then root their blocks below it ([19]'s CoreFast, with only the Õ(n/D)
// representatives claiming — Section 3.2's message-efficiency device).
func (e *Engine) coreFast(inf *Infra, active []int64) error {
	activeSet := make(map[int64]struct{}, len(active))
	for _, id := range active {
		activeSet[id] = struct{}{}
	}
	threshold := int(inf.Budget)
	n := e.N
	cp := &claimProc{
		e: e, inf: inf, active: activeSet, threshold: threshold,
		processed: make([]map[int64]struct{}, n),
		queue:     make([][]int64, n),
		accepted:  make([]int, n),
	}
	_, err := e.Net.RunNodes("core/corefast", cp, e.maxBudget())
	if err != nil {
		return fmt.Errorf("core: corefast: %w", err)
	}
	return nil
}

// claimProc is the shared CoreFast state machine: per-node dedup of
// processed parts, a FIFO of claims to forward up, and the per-run
// congestion count on the node's parent edge — all indexed by the stepped
// node.
type claimProc struct {
	e         *Engine
	inf       *Infra
	active    map[int64]struct{}
	threshold int

	processed []map[int64]struct{}
	queue     [][]int64
	accepted  []int // claims accepted onto the parent edge this run
}

// Step implements congest.NodeProc.
func (p *claimProc) Step(ctx *congest.Ctx, v int) bool {
	sc := p.inf.SC
	if ctx.Round() == 0 {
		p.processed[v] = make(map[int64]struct{})
		// Representatives of active (uncovered) parts start a claim for
		// their part.
		if p.inf.Div.IsRep[v] && !p.inf.Div.WholePart[v] {
			if _, ok := p.active[p.inf.In.LeaderID[v]]; ok {
				p.consider(v, p.inf.In.LeaderID[v])
			}
		}
	}
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		if in.Msg.Kind != kClaim {
			return
		}
		i := in.Msg.A
		// The child's edge now carries part i; remember the down-port.
		sc.AddDownPort(v, i, in.Port)
		p.consider(v, i)
	})
	// Forward one queued claim per round up the tree.
	if len(p.queue[v]) > 0 {
		pp := p.e.Tree.ParentPort[v]
		ctx.Send(pp, congest.Message{Kind: kClaim, A: p.queue[v][0]})
		p.queue[v] = p.queue[v][1:]
	}
	return len(p.queue[v]) > 0
}

// consider decides once per part whether to extend its claim over v's
// parent edge.
func (p *claimProc) consider(v int, i int64) {
	if _, done := p.processed[v][i]; done {
		return
	}
	p.processed[v][i] = struct{}{}
	if p.e.Tree.ParentPort[v] < 0 {
		return // tree root: claims stop here
	}
	if p.accepted[v] >= p.threshold {
		return // edge full this run: part i's block roots here
	}
	p.accepted[v]++
	p.inf.SC.ClaimUp(v, i)
	p.queue[v] = append(p.queue[v], i)
}

// verifyParts is Algorithm 2: run the Algorithm 1 broadcast with an
// arbitrary token, let uncovered nodes complain to covered part-neighbors,
// aggregate the complaint bit at each leader, and broadcast the verdict.
// It returns the set of part IDs that verified (complaint-free). With
// check == nil all parts are read; otherwise only those listed.
func (e *Engine) verifyParts(inf *Infra, check []int64) (map[int64]bool, error) {
	cfg := inf.routerCfg(e, modeVerify, nil, congest.OrPair)
	run, err := runRouter(cfg, "core/verify", inf.runBudget(cfg))
	var exceeded *congest.BudgetExceededError
	if err != nil && !errors.As(err, &exceeded) {
		return nil, fmt.Errorf("core: verify: %w", err)
	}
	want := make(map[int64]struct{}, len(check))
	for _, id := range check {
		want[id] = struct{}{}
	}
	passed := make(map[int64]bool)
	for v := 0; v < e.N; v++ {
		if !inf.In.IsLeader[v] {
			continue
		}
		id := inf.In.LeaderID[v]
		if check != nil {
			if _, ok := want[id]; !ok {
				continue
			}
		}
		p := &run.nodes[v]
		passed[id] = exceeded == nil && p.gotResult && p.result.A == 0
	}
	if check == nil && exceeded != nil {
		return nil, fmt.Errorf("core: final verification did not settle: %w", err)
	}
	if check == nil {
		// Report the smallest failing ID, not the first map-iteration hit:
		// error strings are part of the bit-identical execution contract
		// (the scenario-equivalence harness compares them), so the choice
		// must be deterministic.
		worst := int64(math.MaxInt64)
		for id, ok := range passed {
			if !ok && id < worst {
				worst = id
			}
		}
		if worst != math.MaxInt64 {
			return nil, fmt.Errorf("core: part %d failed final verification", worst)
		}
	}
	return passed, nil
}
