package core

import (
	"math/rand"
	"strings"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
	"shortcutpa/internal/shortcut"
)

// Failure-injection and edge-case tests for the core engine: wrong inputs
// must fail loudly and precisely, never silently mis-aggregate.

func TestEngineOnDisconnectedGraphFails(t *testing.T) {
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	net := congest.NewNetwork(g, 1)
	if _, err := NewEngine(net, Randomized); err == nil {
		t.Fatal("NewEngine accepted a disconnected graph")
	}
}

func TestSolveWrongValueCount(t *testing.T) {
	g := graph.Path(6)
	e, in := newTestEngine(t, g, graph.WholePartition(6), 2, Randomized)
	inf, err := e.BuildInfra(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SolveWithInfra(inf, make([]congest.Val, 3), congest.SumPair); err == nil {
		t.Fatal("SolveWithInfra accepted a short value slice")
	}
}

func TestSolveSingleNodeGraph(t *testing.T) {
	g := graph.MustNew(1, nil)
	e, in := newTestEngine(t, g, graph.WholePartition(1), 3, Randomized)
	res, err := e.Solve(in, []congest.Val{{A: 7, B: 9}}, congest.SumPair)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != (congest.Val{A: 7, B: 9}) {
		t.Fatalf("singleton aggregate %+v", res.Values[0])
	}
}

func TestSolveTwoNodeGraphBothModes(t *testing.T) {
	for _, mode := range []Mode{Randomized, Deterministic} {
		g := graph.Path(2)
		e, in := newTestEngine(t, g, graph.WholePartition(2), 4, mode)
		res, err := e.Solve(in, []congest.Val{{A: 1}, {A: 2}}, congest.SumPair)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for v := 0; v < 2; v++ {
			if res.Values[v].A != 3 {
				t.Fatalf("%v node %d: %+v", mode, v, res.Values[v])
			}
		}
	}
}

func TestBlockPushRejectsMultiBlockInstances(t *testing.T) {
	// On a non-apexed path with a deep part, singleton claims get truncated
	// by thresholds into several blocks; the strawman must refuse rather
	// than mis-aggregate.
	g := graph.Path(64)
	e, in := newTestEngine(t, g, graph.WholePartition(64), 5, Randomized)
	inf, err := e.BuildInfraOpts(in, InfraOptions{SingletonSubParts: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]congest.Val, 64)
	_, err = e.BlockPushAggregate(inf, vals, congest.SumPair)
	if err == nil {
		// A single block can legitimately happen if the budget grew large
		// enough to hold all 64 claims; in that case the result must be
		// correct instead.
		return
	}
	if !strings.Contains(err.Error(), "block") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestInfraReuseAcrossManyCallsStaysCorrect(t *testing.T) {
	// Hammer one infrastructure with many aggregations of mixed combiners:
	// router state must not leak between runs.
	const rows, cols = 6, 36
	g := graph.GridStar(rows, cols)
	e, in := newTestEngine(t, g, graph.GridStarRowParts(rows, cols), 6, Randomized)
	inf, err := e.BuildInfra(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	combiners := []congest.Combine{congest.SumPair, congest.MinPair, congest.MaxPair}
	for round := 0; round < 9; round++ {
		f := combiners[round%len(combiners)]
		vals := randomVals(g.N(), rng)
		res, err := e.SolveWithInfra(inf, vals, f)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := offlineAggregate(in.Dense, vals, f)
		for v := 0; v < e.N; v++ {
			if res.Values[v] != want[in.Dense[v]] {
				t.Fatalf("round %d node %d: got %+v want %+v", round, v, res.Values[v], want[in.Dense[v]])
			}
		}
	}
}

func TestUncoveredPartsListIsDeterministic(t *testing.T) {
	const rows, cols = 6, 40
	g := graph.GridStar(rows, cols)
	run := func() []int64 {
		e, in := newTestEngine(t, g, graph.GridStarRowParts(rows, cols), 8, Randomized)
		pb, err := part.RestrictedBFS(e.Net, in, e.D, e.maxBudget())
		if err != nil {
			t.Fatal(err)
		}
		inf := &Infra{In: in, PB: pb}
		return e.uncoveredParts(inf)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d", i)
		}
	}
	if len(a) == 0 {
		t.Fatal("expected uncovered parts on the grid-star instance")
	}
}

func TestVerifyPartsReportsFailureForTinyBudget(t *testing.T) {
	// With an absurdly small budget the verification must fail the deep
	// parts rather than pass them silently. Rows of 200 nodes cannot be
	// flooded within the ~38-round schedule a budget of 2 yields.
	const rows, cols = 6, 200
	g := graph.GridStar(rows, cols)
	e, in := newTestEngine(t, g, graph.GridStarRowParts(rows, cols), 9, Randomized)
	pb, err := part.RestrictedBFS(e.Net, in, e.D, e.maxBudget())
	if err != nil {
		t.Fatal(err)
	}
	div, err := DeterministicDivision(e, in, pb)
	if err != nil {
		t.Fatal(err)
	}
	inf := &Infra{In: in, PB: pb, Div: div, CastSeed: 9}
	inf.SC = emptyShortcut(e)
	inf.Budget = 2 // absurd: parts of 60 nodes cannot spread in 2 rounds
	active := e.uncoveredParts(inf)
	passed, err := e.verifyParts(inf, active)
	if err != nil {
		t.Fatal(err)
	}
	for id, ok := range passed {
		if ok {
			t.Fatalf("part %d passed verification with budget 2", id)
		}
	}
}

// emptyShortcut builds a claim-free shortcut for budget tests.
func emptyShortcut(e *Engine) *shortcut.Shortcut {
	return shortcut.New(e.Tree, e.N)
}
