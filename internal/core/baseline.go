package core

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/part"
	"shortcutpa/internal/shortcut"
	"shortcutpa/internal/subpart"
)

// baseline.go implements the two prior-work strawmen the paper measures
// itself against in Sections 3.1-3.2:
//
//   - SolveNaive: aggregate along intra-part spanning trees only (no
//     shortcuts). Message-optimal but round complexity Θ(max part
//     diameter), which is Θ(n) in the worst case — the round-suboptimal
//     extreme.
//   - SolveBlocksOnly: the [GH16]/[HIZ16]-style round-optimal aggregation
//     in which every node (not only sub-part representatives) pushes its
//     value into the shortcut blocks. On the Figure 2a grid-star instance
//     this needs Ω(nD) messages, the paper's motivating lower-bound
//     example; the fix — sub-part divisions — is exactly what Solve adds.
//
// Both reuse the same router; they differ only in the infrastructure they
// build, which makes the comparison an ablation rather than an
// apples-to-oranges reimplementation.

// InfraOptions select infrastructure ablations.
type InfraOptions struct {
	// NoShortcut aggregates purely on intra-part spanning trees (built by
	// an uncapped intra-part BFS).
	NoShortcut bool
	// SingletonSubParts disables the sub-part division: every node of a
	// shortcut-using part becomes its own representative, so every node
	// injects into the blocks (the Section 3.1 strawman).
	SingletonSubParts bool
}

// BuildInfraOpts is BuildInfra with ablation options.
func (e *Engine) BuildInfraOpts(in *part.Info, opts InfraOptions) (*Infra, error) {
	if err := requireLeaders(in); err != nil {
		return nil, err
	}
	if opts.NoShortcut {
		pb, err := part.RestrictedBFS(e.Net, in, int64(e.N), e.maxBudget())
		if err != nil {
			return nil, fmt.Errorf("core: naive part BFS: %w", err)
		}
		for v := 0; v < e.N; v++ {
			if !pb.Covered[v] {
				return nil, fmt.Errorf("core: node %d not covered by uncapped intra-part BFS", v)
			}
		}
		div, err := subpart.RandomDivision(e.Net, in, pb, int64(e.N), e.maxBudget())
		if err != nil {
			return nil, err
		}
		inf := &Infra{
			In: in, PB: pb, Div: div,
			SC:       shortcut.New(e.Tree, e.N),
			CastSeed: e.Net.Seed(),
			// Budget must cover a full traversal of the deepest part tree.
			Budget: int64(e.N) + e.D + 16,
		}
		return inf, nil
	}
	if !opts.SingletonSubParts {
		return e.BuildInfra(in)
	}
	pb, err := part.RestrictedBFS(e.Net, in, e.D, e.maxBudget())
	if err != nil {
		return nil, fmt.Errorf("core: coverage BFS: %w", err)
	}
	div := singletonDivision(e, in, pb)
	inf := &Infra{In: in, PB: pb, Div: div, CastSeed: e.Net.Seed()}
	if err := e.buildShortcutRandom(inf); err != nil {
		return nil, err
	}
	return inf, nil
}

// SolveNaive solves PA with intra-part trees only.
func (e *Engine) SolveNaive(in *part.Info, vals []congest.Val, f congest.Combine) (*Result, error) {
	inf, err := e.BuildInfraOpts(in, InfraOptions{NoShortcut: true})
	if err != nil {
		return nil, err
	}
	return e.SolveWithInfra(inf, vals, f)
}

// SolveBlocksOnly solves PA with shortcuts but without sub-part divisions
// (every node a representative) — Section 3.1's message-wasteful strawman.
func (e *Engine) SolveBlocksOnly(in *part.Info, vals []congest.Val, f congest.Combine) (*Result, error) {
	inf, err := e.BuildInfraOpts(in, InfraOptions{SingletonSubParts: true})
	if err != nil {
		return nil, err
	}
	return e.SolveWithInfra(inf, vals, f)
}

// singletonDivision puts every node of an uncovered part in its own
// sub-part (no communication needed: each node is its own representative).
// Covered parts keep their whole-part tree, as in BuildInfra.
func singletonDivision(e *Engine, in *part.Info, pb *part.BFS) *subpart.Division {
	n := e.N
	g := e.Net.Graph()
	csr := g.CSR()
	div := &subpart.Division{
		RepID:      make([]int64, n),
		IsRep:      make([]bool, n),
		ParentPort: make([]int, n),
		ChildPorts: make([][]int, n),
		WholePart:  make([]bool, n),
		Row:        csr.RowStart,
		SameSub:    make([]bool, len(csr.PortTo)),
		Depth:      make([]int, n),
	}
	for v := 0; v < n; v++ {
		if pb.Covered[v] {
			div.RepID[v] = in.LeaderID[v]
			div.IsRep[v] = in.IsLeader[v]
			div.ParentPort[v] = pb.ParentPort[v]
			div.ChildPorts[v] = append([]int(nil), pb.ChildPorts[v]...)
			div.WholePart[v] = true
			div.Depth[v] = pb.Depth[v]
			row := div.SameSubRow(v)
			same := in.SameRow(v)
			g.ForPorts(v, func(q, to, _ int) bool {
				row[q] = same[q] && pb.Covered[to]
				return true
			})
			continue
		}
		div.RepID[v] = e.Net.ID(v)
		div.IsRep[v] = true
		div.ParentPort[v] = -1
		div.Depth[v] = 0
	}
	return div
}
