package core

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
)

// newTestEngine assembles a network + engine and a partition with leaders.
func newTestEngine(t *testing.T, g *graph.Graph, parts []int, seed int64, mode Mode) (*Engine, *part.Info) {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	e, err := NewEngine(net, mode)
	if err != nil {
		t.Fatal(err)
	}
	in, err := part.FromDense(net, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.ElectLeaders(net, in, int64(16*g.N()+4096)); err != nil {
		t.Fatal(err)
	}
	return e, in
}

// offlineAggregate computes the oracle per-part aggregates.
func offlineAggregate(parts []int, vals []congest.Val, f congest.Combine) map[int]congest.Val {
	out := make(map[int]congest.Val)
	seen := make(map[int]bool)
	for v, p := range parts {
		if !seen[p] {
			out[p] = vals[v]
			seen[p] = true
		} else {
			out[p] = f(out[p], vals[v])
		}
	}
	return out
}

// checkSolve runs Solve and compares every node's answer to the oracle.
func checkSolve(t *testing.T, e *Engine, in *part.Info, vals []congest.Val, f congest.Combine) *Result {
	t.Helper()
	res, err := e.Solve(in, vals, f)
	if err != nil {
		t.Fatal(err)
	}
	want := offlineAggregate(in.Dense, vals, f)
	for v := 0; v < e.N; v++ {
		if res.Values[v] != want[in.Dense[v]] {
			t.Fatalf("node %d: got %+v, want %+v", v, res.Values[v], want[in.Dense[v]])
		}
	}
	return res
}

func randomVals(n int, rng *rand.Rand) []congest.Val {
	vals := make([]congest.Val, n)
	for v := range vals {
		vals[v] = congest.Val{A: int64(rng.Intn(1 << 20)), B: int64(rng.Intn(1 << 20))}
	}
	return vals
}

func TestSolveSinglePartWholeGraph(t *testing.T) {
	g := graph.Grid(8, 8)
	e, in := newTestEngine(t, g, graph.WholePartition(g.N()), 1, Randomized)
	rng := rand.New(rand.NewSource(2))
	checkSolve(t, e, in, randomVals(g.N(), rng), congest.SumPair)
}

func TestSolveSingletonParts(t *testing.T) {
	g := graph.Grid(5, 5)
	e, in := newTestEngine(t, g, graph.SingletonPartition(g.N()), 3, Randomized)
	rng := rand.New(rand.NewSource(4))
	checkSolve(t, e, in, randomVals(g.N(), rng), congest.MinPair)
}

func TestSolveStripesOnGrid(t *testing.T) {
	// Row parts on a grid: high-diameter parts that genuinely need the
	// shortcut machinery.
	const rows, cols = 6, 30
	g := graph.Grid(rows, cols)
	e, in := newTestEngine(t, g, graph.StripePartition(rows, cols), 5, Randomized)
	rng := rand.New(rand.NewSource(6))
	// On a plain grid a row part's diameter never exceeds the graph
	// diameter, so the parts are covered and no shortcut edges are needed —
	// the apexed GridStar test below is the one that exercises claims.
	checkSolve(t, e, in, randomVals(g.N(), rng), congest.SumPair)
}

func TestSolveGridStarBadExample(t *testing.T) {
	// The Figure 2 instance with row parts.
	const rows, cols = 8, 40
	g := graph.GridStar(rows, cols)
	e, in := newTestEngine(t, g, graph.GridStarRowParts(rows, cols), 7, Randomized)
	rng := rand.New(rand.NewSource(8))
	res := checkSolve(t, e, in, randomVals(g.N(), rng), congest.MinPair)
	// Row parts (40 nodes) exceed the apexed graph's diameter (~10), so the
	// construction must actually have claimed shortcut edges for them.
	if res.Infra.SC.TotalEdges() == 0 {
		t.Fatal("grid-star row parts should have claimed shortcut edges")
	}
}

func TestSolveLongPathManyParts(t *testing.T) {
	// Contiguous runs on a path: every part has diameter ~ n/k >> D of the
	// part... and the graph diameter is huge; exercises deep trees.
	const n = 200
	g := graph.Path(n)
	e, in := newTestEngine(t, g, graph.InterleavedPathParts(n, 5), 9, Randomized)
	rng := rand.New(rand.NewSource(10))
	checkSolve(t, e, in, randomVals(g.N(), rng), congest.MaxPair)
}

func TestSolveRandomGraphsRandomPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 40 + rng.Intn(80)
		g := graph.RandomConnected(n, 2.5/float64(n), rng)
		k := 1 + rng.Intn(8)
		parts := graph.RandomConnectedPartition(g, k, rng)
		e, in := newTestEngine(t, g, parts, int64(100+trial), Randomized)
		fs := []congest.Combine{congest.SumPair, congest.MinPair, congest.MaxPair, congest.OrPair}
		checkSolve(t, e, in, randomVals(g.N(), rng), fs[trial%len(fs)])
	}
}

func TestSolveWithInfraReuse(t *testing.T) {
	// Several aggregations over one partition reuse the infrastructure and
	// stay correct with different functions and values.
	g := graph.Grid(6, 20)
	e, in := newTestEngine(t, g, graph.StripePartition(6, 20), 13, Randomized)
	inf, err := e.BuildInfra(in)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	for round := 0; round < 4; round++ {
		vals := randomVals(g.N(), rng)
		res, err := e.SolveWithInfra(inf, vals, congest.SumPair)
		if err != nil {
			t.Fatal(err)
		}
		want := offlineAggregate(in.Dense, vals, congest.SumPair)
		for v := 0; v < e.N; v++ {
			if res.Values[v] != want[in.Dense[v]] {
				t.Fatalf("round %d node %d: got %+v, want %+v", round, v, res.Values[v], want[in.Dense[v]])
			}
		}
	}
}

func TestSolveRequiresLeaders(t *testing.T) {
	g := graph.Path(6)
	net := congest.NewNetwork(g, 15)
	e, err := NewEngine(net, Randomized)
	if err != nil {
		t.Fatal(err)
	}
	in, err := part.FromDense(net, graph.WholePartition(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(in, make([]congest.Val, 6), congest.SumPair); err == nil {
		t.Fatal("Solve accepted a partition without leaders")
	}
}

func TestSolveMessageComplexityNearLinear(t *testing.T) {
	// Õ(m) message bound: on the grid-star instance the whole solve
	// (including construction) must stay within polylog(n) × m messages.
	const rows, cols = 10, 60
	g := graph.GridStar(rows, cols)
	e, in := newTestEngine(t, g, graph.GridStarRowParts(rows, cols), 17, Randomized)
	e.Net.ResetMetrics() // exclude engine setup; count per-solve costs
	rng := rand.New(rand.NewSource(18))
	checkSolve(t, e, in, randomVals(g.N(), rng), congest.SumPair)
	msgs := e.Net.Total().Messages
	m := int64(g.M())
	logN := int64(1)
	for s := 1; s < g.N(); s *= 2 {
		logN++
	}
	if msgs > 40*m*logN {
		t.Fatalf("solve used %d messages; m=%d log n=%d — exceeds Õ(m) envelope", msgs, m, logN)
	}
}

func TestEngineModeString(t *testing.T) {
	if Randomized.String() != "randomized" || Deterministic.String() != "deterministic" {
		t.Fatal("Mode.String mismatch")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode should still format")
	}
}
