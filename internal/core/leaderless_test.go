package core

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
)

// newLeaderlessInfo builds partition info without electing leaders.
func newLeaderlessInfo(t *testing.T, g *graph.Graph, parts []int, seed int64, mode Mode) (*Engine, *part.Info) {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	e, err := NewEngine(net, mode)
	if err != nil {
		t.Fatal(err)
	}
	in, err := part.FromDense(net, parts)
	if err != nil {
		t.Fatal(err)
	}
	return e, in
}

func TestSolveLeaderlessMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 4; trial++ {
		g := graph.RandomConnected(40, 0.08, rng)
		parts := graph.RandomConnectedPartition(g, 4, rng)
		e, in := newLeaderlessInfo(t, g, parts, int64(trial+70), Randomized)
		vals := randomVals(g.N(), rng)
		res, err := e.SolveLeaderless(in, vals, congest.SumPair)
		if err != nil {
			t.Fatal(err)
		}
		want := offlineAggregate(in.Dense, vals, congest.SumPair)
		for v := 0; v < e.N; v++ {
			if res.Values[v] != want[in.Dense[v]] {
				t.Fatalf("trial %d node %d: got %+v want %+v", trial, v, res.Values[v], want[in.Dense[v]])
			}
		}
	}
}

func TestCoarsenToLeadersInstallsOneLeaderPerPart(t *testing.T) {
	g := graph.Grid(7, 7)
	rng := rand.New(rand.NewSource(62))
	parts := graph.RandomConnectedPartition(g, 6, rng)
	e, in := newLeaderlessInfo(t, g, parts, 63, Randomized)
	if err := e.CoarsenToLeaders(in); err != nil {
		t.Fatal(err)
	}
	leaderOf := make(map[int]int64)
	leaders := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		p := in.Dense[v]
		if id, ok := leaderOf[p]; ok && id != in.LeaderID[v] {
			t.Fatalf("part %d members disagree on leader", p)
		}
		leaderOf[p] = in.LeaderID[v]
		if in.IsLeader[v] {
			leaders[p]++
		}
		if in.Dense[e.Net.NodeByID(in.LeaderID[v])] != p {
			t.Fatalf("part %d's leader is outside the part", p)
		}
	}
	for p, c := range leaders {
		if c != 1 {
			t.Fatalf("part %d has %d leader nodes", p, c)
		}
	}
}

func TestSolveLeaderlessWholeGraphPart(t *testing.T) {
	g := graph.Lollipop(40, 8)
	e, in := newLeaderlessInfo(t, g, graph.WholePartition(g.N()), 64, Randomized)
	vals := make([]congest.Val, g.N())
	for v := range vals {
		vals[v] = congest.Val{A: 1}
	}
	res, err := e.SolveLeaderless(in, vals, congest.SumPair)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if res.Values[v].A != int64(g.N()) {
			t.Fatalf("node %d counted %d nodes, want %d", v, res.Values[v].A, g.N())
		}
	}
}
