package core

import (
	"fmt"
	"sort"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/tree"
)

// blockpush.go reproduces the prior-work aggregation flow of Section 3.1
// verbatim: "every node in the block transmits its value up the block
// (along the tree's edges); when values from the same part arrive at a node
// in the block, they are aggregated by applying f and then forwarded up the
// block as a single value. By the end of this process, the root of the
// block has computed f of the block and can broadcast the result back
// down."
//
// On the Figure 2a grid-star instance (tree rooted at the apex r, every
// node claiming its column path) the values of a row part can only merge at
// r, so the up phase alone costs Ω(nD) messages — the paper's lower-bound
// demonstration for [GH16]/[HIZ16]-style aggregation. Solve with sub-part
// divisions does the same job in Õ(m).
//
// BlockPushAggregate requires every part to be spanned by a single block
// (as in the figure); it reports an error otherwise. It is an
// experiment-grade baseline: the round schedule (up-phase deadline) is set
// engine-side from D and the measured congestion, as prior work sets it
// from known worst-case bounds.

// NewEngineAt is NewEngine with the BFS root pinned to a chosen node,
// used to reproduce figures whose construction fixes the root (Figure 2a
// roots the tree at the apex). Costs are accounted like NewEngine's,
// minus the election.
func NewEngineAt(net *congest.Network, mode Mode, root int) (*Engine, error) {
	n := net.N()
	budget := int64(16*n + 4096)
	t, err := tree.BuildBFS(net, root, budget)
	if err != nil {
		return nil, fmt.Errorf("core: BFS tree: %w", err)
	}
	vals := make([]congest.Val, n)
	for v := 0; v < n; v++ {
		vals[v] = congest.Val{A: int64(t.Depth[v]), B: 1}
	}
	agg, err := tree.Convergecast(net, t, vals,
		func(x, y congest.Val) congest.Val {
			return congest.Val{A: max(x.A, y.A), B: x.B + y.B}
		}, nil, budget)
	if err != nil {
		return nil, err
	}
	if _, err := tree.Broadcast(net, t, agg[t.Root], budget); err != nil {
		return nil, err
	}
	return &Engine{
		Net: net, Tree: t, Mode: mode, N: n,
		D:         max(agg[t.Root].A, 1),
		budgetCap: budget,
	}, nil
}

// Block-push message kinds.
const (
	kPushUp int32 = iota + 110
	kPushDown
)

// BlockPushAggregate runs the Section 3.1 prior-work aggregation over the
// shortcut in inf (typically built with InfraOptions.SingletonSubParts).
// Covered parts aggregate on their part tree as usual; every uncovered part
// must be spanned by one block.
func (e *Engine) BlockPushAggregate(inf *Infra, vals []congest.Val, f congest.Combine) (*Result, error) {
	if err := e.checkSingleBlock(inf); err != nil {
		return nil, err
	}
	n := e.N
	upDeadline := e.D + int64(inf.SC.Congestion()) + int64(e.N/(int(e.D)+1)) + 32
	pp := newPushProc(e, inf, f, vals, upDeadline)
	if _, err := e.Net.RunNodes("core/blockpush", pp, e.maxBudget()); err != nil {
		return nil, fmt.Errorf("core: block push: %w", err)
	}
	for v := 0; v < n; v++ {
		if pp.lost[v] {
			return nil, fmt.Errorf("core: block-push schedule too tight at node %d; instance unsuitable for this baseline", v)
		}
	}
	// Covered parts aggregate on their part trees (same machinery as Solve,
	// with an empty shortcut contribution).
	coveredVals, err := e.coveredPartAggregate(inf, vals, f)
	if err != nil {
		return nil, err
	}
	out := &Result{Values: make([]congest.Val, n), Infra: inf}
	for v := 0; v < n; v++ {
		if inf.PB.Covered[v] {
			out.Values[v] = coveredVals[v]
			continue
		}
		if !pp.haveResult[v] {
			return nil, fmt.Errorf("core: block push left node %d without a result", v)
		}
		out.Values[v] = pp.result[v]
	}
	return out, nil
}

// checkSingleBlock verifies every uncovered part is spanned by one block
// (engine-side suitability check for the baseline).
func (e *Engine) checkSingleBlock(inf *Infra) error {
	counts := inf.SC.BlockCounts()
	seen := make(map[int64]bool)
	for v := 0; v < e.N; v++ {
		if inf.PB.Covered[v] {
			continue
		}
		i := inf.In.LeaderID[v]
		if !inf.SC.OnBlock(v, i) {
			return fmt.Errorf("core: node %d of part %d is off-block; block-push baseline needs spanning blocks", v, i)
		}
		seen[i] = true
	}
	for i := range seen {
		if counts[i] != 1 {
			return fmt.Errorf("core: part %d has %d blocks; block-push baseline needs exactly 1", i, counts[i])
		}
	}
	return nil
}

// coveredPartAggregate aggregates covered parts on their part trees with a
// plain convergecast + broadcast (both the paper's algorithm and the
// baselines handle small parts this way, so its cost is common-mode and
// kept out of the block-push comparison's differences).
func (e *Engine) coveredPartAggregate(inf *Infra, vals []congest.Val, f congest.Combine) ([]congest.Val, error) {
	anyCovered := false
	for v := 0; v < e.N; v++ {
		if inf.PB.Covered[v] {
			anyCovered = true
		}
	}
	out := make([]congest.Val, e.N)
	if !anyCovered {
		return out, nil
	}
	n := e.N
	cp := &coveredAggProc{
		inf: inf, f: f, out: out,
		val:     make([]congest.Val, n),
		waiting: make([]int, n),
		fired:   make([]bool, n),
	}
	copy(cp.val, vals)
	if _, err := e.Net.RunNodes("core/covered-agg", cp, e.maxBudget()); err != nil {
		return nil, fmt.Errorf("core: covered-part aggregation: %w", err)
	}
	return out, nil
}

const (
	kCovUp int32 = iota + 115
	kCovDown
)

// coveredAggProc is a convergecast + result broadcast on a covered part's
// intra-part BFS tree. Shared across nodes; per-node state is the flat
// val/waiting/fired arrays.
type coveredAggProc struct {
	inf     *Infra
	f       congest.Combine
	val     []congest.Val
	out     []congest.Val
	waiting []int
	fired   []bool
}

// Step implements congest.NodeProc.
func (p *coveredAggProc) Step(ctx *congest.Ctx, v int) bool {
	pb := p.inf.PB
	if !pb.Covered[v] {
		return false
	}
	if ctx.Round() == 0 {
		p.waiting[v] = len(pb.ChildPorts[v])
	}
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		switch in.Msg.Kind {
		case kCovUp:
			p.val[v] = p.f(p.val[v], congest.Val{A: in.Msg.A, B: in.Msg.B})
			p.waiting[v]--
		case kCovDown:
			p.out[v] = congest.Val{A: in.Msg.A, B: in.Msg.B}
			for _, q := range pb.ChildPorts[v] {
				ctx.Send(q, in.Msg)
			}
		}
	})
	if p.waiting[v] == 0 && !p.fired[v] {
		p.fired[v] = true
		if pb.ParentPort[v] >= 0 {
			ctx.Send(pb.ParentPort[v], congest.Message{Kind: kCovUp, A: p.val[v].A, B: p.val[v].B})
		} else {
			p.out[v] = p.val[v]
			for _, q := range pb.ChildPorts[v] {
				ctx.Send(q, congest.Message{Kind: kCovDown, A: p.val[v].A, B: p.val[v].B})
			}
		}
	}
	return false
}

// pushProc is the shared block-push state machine; every per-node field of
// the former per-node proc became a flat array indexed by the stepped node
// (maps stay per-node, created lazily at round 0).
type pushProc struct {
	e        *Engine
	inf      *Infra
	f        congest.Combine
	val      []congest.Val
	deadline int64

	pending    []map[int64]congest.Val // accumulated, not yet forwarded up
	order      [][]int64               // FIFO of parts with pending values
	rootAgg    []map[int64]congest.Val
	rootHas    []map[int64]bool
	downQueue  []map[int][]congest.Message
	haveResult []bool
	result     []congest.Val
	finalized  []bool
	lost       []bool // a value missed the schedule: baseline unsuitable here
}

func newPushProc(e *Engine, inf *Infra, f congest.Combine, vals []congest.Val, deadline int64) *pushProc {
	n := e.N
	p := &pushProc{
		e: e, inf: inf, f: f, deadline: deadline,
		val:        make([]congest.Val, n),
		pending:    make([]map[int64]congest.Val, n),
		order:      make([][]int64, n),
		rootAgg:    make([]map[int64]congest.Val, n),
		rootHas:    make([]map[int64]bool, n),
		downQueue:  make([]map[int][]congest.Message, n),
		haveResult: make([]bool, n),
		result:     make([]congest.Val, n),
		finalized:  make([]bool, n),
		lost:       make([]bool, n),
	}
	copy(p.val, vals)
	return p
}

// Step implements congest.NodeProc.
func (p *pushProc) Step(ctx *congest.Ctx, v int) bool {
	inf := p.inf
	sc := inf.SC
	myPart := inf.In.LeaderID[v]
	if ctx.Round() == 0 {
		p.pending[v] = make(map[int64]congest.Val)
		p.rootAgg[v] = make(map[int64]congest.Val)
		p.rootHas[v] = make(map[int64]bool)
		p.downQueue[v] = make(map[int][]congest.Message)
		if !inf.PB.Covered[v] {
			p.add(v, myPart, p.val[v])
		}
	}
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		switch in.Msg.Kind {
		case kPushUp:
			if p.finalized[v] {
				p.lost[v] = true
				return
			}
			p.add(v, in.Msg.A, congest.Val{A: in.Msg.B, B: in.Msg.C})
		case kPushDown:
			i := in.Msg.A
			if i == myPart && !p.haveResult[v] {
				p.haveResult[v] = true
				p.result[v] = congest.Val{A: in.Msg.B, B: in.Msg.C}
			}
			for _, q := range sc.DownPorts[v][i] {
				if q != in.Port {
					p.downQueue[v][q] = append(p.downQueue[v][q], in.Msg)
				}
			}
		}
	})
	// Up phase: forward one pending part's (merged) value per round; values
	// stop at the part's block root, accumulating there.
	if ctx.Round() < p.deadline && len(p.order[v]) > 0 {
		i := p.order[v][0]
		val := p.pending[v][i]
		if sc.HasUp(v, i) {
			p.order[v] = p.order[v][1:]
			delete(p.pending[v], i)
			ctx.Send(p.e.Tree.ParentPort[v], congest.Message{Kind: kPushUp, A: i, B: val.A, C: val.B})
		} else {
			// Block root for i: fold into the root accumulator.
			p.order[v] = p.order[v][1:]
			delete(p.pending[v], i)
			if p.rootHas[v][i] {
				p.rootAgg[v][i] = p.f(p.rootAgg[v][i], val)
			} else {
				p.rootAgg[v][i] = val
				p.rootHas[v][i] = true
			}
		}
	}
	// At the deadline, block roots finalize and start the down broadcast.
	if ctx.Round() == p.deadline && !p.finalized[v] {
		p.finalized[v] = true
		// A value still in transit at the deadline means the schedule was
		// too tight for this instance; flag it so the caller gets an error
		// instead of a silent wrong answer.
		if len(p.order[v]) > 0 {
			p.lost[v] = true
		}
		p.order[v] = nil
		p.pending[v] = make(map[int64]congest.Val)
		roots := make([]int64, 0, len(p.rootAgg[v]))
		for i := range p.rootAgg[v] {
			roots = append(roots, i)
		}
		sort.Slice(roots, func(a, b int) bool { return roots[a] < roots[b] })
		for _, i := range roots {
			if !sc.IsBlockRoot(v, i) {
				continue
			}
			val := p.rootAgg[v][i]
			if i == myPart && !inf.PB.Covered[v] && !p.haveResult[v] {
				p.haveResult[v] = true
				p.result[v] = val
			}
			m := congest.Message{Kind: kPushDown, A: i, B: val.A, C: val.B}
			for _, q := range sc.DownPorts[v][i] {
				p.downQueue[v][q] = append(p.downQueue[v][q], m)
			}
		}
	}
	// Down phase: one message per port per round.
	pendingDown := false
	ports := make([]int, 0, len(p.downQueue[v]))
	for q := range p.downQueue[v] {
		ports = append(ports, q)
	}
	sort.Ints(ports)
	for _, q := range ports {
		queue := p.downQueue[v][q]
		if len(queue) == 0 {
			continue
		}
		if ctx.CanSend(q) {
			ctx.Send(q, queue[0])
			p.downQueue[v][q] = queue[1:]
		}
		if len(p.downQueue[v][q]) > 0 {
			pendingDown = true
		}
	}
	return ctx.Round() <= p.deadline || len(p.order[v]) > 0 || pendingDown
}

// add merges an incoming value into node v's per-part pending accumulator.
func (p *pushProc) add(v int, i int64, val congest.Val) {
	if have, ok := p.pending[v][i]; ok {
		p.pending[v][i] = p.f(have, val)
		return
	}
	p.pending[v][i] = val
	p.order[v] = append(p.order[v], i)
}
