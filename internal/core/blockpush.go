package core

import (
	"fmt"
	"sort"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/tree"
)

// blockpush.go reproduces the prior-work aggregation flow of Section 3.1
// verbatim: "every node in the block transmits its value up the block
// (along the tree's edges); when values from the same part arrive at a node
// in the block, they are aggregated by applying f and then forwarded up the
// block as a single value. By the end of this process, the root of the
// block has computed f of the block and can broadcast the result back
// down."
//
// On the Figure 2a grid-star instance (tree rooted at the apex r, every
// node claiming its column path) the values of a row part can only merge at
// r, so the up phase alone costs Ω(nD) messages — the paper's lower-bound
// demonstration for [GH16]/[HIZ16]-style aggregation. Solve with sub-part
// divisions does the same job in Õ(m).
//
// BlockPushAggregate requires every part to be spanned by a single block
// (as in the figure); it reports an error otherwise. It is an
// experiment-grade baseline: the round schedule (up-phase deadline) is set
// engine-side from D and the measured congestion, as prior work sets it
// from known worst-case bounds.

// NewEngineAt is NewEngine with the BFS root pinned to a chosen node,
// used to reproduce figures whose construction fixes the root (Figure 2a
// roots the tree at the apex). Costs are accounted like NewEngine's,
// minus the election.
func NewEngineAt(net *congest.Network, mode Mode, root int) (*Engine, error) {
	n := net.N()
	budget := int64(16*n + 4096)
	t, err := tree.BuildBFS(net, root, budget)
	if err != nil {
		return nil, fmt.Errorf("core: BFS tree: %w", err)
	}
	vals := make([]congest.Val, n)
	for v := 0; v < n; v++ {
		vals[v] = congest.Val{A: int64(t.Depth[v]), B: 1}
	}
	agg, err := tree.Convergecast(net, t, vals,
		func(x, y congest.Val) congest.Val {
			return congest.Val{A: max(x.A, y.A), B: x.B + y.B}
		}, nil, budget)
	if err != nil {
		return nil, err
	}
	if _, err := tree.Broadcast(net, t, agg[t.Root], budget); err != nil {
		return nil, err
	}
	return &Engine{
		Net: net, Tree: t, Mode: mode, N: n,
		D:         max(agg[t.Root].A, 1),
		budgetCap: budget,
	}, nil
}

// Block-push message kinds.
const (
	kPushUp int32 = iota + 110
	kPushDown
)

// BlockPushAggregate runs the Section 3.1 prior-work aggregation over the
// shortcut in inf (typically built with InfraOptions.SingletonSubParts).
// Covered parts aggregate on their part tree as usual; every uncovered part
// must be spanned by one block.
func (e *Engine) BlockPushAggregate(inf *Infra, vals []congest.Val, f congest.Combine) (*Result, error) {
	if err := e.checkSingleBlock(inf); err != nil {
		return nil, err
	}
	n := e.N
	upDeadline := e.D + int64(inf.SC.Congestion()) + int64(e.N/(int(e.D)+1)) + 32
	procs := e.Net.Scratch().Procs(n)
	impls := make([]*pushProc, n)
	for v := 0; v < n; v++ {
		impls[v] = &pushProc{e: e, inf: inf, f: f, v: v, val: vals[v], deadline: upDeadline}
		procs[v] = impls[v]
	}
	if _, err := e.Net.Run("core/blockpush", procs, e.maxBudget()); err != nil {
		return nil, fmt.Errorf("core: block push: %w", err)
	}
	for v := 0; v < n; v++ {
		if impls[v].lost {
			return nil, fmt.Errorf("core: block-push schedule too tight at node %d; instance unsuitable for this baseline", v)
		}
	}
	// Covered parts aggregate on their part trees (same machinery as Solve,
	// with an empty shortcut contribution).
	coveredVals, err := e.coveredPartAggregate(inf, vals, f)
	if err != nil {
		return nil, err
	}
	out := &Result{Values: make([]congest.Val, n), Infra: inf}
	for v := 0; v < n; v++ {
		if inf.PB.Covered[v] {
			out.Values[v] = coveredVals[v]
			continue
		}
		if !impls[v].haveResult {
			return nil, fmt.Errorf("core: block push left node %d without a result", v)
		}
		out.Values[v] = impls[v].result
	}
	return out, nil
}

// checkSingleBlock verifies every uncovered part is spanned by one block
// (engine-side suitability check for the baseline).
func (e *Engine) checkSingleBlock(inf *Infra) error {
	counts := inf.SC.BlockCounts()
	seen := make(map[int64]bool)
	for v := 0; v < e.N; v++ {
		if inf.PB.Covered[v] {
			continue
		}
		i := inf.In.LeaderID[v]
		if !inf.SC.OnBlock(v, i) {
			return fmt.Errorf("core: node %d of part %d is off-block; block-push baseline needs spanning blocks", v, i)
		}
		seen[i] = true
	}
	for i := range seen {
		if counts[i] != 1 {
			return fmt.Errorf("core: part %d has %d blocks; block-push baseline needs exactly 1", i, counts[i])
		}
	}
	return nil
}

// coveredPartAggregate aggregates covered parts on their part trees with a
// plain convergecast + broadcast (both the paper's algorithm and the
// baselines handle small parts this way, so its cost is common-mode and
// kept out of the block-push comparison's differences).
func (e *Engine) coveredPartAggregate(inf *Infra, vals []congest.Val, f congest.Combine) ([]congest.Val, error) {
	anyCovered := false
	for v := 0; v < e.N; v++ {
		if inf.PB.Covered[v] {
			anyCovered = true
		}
	}
	out := make([]congest.Val, e.N)
	if !anyCovered {
		return out, nil
	}
	n := e.N
	procs := e.Net.Scratch().Procs(n)
	impls := make([]coveredAggProc, n)
	for v := 0; v < n; v++ {
		impls[v] = coveredAggProc{inf: inf, f: f, v: v, val: vals[v], out: out}
		procs[v] = &impls[v]
	}
	if _, err := e.Net.Run("core/covered-agg", procs, e.maxBudget()); err != nil {
		return nil, fmt.Errorf("core: covered-part aggregation: %w", err)
	}
	return out, nil
}

const (
	kCovUp int32 = iota + 115
	kCovDown
)

// coveredAggProc is a convergecast + result broadcast on a covered part's
// intra-part BFS tree.
type coveredAggProc struct {
	inf     *Infra
	f       congest.Combine
	v       int
	val     congest.Val
	out     []congest.Val
	waiting int
	fired   bool
}

func (p *coveredAggProc) Step(ctx *congest.Ctx) bool {
	pb, v := p.inf.PB, p.v
	if !pb.Covered[v] {
		return false
	}
	if ctx.Round() == 0 {
		p.waiting = len(pb.ChildPorts[v])
	}
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		switch in.Msg.Kind {
		case kCovUp:
			p.val = p.f(p.val, congest.Val{A: in.Msg.A, B: in.Msg.B})
			p.waiting--
		case kCovDown:
			p.out[v] = congest.Val{A: in.Msg.A, B: in.Msg.B}
			for _, q := range pb.ChildPorts[v] {
				ctx.Send(q, in.Msg)
			}
		}
	})
	if p.waiting == 0 && !p.fired {
		p.fired = true
		if pb.ParentPort[v] >= 0 {
			ctx.Send(pb.ParentPort[v], congest.Message{Kind: kCovUp, A: p.val.A, B: p.val.B})
		} else {
			p.out[v] = p.val
			for _, q := range pb.ChildPorts[v] {
				ctx.Send(q, congest.Message{Kind: kCovDown, A: p.val.A, B: p.val.B})
			}
		}
	}
	return false
}

// pushProc is one node's block-push state.
type pushProc struct {
	e        *Engine
	inf      *Infra
	f        congest.Combine
	v        int
	val      congest.Val
	deadline int64

	pending    map[int64]congest.Val // accumulated, not yet forwarded up
	order      []int64               // FIFO of parts with pending values
	rootAgg    map[int64]congest.Val
	rootHas    map[int64]bool
	downQueue  map[int][]congest.Message
	haveResult bool
	result     congest.Val
	finalized  bool
	lost       bool // a value missed the schedule: baseline unsuitable here
}

func (p *pushProc) Step(ctx *congest.Ctx) bool {
	inf, v := p.inf, p.v
	sc := inf.SC
	myPart := inf.In.LeaderID[v]
	if ctx.Round() == 0 {
		p.pending = make(map[int64]congest.Val)
		p.rootAgg = make(map[int64]congest.Val)
		p.rootHas = make(map[int64]bool)
		p.downQueue = make(map[int][]congest.Message)
		if !inf.PB.Covered[v] {
			p.add(myPart, p.val)
		}
	}
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		switch in.Msg.Kind {
		case kPushUp:
			if p.finalized {
				p.lost = true
				return
			}
			p.add(in.Msg.A, congest.Val{A: in.Msg.B, B: in.Msg.C})
		case kPushDown:
			i := in.Msg.A
			if i == myPart && !p.haveResult {
				p.haveResult = true
				p.result = congest.Val{A: in.Msg.B, B: in.Msg.C}
			}
			for _, q := range sc.DownPorts[v][i] {
				if q != in.Port {
					p.downQueue[q] = append(p.downQueue[q], in.Msg)
				}
			}
		}
	})
	// Up phase: forward one pending part's (merged) value per round; values
	// stop at the part's block root, accumulating there.
	if ctx.Round() < p.deadline && len(p.order) > 0 {
		i := p.order[0]
		val := p.pending[i]
		if sc.HasUp(v, i) {
			p.order = p.order[1:]
			delete(p.pending, i)
			ctx.Send(p.e.Tree.ParentPort[v], congest.Message{Kind: kPushUp, A: i, B: val.A, C: val.B})
		} else {
			// Block root for i: fold into the root accumulator.
			p.order = p.order[1:]
			delete(p.pending, i)
			if p.rootHas[i] {
				p.rootAgg[i] = p.f(p.rootAgg[i], val)
			} else {
				p.rootAgg[i] = val
				p.rootHas[i] = true
			}
		}
	}
	// At the deadline, block roots finalize and start the down broadcast.
	if ctx.Round() == p.deadline && !p.finalized {
		p.finalized = true
		// A value still in transit at the deadline means the schedule was
		// too tight for this instance; flag it so the caller gets an error
		// instead of a silent wrong answer.
		if len(p.order) > 0 {
			p.lost = true
		}
		p.order = nil
		p.pending = make(map[int64]congest.Val)
		roots := make([]int64, 0, len(p.rootAgg))
		for i := range p.rootAgg {
			roots = append(roots, i)
		}
		sort.Slice(roots, func(a, b int) bool { return roots[a] < roots[b] })
		for _, i := range roots {
			if !sc.IsBlockRoot(v, i) {
				continue
			}
			val := p.rootAgg[i]
			if i == myPart && !inf.PB.Covered[v] && !p.haveResult {
				p.haveResult = true
				p.result = val
			}
			m := congest.Message{Kind: kPushDown, A: i, B: val.A, C: val.B}
			for _, q := range sc.DownPorts[v][i] {
				p.downQueue[q] = append(p.downQueue[q], m)
			}
		}
	}
	// Down phase: one message per port per round.
	pendingDown := false
	ports := make([]int, 0, len(p.downQueue))
	for q := range p.downQueue {
		ports = append(ports, q)
	}
	sort.Ints(ports)
	for _, q := range ports {
		queue := p.downQueue[q]
		if len(queue) == 0 {
			continue
		}
		if ctx.CanSend(q) {
			ctx.Send(q, queue[0])
			p.downQueue[q] = queue[1:]
		}
		if len(p.downQueue[q]) > 0 {
			pendingDown = true
		}
	}
	return ctx.Round() <= p.deadline || len(p.order) > 0 || pendingDown
}

// add merges an incoming value into the per-part pending accumulator.
func (p *pushProc) add(i int64, val congest.Val) {
	if have, ok := p.pending[i]; ok {
		p.pending[i] = p.f(have, val)
		return
	}
	p.pending[i] = val
	p.order = append(p.order, i)
}
