package core

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/part"
)

// Result is the outcome of a Part-Wise Aggregation: per Definition 1.1,
// every node of every part knows its part's aggregate value f(P_i).
type Result struct {
	// Values[v] = f(P_i) for v's part P_i.
	Values []congest.Val
	// Infra is the infrastructure the call used (reusable for further
	// aggregations over the same partition via SolveWithInfra).
	Infra *Infra
}

// Solve solves Part-Wise Aggregation (Theorem 1.2) for a partition with
// known leaders: it builds the per-partition infrastructure (coverage BFS,
// sub-part division, verified shortcut) and runs the Algorithm 1
// aggregation. vals[v] is node v's input value; f must be commutative and
// associative.
func (e *Engine) Solve(in *part.Info, vals []congest.Val, f congest.Combine) (*Result, error) {
	inf, err := e.BuildInfra(in)
	if err != nil {
		return nil, err
	}
	return e.SolveWithInfra(inf, vals, f)
}

// SolveWithInfra runs one aggregation over previously built (and verified)
// infrastructure. Repeated aggregations over the same partition — the
// common pattern in the paper's applications — pay the construction cost
// once and reuse it here.
func (e *Engine) SolveWithInfra(inf *Infra, vals []congest.Val, f congest.Combine) (*Result, error) {
	if len(vals) != e.N {
		return nil, fmt.Errorf("core: got %d values for %d nodes", len(vals), e.N)
	}
	cfg := inf.routerCfg(e, modeSolve, vals, f)
	run, err := runRouter(cfg, "core/solve", inf.runBudget(cfg))
	if err != nil {
		return nil, fmt.Errorf("core: solve: %w", err)
	}
	out := &Result{Values: make([]congest.Val, e.N), Infra: inf}
	for v := 0; v < e.N; v++ {
		if !run.nodes[v].gotResult {
			return nil, fmt.Errorf("core: node %d missed its part's result (infrastructure bug)", v)
		}
		out.Values[v] = run.nodes[v].result
	}
	return out, nil
}
