package core

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/part"
	"shortcutpa/internal/subpart"
)

// deterministic.go implements the deterministic pipeline of Section 6:
// Algorithm 6 (deterministic sub-part division, delegated to
// internal/subpart) and Algorithms 7+8 (deterministic shortcut
// construction over the heavy-path decomposition [39]).
//
// Algorithm 8's shape: representatives of active parts deposit their part
// ID at their heavy-path position; heavy paths are processed in waves by
// light level (paths with no incoming light edges first). Within a path,
// Algorithm 7's doubling schedule merges request sets upward: at iteration
// i, the node at index ≡ 2^i (mod 2^(i+1)) streams its accumulated set one
// part per round toward the node 2^i higher (clamped to the path top);
// every edge crossed is claimed by the streamed parts; a node whose set
// holds 2c parts "breaks" its path edge and discards the set (those parts'
// blocks root below the break — the congestion cap of Lemma 6.6). Path
// tops then stream their surviving sets across their (light) parent edges
// into the next wave's paths (Algorithm 8 line 12). All actions are
// scheduled by round number from globally known quantities (D, c = R, path
// indices, levels), as deterministic CONGEST algorithms are.
//
// The outer loop — verify coverage per part (Algorithm 2), freeze winners,
// retry the rest, double the budget on stagnation — is the driver shared
// with the randomized construction (construct.go).

// DeterministicDivision computes a sub-part division via Algorithm 6.
func DeterministicDivision(e *Engine, in *part.Info, pb *part.BFS) (*subpart.Division, error) {
	return subpart.DeterministicDivision(e.Net, in, pb, e.D, e.maxBudget())
}

// buildShortcutDeterministic is Algorithm 8 under the shared driver.
func (e *Engine) buildShortcutDeterministic(inf *Infra) error {
	if err := e.EnsureHeavy(); err != nil {
		return err
	}
	return e.runConstructionDriver(inf, e.heavyPathClaim)
}

const kPathClaim int32 = 160

// pathSchedule is the global round schedule for one Algorithm 8 sweep
// under threshold 2c: iteration windows within a wave, and the wave count.
type pathSchedule struct {
	iters      int
	iterStart  []int64
	lightStart int64 // within-wave round when path tops start light streams
	waveLength int64
	waves      int64
}

func newPathSchedule(e *Engine, c int64) *pathSchedule {
	s := &pathSchedule{}
	maxLen := int64(2)
	for v := 0; v < e.N; v++ {
		if e.Heavy.Length[v] > maxLen {
			maxLen = e.Heavy.Length[v]
		}
	}
	off := int64(0)
	for i := 0; int64(1)<<i < maxLen; i++ {
		s.iterStart = append(s.iterStart, off)
		off += (int64(1) << i) + 2*c + 4 // stream travel + stream length + slack
		s.iters = i + 1
	}
	s.lightStart = off
	s.waveLength = off + 2*c + 8
	s.waves = int64(e.Heavy.MaxLevel) + 1
	return s
}

// heavyPathClaim runs one full Algorithm 7+8 claim sweep for the active
// parts (the construction callback for the shared driver).
func (e *Engine) heavyPathClaim(inf *Infra, active []int64) error {
	sched := newPathSchedule(e, inf.Budget)
	activeSet := make(map[int64]struct{}, len(active))
	for _, id := range active {
		activeSet[id] = struct{}{}
	}
	n := e.N
	pp := &pathProc{
		e: e, inf: inf, sched: sched, active: activeSet, threshold: 2 * inf.Budget,
		set:       make([][]int64, n),
		seen:      make([]map[int64]struct{}, n),
		broken:    make([]bool, n),
		stream:    make([][]int64, n),
		streamDst: make([]int64, n),
		lightQ:    make([][]int64, n),
	}
	budget := sched.waveLength*sched.waves + 4*inf.Budget + 256
	if _, err := e.Net.RunNodes("core/heavypath", pp, budget); err != nil {
		return fmt.Errorf("core: heavy-path construction: %w", err)
	}
	return nil
}

// pathProc is the shared Algorithm 7/8 state machine; per-node state is
// indexed by the stepped node (maps created lazily at round 0).
type pathProc struct {
	e         *Engine
	inf       *Infra
	sched     *pathSchedule
	active    map[int64]struct{}
	threshold int64

	set       [][]int64            // accumulated request set (the paper's S(v))
	seen      []map[int64]struct{} // accumulation dedup
	broken    []bool               // my path-parent edge is broken
	stream    [][]int64            // elements in flight on the path-parent edge
	streamDst []int64              // their destination index on my path
	lightQ    [][]int64            // elements in flight on the light parent edge
}

// Step implements congest.NodeProc.
func (p *pathProc) Step(ctx *congest.Ctx, v int) bool {
	h := p.e.Heavy
	if ctx.Round() == 0 {
		p.seen[v] = make(map[int64]struct{})
		if p.inf.Div.IsRep[v] && !p.inf.Div.WholePart[v] {
			if _, ok := p.active[p.inf.In.LeaderID[v]]; ok {
				p.accumulate(v, p.inf.In.LeaderID[v])
			}
		}
	}
	round := ctx.Round()
	wave := round / p.sched.waveLength
	inWave := round % p.sched.waveLength
	myLevel := int64(h.Level[v])
	if wave == myLevel {
		p.stepOwnWave(ctx, v, inWave)
	}

	ctx.ForRecv(func(_ int, m congest.Incoming) {
		if m.Msg.Kind != kPathClaim {
			return
		}
		i := m.Msg.A
		p.inf.SC.AddDownPort(v, i, m.Port) // the crossed edge carries part i
		dst := m.Msg.B
		if dst == 0 || dst <= h.Index[v] || p.broken[v] {
			// Destination reached (0 = light-edge delivery), or the path is
			// broken above: the set element stays here.
			p.accumulate(v, i)
			return
		}
		// Relay toward dst, claiming my parent path edge as it crosses.
		p.stream[v] = append(p.stream[v], i)
		p.streamDst[v] = dst
	})
	p.flushStreams(ctx, v)
	busy := len(p.stream[v]) > 0 || len(p.lightQ[v]) > 0
	return busy || wave <= myLevel
}

// stepOwnWave fires the node's scheduled duties during its path's wave.
func (p *pathProc) stepOwnWave(ctx *congest.Ctx, v int, inWave int64) {
	h := p.e.Heavy
	idx := h.Index[v]
	if !h.IsTop(v) {
		for i := 0; i < p.sched.iters; i++ {
			if inWave != p.sched.iterStart[i] {
				continue
			}
			step := int64(1) << i
			if idx%(2*step) != step {
				continue
			}
			// My send iteration (Algorithm 7 line 4).
			if int64(len(p.set[v])) >= p.threshold {
				p.broken[v] = true // break (v, v+1); drop the set
				p.set[v] = nil
				continue
			}
			dst := min(idx+step, h.Length[v])
			p.stream[v] = append(p.stream[v], p.set[v]...)
			p.streamDst[v] = dst
			p.set[v] = nil
		}
		return
	}
	// Path top: at the light window, stream the surviving set across the
	// light parent edge (Algorithm 8 line 12). The root path's top has no
	// parent: its set simply rests (claims end at the root).
	if inWave == p.sched.lightStart && !p.broken[v] && p.e.Tree.ParentPort[v] >= 0 {
		p.lightQ[v] = append(p.lightQ[v], p.set[v]...)
		p.set[v] = nil
	}
}

func (p *pathProc) accumulate(v int, i int64) {
	if _, ok := p.seen[v][i]; ok {
		return
	}
	p.seen[v][i] = struct{}{}
	p.set[v] = append(p.set[v], i)
}

// flushStreams sends one element per round per edge. The path-parent and
// light-parent edges are distinct uses of the same physical tree parent
// port depending on whether the node tops its path, so there is no port
// contention.
func (p *pathProc) flushStreams(ctx *congest.Ctx, v int) {
	h := p.e.Heavy
	if len(p.stream[v]) > 0 && !p.broken[v] {
		if pp := h.UpPathPort(p.e.Tree, v); pp >= 0 && ctx.CanSend(pp) {
			part := p.stream[v][0]
			p.stream[v] = p.stream[v][1:]
			p.inf.SC.ClaimUp(v, part)
			ctx.Send(pp, congest.Message{Kind: kPathClaim, A: part, B: p.streamDst[v]})
		}
	}
	if len(p.lightQ[v]) > 0 {
		if lp := p.e.Tree.ParentPort[v]; lp >= 0 && ctx.CanSend(lp) {
			part := p.lightQ[v][0]
			p.lightQ[v] = p.lightQ[v][1:]
			p.inf.SC.ClaimUp(v, part)
			ctx.Send(lp, congest.Message{Kind: kPathClaim, A: part, B: 0})
		}
	}
}
