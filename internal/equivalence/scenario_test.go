package equivalence

import (
	"fmt"
	"reflect"
	"testing"

	"shortcutpa/internal/congest"
)

// scenario_test.go is the fault-injection leg of the equivalence harness:
// every fixture, replayed under a scripted fault scenario, must be
// bit-identical across the sequential and parallel engines (workers 1, 4,
// 8) and across fresh-vs-Reset-reused networks. Under faults a protocol may
// legitimately fail — a budget starved by dead edges, a verification that
// cannot settle — so the observable execution includes the error: a faulty
// run that errs differently on two engines is as much a determinism break
// as one that answers differently.

// faultExecution is execution extended with the run's failure, if any.
type faultExecution struct {
	Output string
	Err    string
	Total  congest.Metrics
	Phases []congest.Phase
}

// runScenario executes one protocol on net under the scenario and captures
// output-or-error plus the cost accounting.
func runScenario(p protocol, net *congest.Network, sc *congest.Scenario) (*faultExecution, error) {
	if err := net.SetScenario(sc); err != nil {
		return nil, err
	}
	out, err := p.run(net)
	ex := &faultExecution{Output: out, Total: net.Total(), Phases: net.Phases()}
	if err != nil {
		ex.Err = err.Error()
	}
	return ex, nil
}

// executeScenario runs the protocol under the scenario on a fresh network.
func executeScenario(p protocol, sc *congest.Scenario, seed int64, workers int) (*faultExecution, error) {
	net := congest.NewNetwork(p.graph(seed), seed)
	net.SetWorkers(workers)
	return runScenario(p, net, sc)
}

// executeScenarioReused runs the protocol under the scenario twice on one
// network with a Reset between, capturing the second execution — the replay
// a warm-network serving cache produces. Reset rewinds the attached
// scenario, so the replay must reproduce the same faults.
func executeScenarioReused(p protocol, sc *congest.Scenario, seed int64, workers int) (*faultExecution, error) {
	net := congest.NewNetwork(p.graph(seed), seed)
	net.SetWorkers(workers)
	if _, err := runScenario(p, net, sc); err != nil {
		return nil, err
	}
	net.Reset()
	out, err := p.run(net)
	ex := &faultExecution{Output: out, Total: net.Total(), Phases: net.Phases()}
	if err != nil {
		ex.Err = err.Error()
	}
	return ex, nil
}

// compareFaultExecutions reports any field where two executions of the same
// faulty fixture diverged.
func compareFaultExecutions(t *testing.T, label string, got, want *faultExecution) {
	t.Helper()
	if got.Output != want.Output {
		t.Errorf("%s: output diverged\ngot:  %s\nwant: %s", label, clip(got.Output), clip(want.Output))
	}
	if got.Err != want.Err {
		t.Errorf("%s: error diverged\ngot:  %q\nwant: %q", label, got.Err, want.Err)
	}
	if got.Total != want.Total {
		t.Errorf("%s: total cost %+v, want %+v", label, got.Total, want.Total)
	}
	if !reflect.DeepEqual(got.Phases, want.Phases) {
		t.Errorf("%s: per-phase cost log diverged", label)
	}
}

// scriptedScenarios are the shared fault scripts. Crash targets stay below
// the smallest fixture graph (torus, 36 nodes) so every scenario is valid on
// every fixture; edge drops are deliberately absent here because a scripted
// edge must exist in the topology (congest's own tests cover drops on known
// graphs), while the seed-faults clauses exercise random edge drops
// everywhere. Crash rounds are chosen so the fixtures fail (or finish) fast
// rather than spending their full construction budgets: mid-construction
// crashes can legitimately send the CoreFast retry loop into six-figure
// round counts, which is correct behavior but far too slow to replay across
// the whole engine × reuse matrix on every push.
func scriptedScenarios(t *testing.T) []*congest.Scenario {
	t.Helper()
	var out []*congest.Scenario
	for _, spec := range []string{
		// One crash in the first round: every protocol dies in leader
		// election, the earliest shared phase.
		"crash=7@1",
		// A cascade of three crashes across the opening rounds.
		"crash=3@2;crash=11@9;crash=20@40",
		// A scripted crash plus aggressive random faults: random crash and
		// edge-drop draws land within the first dozens of rounds.
		"crash=5@10;seed-faults=0.02;fault-seed=3",
		// A late crash, after the cheap fixtures have finished: some runs
		// complete with no error despite the dead node, others lose it
		// mid-protocol — the post-fault completion path.
		"crash=7@400",
	} {
		sc, err := congest.ParseScenario(spec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sc)
	}
	return out
}

// TestScenarioEquivalenceAcrossEnginesAndReuse is the fault-model
// determinism proof: every fixture × every scripted scenario must replay
// bit-identically on workers 1, 4, and 8, and on a fresh network vs a
// Reset-reused one.
func TestScenarioEquivalenceAcrossEnginesAndReuse(t *testing.T) {
	const seed = 2
	workerCounts := []int{4, 8}
	if testing.Short() {
		workerCounts = []int{4}
	}
	for _, p := range protocols() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for i, sc := range scriptedScenarios(t) {
				want, err := executeScenario(p, sc, seed, 1)
				if err != nil {
					t.Fatalf("scenario %d sequential: %v", i, err)
				}
				for _, w := range workerCounts {
					got, err := executeScenario(p, sc, seed, w)
					if err != nil {
						t.Fatalf("scenario %d workers %d: %v", i, w, err)
					}
					compareFaultExecutions(t, fmt.Sprintf("scenario %d workers %d", i, w), got, want)
				}
				reused, err := executeScenarioReused(p, sc, seed, 1)
				if err != nil {
					t.Fatalf("scenario %d reused: %v", i, err)
				}
				compareFaultExecutions(t, fmt.Sprintf("scenario %d reused", i), reused, want)
			}
		})
	}
}

// goldenScenarioCosts pins the exact execution of deterministic crash
// scenarios at master seed 42 on the sequential engine — the faulty
// counterpart of goldenCosts. The pinned error string is deliberately part
// of the contract: under faults the error IS the protocol's answer, and it
// must be as reproducible as any output (which is why core reports its
// worst failing part deterministically instead of by map order).
var goldenScenarioCosts = []struct {
	name     string
	scenario string
	rounds   int64
	messages int64
	err      string
}{
	{
		name: "mst", scenario: "crash=7@1",
		rounds: 7, messages: 1302,
		err: "core: leader election: tree: node 7 disagrees on leader (disconnected graph?)",
	},
	{
		name: "sssp", scenario: "crash=3@2;crash=11@9;crash=20@40",
		rounds: 7, messages: 1314,
		err: "core: leader election: tree: node 3 disagrees on leader (disconnected graph?)",
	},
	{
		name: "corefast-pa", scenario: "crash=7@150",
		rounds: 285, messages: 3097,
		err: "core: part 12345 failed final verification",
	},
	{
		name: "domset", scenario: "crash=7@1",
		rounds: 8, messages: 520,
		err: "core: leader election: tree: node 7 disagrees on leader (disconnected graph?)",
	},
}

// TestGoldenScenarioCosts is the fault-model regression anchor: fixed seed,
// fixed crash script, exact Rounds/Messages/error — on a fresh sequential
// network, on the parallel engine, and replayed through Reset. Movement
// here means the fault semantics changed and must be a conscious decision.
func TestGoldenScenarioCosts(t *testing.T) {
	byName := make(map[string]protocol)
	for _, p := range protocols() {
		byName[p.name] = p
	}
	for _, want := range goldenScenarioCosts {
		want := want
		t.Run(want.name+"/"+want.scenario, func(t *testing.T) {
			p, ok := byName[want.name]
			if !ok {
				t.Fatalf("no protocol %q in the harness", want.name)
			}
			sc, err := congest.ParseScenario(want.scenario)
			if err != nil {
				t.Fatal(err)
			}
			check := func(label string, ex *faultExecution) {
				t.Helper()
				if ex.Total.Rounds != want.rounds || ex.Total.Messages != want.messages {
					t.Errorf("%s: cost = %d rounds / %d messages, golden %d / %d",
						label, ex.Total.Rounds, ex.Total.Messages, want.rounds, want.messages)
				}
				if ex.Err != want.err {
					t.Errorf("%s: err = %q, golden %q", label, ex.Err, want.err)
				}
			}
			ex, err := executeScenario(p, sc, 42, 1)
			if err != nil {
				t.Fatal(err)
			}
			check("sequential", ex)
			par, err := executeScenario(p, sc, 42, 4)
			if err != nil {
				t.Fatal(err)
			}
			check("workers=4", par)
			reused, err := executeScenarioReused(p, sc, 42, 1)
			if err != nil {
				t.Fatal(err)
			}
			check("reused", reused)
		})
	}
}

// TestRandomScenarioProperty is the property-style randomized leg: N seeded
// random fault scenarios per protocol (mst, sssp, corefast-pa — the
// corollary protocols on their standard fixtures), each asserting
// sequential == parallel == Reset-reused bit-identity. The scenarios differ
// only in fault seed, so each drains a different random crash/drop stream
// through the same protocols.
func TestRandomScenarioProperty(t *testing.T) {
	const seed = 5
	trials := 5
	if testing.Short() {
		trials = 3
	}
	byName := make(map[string]protocol)
	for _, p := range protocols() {
		byName[p.name] = p
	}
	for _, name := range []string{"mst", "sssp", "corefast-pa"} {
		p, ok := byName[name]
		if !ok {
			t.Fatalf("no protocol %q in the harness", name)
		}
		t.Run(name, func(t *testing.T) {
			for trial := 1; trial <= trials; trial++ {
				sc, err := congest.ParseScenario(fmt.Sprintf("seed-faults=0.02;fault-seed=%d", trial))
				if err != nil {
					t.Fatal(err)
				}
				want, err := executeScenario(p, sc, seed, 1)
				if err != nil {
					t.Fatalf("trial %d sequential: %v", trial, err)
				}
				got, err := executeScenario(p, sc, seed, 4)
				if err != nil {
					t.Fatalf("trial %d parallel: %v", trial, err)
				}
				compareFaultExecutions(t, fmt.Sprintf("trial %d parallel", trial), got, want)
				reused, err := executeScenarioReused(p, sc, seed, 4)
				if err != nil {
					t.Fatalf("trial %d reused: %v", trial, err)
				}
				compareFaultExecutions(t, fmt.Sprintf("trial %d reused", trial), reused, want)
			}
		})
	}
}
