package equivalence

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/domset"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/mincut"
	"shortcutpa/internal/mst"
	"shortcutpa/internal/part"
	"shortcutpa/internal/sssp"
	"shortcutpa/internal/verify"
)

// execution captures everything an engine run produces: a serialized
// protocol output plus the network's complete cost accounting.
type execution struct {
	Output string
	Total  congest.Metrics
	Phases []congest.Phase
}

// protocol is one table entry: a graph instance builder and a runner that
// executes the protocol on a prepared network and serializes its output.
type protocol struct {
	name  string
	graph func(seed int64) *graph.Graph
	run   func(net *congest.Network) (string, error)
}

// paFixture prepares the common PA fixture: an Engine in the given mode
// over a partition of parts several times deeper than the diameter (the
// regime Theorem 1.2 is about), with elected leaders — the same setup the
// bench harness uses.
func paFixture(net *congest.Network, mode core.Mode) (*core.Engine, *part.Info, error) {
	g := net.Graph()
	e, err := core.NewEngine(net, mode)
	if err != nil {
		return nil, nil, err
	}
	in, err := part.FromDense(net, graph.DeepPartition(g, 6*g.Eccentricity(0)))
	if err != nil {
		return nil, nil, err
	}
	if err := part.ElectLeaders(net, in, int64(16*g.N()+4096)); err != nil {
		return nil, nil, err
	}
	return e, in, nil
}

func grid(seed int64) *graph.Graph  { return graph.Grid(8, 8) }
func torus(seed int64) *graph.Graph { return graph.Torus(6, 6) }
func weighted(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.RandomizeWeights(graph.RandomConnected(80, 3.0/80.0, rng), 100, rng)
}

// weightedSmall keeps the tree-packing protocols (mincut) affordable under
// `-race -short`; packing runs one full MST per tree.
func weightedSmall(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.RandomizeWeights(graph.RandomConnected(48, 3.0/48.0, rng), 100, rng)
}

// powerlaw is the skewed fixture: heavy-tailed degrees (hubs), the regime
// the edge-balanced shard boundaries exist for. Equivalence on it proves
// skew-aware sharding preserves bit-identity where the shards are most
// lopsided.
func powerlaw(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.RandomizeWeights(graph.PowerLaw(96, 4, 2.5, rng), 100, rng)
}

// The runners shared between the uniform and power-law table entries.

func runCorefastPA(net *congest.Network) (string, error) {
	e, in, err := paFixture(net, core.Randomized)
	if err != nil {
		return "", err
	}
	res, err := e.Solve(in, idVals(net), congest.MinPair)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%v", res.Values), nil
}

func runMST(net *congest.Network) (string, error) {
	e, err := core.NewEngine(net, core.Randomized)
	if err != nil {
		return "", err
	}
	res, err := mst.Run(e, mst.Options{})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%v w=%d phases=%d", res.InMST, res.Weight, res.Phases), nil
}

func runDomset(net *congest.Network) (string, error) {
	e, err := core.NewEngine(net, core.Randomized)
	if err != nil {
		return "", err
	}
	res, err := domset.KDominatingSet(e, 3)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%v size=%d", res.IsCenter, res.Size), nil
}

func protocols() []protocol {
	return []protocol{
		{
			// Randomized CoreFast shortcut construction + PA solve
			// (Algorithm 4 / Theorem 1.2, randomized variant).
			name:  "corefast-pa",
			graph: grid,
			run:   runCorefastPA,
		},
		{
			// Deterministic heavy-path shortcut construction + PA solve
			// (Algorithms 7–8 / Theorem 1.2, deterministic variant).
			name:  "heavy-path-pa",
			graph: grid,
			run: func(net *congest.Network) (string, error) {
				e, in, err := paFixture(net, core.Deterministic)
				if err != nil {
					return "", err
				}
				res, err := e.Solve(in, idVals(net), congest.MaxPair)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%v", res.Values), nil
			},
		},
		{
			// Leaderless PA via star joining (Algorithm 9 / Appendix B).
			name:  "leaderless-pa",
			graph: torus,
			run: func(net *congest.Network) (string, error) {
				g := net.Graph()
				e, err := core.NewEngine(net, core.Randomized)
				if err != nil {
					return "", err
				}
				in, err := part.FromDense(net, graph.DeepPartition(g, 4*g.Eccentricity(0)))
				if err != nil {
					return "", err
				}
				res, err := e.SolveLeaderless(in, idVals(net), congest.SumPair)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%v", res.Values), nil
			},
		},
		{
			// Borůvka-over-PA MST (Corollary 1.3).
			name:  "mst",
			graph: weighted,
			run:   runMST,
		},
		{
			// Approximate SSSP over contracted light partitions
			// (Corollary 1.5), plus the exact Bellman-Ford baseline.
			name:  "sssp",
			graph: weighted,
			run: func(net *congest.Network) (string, error) {
				e, err := core.NewEngine(net, core.Randomized)
				if err != nil {
					return "", err
				}
				approx, err := sssp.Approx(e, 0, 0.5)
				if err != nil {
					return "", err
				}
				exact, err := sssp.BellmanFord(e, 0)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%v meta=%d %v", approx.Dist, approx.MetaRounds, exact.Dist), nil
			},
		},
		{
			// Tree-packing approximate min-cut (Corollary 1.4).
			name:  "mincut",
			graph: weightedSmall,
			run: func(net *congest.Network) (string, error) {
				e, err := core.NewEngine(net, core.Randomized)
				if err != nil {
					return "", err
				}
				res, err := mincut.Approx(e, 3)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%v w=%d tree=%d", res.Side, res.Weight, res.BestTree), nil
			},
		},
		{
			// Subgraph connectivity verification (Corollary A.1): component
			// labels of a spanning-tree-ish subgraph.
			name:  "verify",
			graph: grid,
			run: func(net *congest.Network) (string, error) {
				g := net.Graph()
				e, err := core.NewEngine(net, core.Randomized)
				if err != nil {
					return "", err
				}
				keep := make([]bool, g.M())
				for i := range keep {
					keep[i] = i%3 != 0 // drop a third of the edges
				}
				h := verify.SubgraphFromEdges(e, keep)
				lab, err := verify.ComponentLabels(e, h)
				if err != nil {
					return "", err
				}
				conn, err := verify.Connected(e, lab)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%v conn=%v", lab.Label, conn), nil
			},
		},
		{
			// Sampled k-dominating set (Corollary A.3) — exercises per-node
			// PRNG streams directly, so any stream divergence fails here.
			name:  "domset",
			graph: torus,
			run:   runDomset,
		},
		// The power-law legs: same protocols, hub-heavy topology. These are
		// the instances where the step/scan shard boundaries are maximally
		// uneven in node count, so a sharding bug that respects uniform
		// families shows up here.
		{
			name:  "corefast-pa-powerlaw",
			graph: powerlaw,
			run:   runCorefastPA,
		},
		{
			name:  "mst-powerlaw",
			graph: powerlaw,
			run:   runMST,
		},
		{
			name:  "domset-powerlaw",
			graph: powerlaw,
			run:   runDomset,
		},
	}
}

// idVals is the canonical PA input: each node contributes (ID, index).
func idVals(net *congest.Network) []congest.Val {
	vals := make([]congest.Val, net.N())
	for v := range vals {
		vals[v] = congest.Val{A: net.ID(v), B: int64(v)}
	}
	return vals
}

// execute runs one protocol on a fresh network with the given worker count
// and captures output plus full cost accounting.
func execute(p protocol, seed int64, workers int) (*execution, error) {
	net := congest.NewNetwork(p.graph(seed), seed)
	net.SetWorkers(workers)
	out, err := p.run(net)
	if err != nil {
		return nil, err
	}
	return &execution{Output: out, Total: net.Total(), Phases: net.Phases()}, nil
}

// TestParallelEngineMatchesSequential is the cross-engine equivalence
// harness: every protocol above, under every seed, must produce the exact
// same output, total cost, and per-phase cost log on the parallel engine
// (workers 2, 4, and 8 — the acceptance settings of the edge-balanced
// sharding work) as on the sequential engine.
func TestParallelEngineMatchesSequential(t *testing.T) {
	seeds := []int64{1, 2, 3}
	workerCounts := []int{2, 4, 8}
	if testing.Short() {
		// Keep the full seed × protocol coverage but one parallel
		// configuration, halving the matrix for the per-push CI gate; the
		// nightly full run restores every worker count.
		workerCounts = []int{4}
	}
	for _, p := range protocols() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for _, seed := range seeds {
				want, err := execute(p, seed, 1)
				if err != nil {
					t.Fatalf("seed %d sequential: %v", seed, err)
				}
				for _, w := range workerCounts {
					got, err := execute(p, seed, w)
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", seed, w, err)
					}
					if got.Output != want.Output {
						t.Errorf("seed %d workers %d: output diverged\nparallel:   %s\nsequential: %s",
							seed, w, clip(got.Output), clip(want.Output))
					}
					if got.Total != want.Total {
						t.Errorf("seed %d workers %d: total cost %+v, sequential %+v",
							seed, w, got.Total, want.Total)
					}
					if !reflect.DeepEqual(got.Phases, want.Phases) {
						t.Errorf("seed %d workers %d: per-phase cost log diverged", seed, w)
					}
				}
			}
		})
	}
}

// clip keeps failure messages readable for long serialized outputs.
func clip(s string) string {
	if len(s) > 200 {
		return s[:200] + "…"
	}
	return s
}
