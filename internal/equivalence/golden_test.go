package equivalence

import "testing"

// goldenCosts pins the exact cost accounting of every protocol fixture at
// master seed 42 on the sequential engine. These are regression anchors,
// not claims about optimal values: a future engine or protocol refactor
// that changes scheduling, message generation, or PRNG consumption will
// move them, and that movement must be a conscious decision (update the
// numbers in the same change that explains why). Costs are engine-
// independent — TestParallelEngineMatchesSequential proves the parallel
// engine reproduces these same totals.
var goldenCosts = []struct {
	name     string
	rounds   int64
	messages int64
}{
	{name: "corefast-pa", rounds: 339, messages: 3421},
	{name: "heavy-path-pa", rounds: 349, messages: 3960},
	{name: "leaderless-pa", rounds: 3716, messages: 11060},
	{name: "mst", rounds: 6116, messages: 45738},
	{name: "sssp", rounds: 3827, messages: 23781},
	{name: "mincut", rounds: 15358, messages: 70173},
	{name: "verify", rounds: 4599, messages: 16455},
	{name: "domset", rounds: 32, messages: 894},
	{name: "corefast-pa-powerlaw", rounds: 341, messages: 6342},
	{name: "mst-powerlaw", rounds: 4748, messages: 47509},
	{name: "domset-powerlaw", rounds: 24, messages: 3094},
}

// TestGoldenCostAccounting is the seeded determinism regression: fixed
// seed, fixed fixture, exact Rounds/Messages. It keeps engine refactors
// honest — silently changed cost accounting (the paper's two headline
// measures) fails here even if protocol outputs stay correct.
func TestGoldenCostAccounting(t *testing.T) {
	byName := make(map[string]protocol)
	for _, p := range protocols() {
		byName[p.name] = p
	}
	if len(byName) != len(goldenCosts) {
		t.Fatalf("harness has %d protocols, golden table has %d — keep them in sync",
			len(byName), len(goldenCosts))
	}
	for _, want := range goldenCosts {
		want := want
		t.Run(want.name, func(t *testing.T) {
			p, ok := byName[want.name]
			if !ok {
				t.Fatalf("no protocol %q in the harness", want.name)
			}
			ex, err := execute(p, 42, 1)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Total.Rounds != want.rounds || ex.Total.Messages != want.messages {
				t.Errorf("seed 42 cost = %d rounds / %d messages, golden %d / %d",
					ex.Total.Rounds, ex.Total.Messages, want.rounds, want.messages)
			}
		})
	}
}
