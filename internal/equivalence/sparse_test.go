package equivalence

import (
	"fmt"
	"reflect"
	"testing"

	"shortcutpa/internal/congest"
)

// sparse_test.go is the sparse-execution leg of the equivalence harness:
// frontier-drained rounds (the SetSparseRounds default) must be
// bit-identical to the dense full-range path that reproduces the pre-sparse
// engine — same outputs, same Totals, same per-phase cost log, same error
// strings — across every fixture, both engines, and fresh-vs-Reset-reused
// networks. Sparse execution is a scheduling optimization; nothing a
// protocol can observe is allowed to depend on it.

// executeSparse is execute with an explicit sparse-execution knob.
func executeSparse(p protocol, seed int64, workers int, sparse bool) (*execution, error) {
	net := congest.NewNetwork(p.graph(seed), seed)
	net.SetWorkers(workers)
	net.SetSparseRounds(sparse)
	out, err := p.run(net)
	if err != nil {
		return nil, err
	}
	return &execution{Output: out, Total: net.Total(), Phases: net.Phases()}, nil
}

// executeSparseReused runs the protocol twice on one sparse-enabled network
// with a Reset between and captures the replay: stale frontier lists and
// dirty counts from the first run must not leak into the second.
func executeSparseReused(p protocol, seed int64, workers int) (*execution, error) {
	net := congest.NewNetwork(p.graph(seed), seed)
	net.SetWorkers(workers)
	if _, err := p.run(net); err != nil {
		return nil, err
	}
	net.Reset()
	out, err := p.run(net)
	if err != nil {
		return nil, err
	}
	return &execution{Output: out, Total: net.Total(), Phases: net.Phases()}, nil
}

// TestSparseExecutionEquivalence compares, for every fixture, the
// dense-forced sequential baseline against sparse execution on workers 1,
// 4, and 8 and against a sparse Reset-reused replay.
func TestSparseExecutionEquivalence(t *testing.T) {
	const seed = 2
	sparseWorkers := []int{1, 4, 8}
	if testing.Short() {
		sparseWorkers = []int{1, 4}
	}
	for _, p := range protocols() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			want, err := executeSparse(p, seed, 1, false)
			if err != nil {
				t.Fatalf("dense baseline: %v", err)
			}
			check := func(label string, got *execution) {
				t.Helper()
				if got.Output != want.Output {
					t.Errorf("%s: output diverged\ngot:  %s\nwant: %s",
						label, clip(got.Output), clip(want.Output))
				}
				if got.Total != want.Total {
					t.Errorf("%s: total cost %+v, dense baseline %+v", label, got.Total, want.Total)
				}
				if !reflect.DeepEqual(got.Phases, want.Phases) {
					t.Errorf("%s: per-phase cost log diverged", label)
				}
			}
			for _, w := range sparseWorkers {
				got, err := executeSparse(p, seed, w, true)
				if err != nil {
					t.Fatalf("sparse workers %d: %v", w, err)
				}
				check(fmt.Sprintf("sparse workers %d", w), got)
			}
			reused, err := executeSparseReused(p, seed, 4)
			if err != nil {
				t.Fatalf("sparse reused: %v", err)
			}
			check("sparse reused workers 4", reused)
		})
	}
}

// longTailSpec is the retry-tail fixture: crashing node 7 at round 60
// leaves CoreFast construction with one part that can never verify, and the
// retry ladder spins out a six-figure round count carrying barely any
// messages (~115k rounds, ~11k messages). It is the engine's worst-case
// rounds-per-message regime — exactly what sparse execution is for — and
// the two engines legitimately make different sparse/dense mode decisions
// on it (the sequential engine's global frontier cap overflows where the
// parallel engine's per-shard caps hold), so bit-identity here proves the
// mode decision itself is unobservable.
const longTailSpec = "crash=7@60"

// goldenLongTail pins the exact execution of the long-tail fixture at
// master seed 42: rounds, messages, the error, and the total Step count
// (ActivityStats), which must agree across engines and modes even though
// their sparse-round counts differ.
var goldenLongTail = struct {
	rounds, messages, stepped int64
	err                       string
}{
	rounds:   114527,
	messages: 11384,
	stepped:  7175640,
	err:      "core: construction exceeded budget cap 5120 with 1 parts unverified",
}

// TestGoldenLongTailScenario is the seed-42 regression anchor for the new
// fixture, run dense-forced sequential, sparse sequential, sparse parallel,
// and (full mode) sparse Reset-replayed.
func TestGoldenLongTailScenario(t *testing.T) {
	byName := make(map[string]protocol)
	for _, p := range protocols() {
		byName[p.name] = p
	}
	p, ok := byName["corefast-pa"]
	if !ok {
		t.Fatal("no corefast-pa protocol in the harness")
	}
	sc, err := congest.ParseScenario(longTailSpec)
	if err != nil {
		t.Fatal(err)
	}
	type leg struct {
		label   string
		workers int
		sparse  bool
		reused  bool
	}
	legs := []leg{
		{"dense sequential", 1, false, false},
		{"sparse workers 4", 4, true, false},
	}
	if !testing.Short() {
		legs = append(legs,
			leg{"sparse sequential", 1, true, false},
			leg{"sparse reused workers 4", 4, true, true},
		)
	}
	for _, l := range legs {
		net := congest.NewNetwork(p.graph(42), 42)
		net.SetWorkers(l.workers)
		net.SetSparseRounds(l.sparse)
		ex, err := runScenario(p, net, sc)
		if err != nil {
			t.Fatalf("%s: %v", l.label, err)
		}
		if l.reused {
			net.Reset()
			out, rerr := p.run(net)
			ex = &faultExecution{Output: out, Total: net.Total(), Phases: net.Phases()}
			if rerr != nil {
				ex.Err = rerr.Error()
			}
		}
		if ex.Total.Rounds != goldenLongTail.rounds || ex.Total.Messages != goldenLongTail.messages {
			t.Errorf("%s: cost = %d rounds / %d messages, golden %d / %d",
				l.label, ex.Total.Rounds, ex.Total.Messages, goldenLongTail.rounds, goldenLongTail.messages)
		}
		if ex.Err != goldenLongTail.err {
			t.Errorf("%s: err = %q, golden %q", l.label, ex.Err, goldenLongTail.err)
		}
		stepped, sparseRounds := net.ActivityStats()
		if stepped != goldenLongTail.stepped {
			t.Errorf("%s: stepped = %d, golden %d", l.label, stepped, goldenLongTail.stepped)
		}
		if l.sparse && sparseRounds == 0 {
			t.Errorf("%s: sparse leg never drained a frontier round", l.label)
		}
		if !l.sparse && sparseRounds != 0 {
			t.Errorf("%s: dense-forced leg drained %d sparse rounds", l.label, sparseRounds)
		}
	}
}
