package equivalence

import (
	"fmt"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
)

// Degenerate-topology coverage for the flat edge-slot engine: layouts where
// CSR ranges are empty (isolated nodes, n<=1), where one node owns half of
// all slots (star hub), and where components never talk to each other
// (disconnected). Each topology runs a protocol that exercises Recv
// ordering, per-node randomness, and the wake scheduler, on the sequential
// engine and the parallel engine at several worker counts, and the two
// executions must be bit-identical — the same contract the main harness
// proves on the paper protocols.

// degenerateTopologies enumerates the shapes the flat layout must survive.
func degenerateTopologies() []struct {
	name string
	g    *graph.Graph
} {
	twoTrianglesAndLoner := graph.MustNew(7, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 0, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 5, V: 3, W: 1},
		// node 6 is isolated: degree 0, an empty slot range mid-array is
		// impossible (it sits at the end) but an empty CSR row is not.
	})
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.MustNew(0, nil)},
		{"n=1", graph.MustNew(1, nil)},
		{"n=2", graph.Path(2)},
		{"disconnected", twoTrianglesAndLoner},
		{"star", graph.Star(9)},
		{"path", graph.Path(7)},
	}
}

// TestDegenerateTopologiesAcrossEngines is the equivalence harness on the
// degenerate shapes: sequential vs workers 2, 3, and 16 (16 exceeds n for
// every instance here, exercising the worker clamp).
func TestDegenerateTopologiesAcrossEngines(t *testing.T) {
	for _, tc := range degenerateTopologies() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 9} {
				want := degenerateRun(t, tc.g, seed, 1)
				for _, w := range []int{2, 3, 16} {
					if got := degenerateRun(t, tc.g, seed, w); got != want {
						t.Errorf("seed %d workers %d diverged\nparallel:   %s\nsequential: %s",
							seed, w, clip(got), clip(want))
					}
				}
			}
		})
	}
}

// degenerateRun executes a gossip/echo protocol on g with the given engine
// parallelism and serializes the complete observable outcome: per-node
// final state, a transcript digest of every (round, port, payload)
// delivery, and the network cost accounting.
func degenerateRun(t *testing.T, g *graph.Graph, seed int64, workers int) string {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	net.SetWorkers(workers)
	n := g.N()
	// Shared-proc form: per-node state is the flat minHeard/digest arrays
	// (the production NodeProc idiom, exercised here on degenerate shapes).
	minHeard := net.Scratch().Int64s(n)
	digest := make([]int64, n)
	for v := 0; v < n; v++ {
		minHeard[v] = net.ID(v)
	}
	proc := congest.NodeProcFunc(func(ctx *congest.Ctx, v int) bool {
		for _, in := range ctx.Recv() {
			if in.Msg.A < minHeard[v] {
				minHeard[v] = in.Msg.A
			}
			digest[v] = digest[v]*1000003 + int64(in.Port)*31 + in.Msg.A%997 + ctx.Round()
		}
		if ctx.Round() < 5 {
			if d := ctx.Degree(); d > 0 {
				p := ctx.Rand().Intn(d)
				ctx.Send(p, congest.Message{A: minHeard[v]})
				if ctx.Round()%2 == 0 {
					for q := 0; q < d; q++ {
						if ctx.CanSend(q) {
							ctx.Send(q, congest.Message{A: minHeard[v], B: 1})
						}
					}
				}
			}
			return true
		}
		return false
	})
	if _, err := net.RunNodes("degenerate", proc, 100); err != nil {
		t.Fatalf("workers %d: %v", workers, err)
	}
	return fmt.Sprintf("state=%v digest=%v total=%+v phases=%+v", minHeard, digest, net.Total(), net.Phases())
}

// TestDegenerateComponentsStayIsolated pins the disconnected case down
// further: a flood from node 0 must reach exactly its own component — a
// mis-addressed edge slot would leak it across.
func TestDegenerateComponentsStayIsolated(t *testing.T) {
	g := degenerateTopologies()[3].g // twoTrianglesAndLoner
	comp, _ := g.Components()
	for _, workers := range []int{1, 4} {
		net := congest.NewNetwork(g, 5)
		reached := net.Scratch().Bools(g.N())
		proc := congest.NodeProcFunc(func(ctx *congest.Ctx, v int) bool {
			if (ctx.Round() == 0 && v == 0) || len(ctx.Recv()) > 0 {
				if !reached[v] {
					reached[v] = true
					ctx.Broadcast(congest.Message{Kind: 1})
				}
			}
			return false
		})
		if _, err := net.RunNodesParallel("flood", proc, 100, workers); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if want := comp[v] == comp[0]; reached[v] != want {
				t.Errorf("workers %d: node %d reached=%v, want %v", workers, v, reached[v], want)
			}
		}
	}
}
