package equivalence

import (
	"reflect"
	"testing"

	"shortcutpa/internal/congest"
)

// reuse_test.go is the network-reuse leg of the equivalence harness: the
// multi-run serving mode (internal/bench jobs) runs protocols on networks
// recycled through congest.Network.Reset() instead of rebuilt, and that is
// only sound if a Reset-reused network is bit-identical — outputs, total
// cost, per-phase log — to a freshly constructed one. Before Reset dropped
// the lazily created per-node PRNGs, a reused network silently drew from
// mid-stream state and every randomized protocol here diverged.

// executeReused runs the protocol twice on one network with a Reset in
// between and captures the second execution — the reused run the serving
// mode's warm-network cache produces.
func executeReused(p protocol, seed int64, workers int) (*execution, error) {
	net := congest.NewNetwork(p.graph(seed), seed)
	net.SetWorkers(workers)
	if _, err := p.run(net); err != nil {
		return nil, err
	}
	net.Reset()
	out, err := p.run(net)
	if err != nil {
		return nil, err
	}
	return &execution{Output: out, Total: net.Total(), Phases: net.Phases()}, nil
}

// TestResetReusedNetworkMatchesFresh: every protocol fixture, rerun on a
// Reset-reused network, must reproduce the fresh-network execution exactly —
// on the sequential engine and on the parallel one.
func TestResetReusedNetworkMatchesFresh(t *testing.T) {
	seeds := []int64{1, 3}
	workerCounts := []int{1, 4}
	for _, p := range protocols() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			for _, seed := range seeds {
				want, err := execute(p, seed, 1)
				if err != nil {
					t.Fatalf("seed %d fresh: %v", seed, err)
				}
				for _, w := range workerCounts {
					got, err := executeReused(p, seed, w)
					if err != nil {
						t.Fatalf("seed %d workers %d reused: %v", seed, w, err)
					}
					if got.Output != want.Output {
						t.Errorf("seed %d workers %d: reused-network output diverged\nreused: %s\nfresh:  %s",
							seed, w, clip(got.Output), clip(want.Output))
					}
					if got.Total != want.Total {
						t.Errorf("seed %d workers %d: reused total cost %+v, fresh %+v",
							seed, w, got.Total, want.Total)
					}
					if !reflect.DeepEqual(got.Phases, want.Phases) {
						t.Errorf("seed %d workers %d: reused per-phase cost log diverged", seed, w)
					}
				}
			}
		})
	}
}

// TestGoldenCostsOnReusedNetwork anchors the reuse contract to the golden
// fixtures themselves: the second run on a Reset-reused network at the
// golden seed must hit the exact pinned Rounds/Messages — the same numbers
// TestGoldenCostAccounting pins for fresh networks.
func TestGoldenCostsOnReusedNetwork(t *testing.T) {
	byName := make(map[string]protocol)
	for _, p := range protocols() {
		byName[p.name] = p
	}
	for _, want := range goldenCosts {
		want := want
		t.Run(want.name, func(t *testing.T) {
			p, ok := byName[want.name]
			if !ok {
				t.Fatalf("no protocol %q in the harness", want.name)
			}
			ex, err := executeReused(p, 42, 1)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Total.Rounds != want.rounds || ex.Total.Messages != want.messages {
				t.Errorf("reused-network seed 42 cost = %d rounds / %d messages, golden %d / %d",
					ex.Total.Rounds, ex.Total.Messages, want.rounds, want.messages)
			}
		})
	}
}
