// Package equivalence holds the cross-engine test harness: every major
// protocol in the repository is executed under the sequential engine and
// under the parallel engine (several worker counts), across several master
// seeds, and the two executions must be bit-identical — same outputs, same
// total Metrics, same per-phase cost log. This is the proof obligation for
// the parallel engine's determinism guarantee (internal/congest/README.md);
// any divergence in scheduling, message ordering, or per-node PRNG streams
// shows up as a failure here.
//
// The same harness doubles as the migration safety net for protocol-layer
// refactors (PR 3's RecvOn/flat-scratch sweep ran under it unchanged), and
// degenerate_test.go pins the topologies the flat engine layout must
// survive: n=0, n=1, n=2, disconnected graphs with isolated nodes, stars,
// and paths. golden_test.go freezes absolute Rounds/Messages costs per
// protocol so cost regressions cannot slip in silently.
package equivalence
