// Package tree implements the rooted-spanning-tree substrate the paper
// assumes (Section 2.2): leader election, BFS-tree construction, broadcast
// and convergecast along the tree, subtree sizes, and the heavy-path
// decomposition of Sleator–Tarjan [39] used by the deterministic shortcut
// construction (Section 6.3).
//
// All of these run on the congest simulator as true message-passing
// protocols; the structs returned hold only information that individual
// nodes learned locally (each slice entry is the knowledge of that node).
package tree
