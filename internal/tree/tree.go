package tree

import (
	"fmt"

	"shortcutpa/internal/congest"
)

// Message kinds used by this package's protocols.
const (
	kindElect int32 = iota + 1
	kindJoin
	kindChild
	kindUp
	kindDown
)

// BFSTree is the rooted breadth-first spanning tree. Entry v of each slice
// is knowledge held by node v.
type BFSTree struct {
	Root       int
	ParentPort []int   // port toward parent; -1 at the root
	ParentNode []int   // parent's node index; -1 at the root (engine-side convenience)
	Depth      []int   // hop distance from the root
	ChildPorts [][]int // ports toward children
	Height     int     // max depth; an upper bound D on distances from root
}

// IsChildPort reports whether port p of node v leads to one of v's children.
func (t *BFSTree) IsChildPort(v, p int) bool {
	for _, cp := range t.ChildPorts[v] {
		if cp == p {
			return true
		}
	}
	return false
}

// ElectLeader floods the minimum node ID through the network and returns the
// node holding it. O(D) rounds. With the hashed (random-order) IDs the
// simulator assigns, expected messages are O(m log n) — the paper's
// substrate [27] achieves Õ(m) worst-case; see DESIGN.md (substitutions).
func ElectLeader(net *congest.Network, maxRounds int64) (int, error) {
	n := net.N()
	// Leaf-scoped arena use: minID is consumed before this function returns.
	minID := net.Scratch().Int64s(n)
	for v := 0; v < n; v++ {
		minID[v] = net.ID(v)
	}
	if _, err := net.RunNodes("tree/elect", &electProc{minID: minID}, maxRounds); err != nil {
		return -1, err
	}
	leader := net.NodeByID(minID[0])
	if leader < 0 {
		return -1, fmt.Errorf("tree: election converged to unknown ID %d", minID[0])
	}
	for v := 0; v < n; v++ {
		if minID[v] != minID[0] {
			return -1, fmt.Errorf("tree: node %d disagrees on leader (disconnected graph?)", v)
		}
	}
	return leader, nil
}

// electProc is the shared min-ID flood: per-node state is the flat minID
// array.
type electProc struct {
	minID []int64
}

// Step implements congest.NodeProc.
func (p *electProc) Step(ctx *congest.Ctx, v int) bool {
	improved := ctx.Round() == 0
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		if in.Msg.A < p.minID[v] {
			p.minID[v] = in.Msg.A
			improved = true
		}
	})
	if improved {
		ctx.Broadcast(congest.Message{Kind: kindElect, A: p.minID[v]})
	}
	return false
}

// bfsProc is the shared BFS-tree construction state machine: adopt the
// first JOIN heard (lowest port on ties), announce CHILD to the parent,
// forward JOIN everywhere else. Per-node state: the tree under
// construction plus the flat joined array.
type bfsProc struct {
	t      *BFSTree
	root   int
	joined []bool
}

// Step implements congest.NodeProc.
func (b *bfsProc) Step(ctx *congest.Ctx, v int) bool {
	if ctx.Round() == 0 && v == b.root {
		b.joined[v] = true
		b.t.Depth[v] = 0
		ctx.Broadcast(congest.Message{Kind: kindJoin, A: 0})
		return false
	}
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		switch in.Msg.Kind {
		case kindJoin:
			if b.joined[v] {
				return
			}
			b.joined[v] = true
			b.t.ParentPort[v] = in.Port
			b.t.Depth[v] = int(in.Msg.A) + 1
			for p := 0; p < ctx.Degree(); p++ {
				if p == in.Port {
					ctx.Send(p, congest.Message{Kind: kindChild})
				} else {
					ctx.Send(p, congest.Message{Kind: kindJoin, A: int64(b.t.Depth[v])})
				}
			}
		case kindChild:
			b.t.ChildPorts[v] = append(b.t.ChildPorts[v], in.Port)
		}
	})
	return false
}

// BuildBFS constructs the BFS tree rooted at root. O(D) rounds, O(m)
// messages (each node broadcasts once).
func BuildBFS(net *congest.Network, root int, maxRounds int64) (*BFSTree, error) {
	n := net.N()
	t := &BFSTree{
		Root:       root,
		ParentPort: make([]int, n),
		ParentNode: make([]int, n),
		Depth:      make([]int, n),
		ChildPorts: make([][]int, n),
	}
	for v := 0; v < n; v++ {
		t.ParentPort[v] = -1
		t.ParentNode[v] = -1
	}
	bp := &bfsProc{t: t, root: root, joined: make([]bool, n)}
	if _, err := net.RunNodes("tree/bfs", bp, maxRounds); err != nil {
		return nil, err
	}
	g := net.Graph()
	for v := 0; v < n; v++ {
		if v != root {
			if t.ParentPort[v] < 0 {
				return nil, fmt.Errorf("tree: node %d not reached by BFS (disconnected graph?)", v)
			}
			t.ParentNode[v] = g.Neighbor(v, t.ParentPort[v])
		}
		if t.Depth[v] > t.Height {
			t.Height = t.Depth[v]
		}
	}
	return t, nil
}

// convergeProc aggregates values up the tree: a node sends to its parent
// once all children have reported, combining with f. onChild, if non-nil,
// observes each (child port, child subtree value) pair at the parent.
// Shared across nodes; per-node state is the flat acc/waiting arrays
// (waiting == -1 marks a node that already fired).
type convergeProc struct {
	t       *BFSTree
	f       congest.Combine
	acc     []congest.Val
	waiting []int
	onChild func(v, port int, val congest.Val)
	subtree []congest.Val
}

// Step implements congest.NodeProc.
func (c *convergeProc) Step(ctx *congest.Ctx, v int) bool {
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		if in.Msg.Kind != kindUp {
			return
		}
		val := congest.Val{A: in.Msg.A, B: in.Msg.B}
		if c.onChild != nil {
			c.onChild(v, in.Port, val)
		}
		c.acc[v] = c.f(c.acc[v], val)
		c.waiting[v]--
	})
	if c.waiting[v] == 0 {
		c.waiting[v] = -1 // fire once
		c.subtree[v] = c.acc[v]
		if c.t.ParentPort[v] >= 0 {
			ctx.Send(c.t.ParentPort[v], congest.Message{Kind: kindUp, A: c.acc[v].A, B: c.acc[v].B})
		}
	}
	return false
}

// Convergecast aggregates vals up t with f. It returns per-node subtree
// aggregates (entry v = f over v's subtree); the root's entry is the global
// aggregate. O(height) rounds, n-1 messages. onChild, if non-nil, is invoked
// at each parent for every (child port, child subtree aggregate) — local
// knowledge a parent naturally obtains.
func Convergecast(net *congest.Network, t *BFSTree, vals []congest.Val, f congest.Combine,
	onChild func(v, port int, val congest.Val), maxRounds int64) ([]congest.Val, error) {
	n := net.N()
	subtree := make([]congest.Val, n)
	cp := &convergeProc{
		t: t, f: f,
		acc:     make([]congest.Val, n),
		waiting: make([]int, n),
		onChild: onChild, subtree: subtree,
	}
	copy(cp.acc, vals)
	for v := 0; v < n; v++ {
		cp.waiting[v] = len(t.ChildPorts[v])
	}
	if _, err := net.RunNodes("tree/convergecast", cp, maxRounds); err != nil {
		return nil, err
	}
	return subtree, nil
}

// Broadcast sends val from the root down t; returns per-node received
// values (all equal to val). O(height) rounds, n-1 messages.
func Broadcast(net *congest.Network, t *BFSTree, val congest.Val, maxRounds int64) ([]congest.Val, error) {
	n := net.N()
	got := make([]congest.Val, n)
	bp := &broadcastProc{t: t, val: val, got: got}
	if _, err := net.RunNodes("tree/broadcast", bp, maxRounds); err != nil {
		return nil, err
	}
	return got, nil
}

// broadcastProc floods val from the root down the tree.
type broadcastProc struct {
	t   *BFSTree
	val congest.Val
	got []congest.Val
}

// Step implements congest.NodeProc.
func (b *broadcastProc) Step(ctx *congest.Ctx, v int) bool {
	if ctx.Round() == 0 && v == b.t.Root {
		b.got[v] = b.val
		for _, p := range b.t.ChildPorts[v] {
			ctx.Send(p, congest.Message{Kind: kindDown, A: b.val.A, B: b.val.B})
		}
	}
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		b.got[v] = congest.Val{A: in.Msg.A, B: in.Msg.B}
		for _, p := range b.t.ChildPorts[v] {
			ctx.Send(p, in.Msg)
		}
	})
	return false
}

// SubtreeSizes returns, per node, the size of its subtree in t, and invokes
// onChild per (parent, child port, child subtree size) if non-nil.
func SubtreeSizes(net *congest.Network, t *BFSTree, onChild func(v, port int, size int64), maxRounds int64) ([]int64, error) {
	n := net.N()
	vals := make([]congest.Val, n)
	for v := range vals {
		vals[v] = congest.Val{A: 1}
	}
	var hook func(v, port int, val congest.Val)
	if onChild != nil {
		hook = func(v, port int, val congest.Val) { onChild(v, port, val.A) }
	}
	sub, err := Convergecast(net, t, vals, congest.SumPair, hook, maxRounds)
	if err != nil {
		return nil, err
	}
	sizes := make([]int64, n)
	for v := range sub {
		sizes[v] = sub[v].A
	}
	return sizes, nil
}
