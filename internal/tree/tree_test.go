package tree

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
)

const testBudget = 100000

func buildTree(t *testing.T, g *graph.Graph, seed int64) (*congest.Network, *BFSTree) {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	leader, err := ElectLeader(net, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := BuildBFS(net, leader, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	return net, bt
}

func TestElectLeaderPicksGlobalMinID(t *testing.T) {
	g := graph.Grid(6, 7)
	net := congest.NewNetwork(g, 11)
	leader, err := ElectLeader(net, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if net.ID(v) < net.ID(leader) {
			t.Fatalf("node %d has smaller ID than elected leader", v)
		}
	}
}

func TestElectLeaderRoundsScaleWithDiameter(t *testing.T) {
	g := graph.Path(64)
	net := congest.NewNetwork(g, 5)
	before := net.Total().Rounds
	if _, err := ElectLeader(net, testBudget); err != nil {
		t.Fatal(err)
	}
	rounds := net.Total().Rounds - before
	if rounds > int64(2*g.N()) {
		t.Fatalf("election took %d rounds on P%d, want O(D)", rounds, g.N())
	}
}

func TestBFSTreeMatchesOfflineBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomConnected(60, 0.06, rng)
		net, bt := buildTree(t, g, int64(trial))
		dist := g.BFSFrom(bt.Root)
		for v := 0; v < g.N(); v++ {
			if bt.Depth[v] != dist[v] {
				t.Fatalf("trial %d node %d: depth %d, BFS dist %d", trial, v, bt.Depth[v], dist[v])
			}
			if v != bt.Root {
				pu := bt.ParentNode[v]
				if dist[pu] != dist[v]-1 {
					t.Fatalf("trial %d node %d: parent %d not one level up", trial, v, pu)
				}
			}
		}
		_ = net
	}
}

func TestBFSChildrenMatchParents(t *testing.T) {
	g := graph.Grid(5, 8)
	_, bt := buildTree(t, g, 3)
	// Count children: every non-root node is a child of exactly one parent.
	total := 0
	for v := 0; v < g.N(); v++ {
		total += len(bt.ChildPorts[v])
		for _, p := range bt.ChildPorts[v] {
			c := g.Neighbor(v, p)
			if bt.ParentNode[c] != v {
				t.Fatalf("node %d lists %d as child, but %d's parent is %d", v, c, c, bt.ParentNode[c])
			}
		}
	}
	if total != g.N()-1 {
		t.Fatalf("children total %d, want %d", total, g.N()-1)
	}
}

func TestConvergecastComputesSum(t *testing.T) {
	g := graph.Grid(4, 6)
	net, bt := buildTree(t, g, 7)
	vals := make([]congest.Val, g.N())
	var want int64
	rng := rand.New(rand.NewSource(9))
	for v := range vals {
		vals[v] = congest.Val{A: int64(rng.Intn(100))}
		want += vals[v].A
	}
	sub, err := Convergecast(net, bt, vals, congest.SumPair, nil, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if sub[bt.Root].A != want {
		t.Fatalf("root sum %d, want %d", sub[bt.Root].A, want)
	}
}

func TestConvergecastMinMatchesOffline(t *testing.T) {
	g := graph.CompleteBinaryTree(5)
	net, bt := buildTree(t, g, 13)
	vals := make([]congest.Val, g.N())
	rng := rand.New(rand.NewSource(17))
	want := congest.Val{A: 1 << 60}
	for v := range vals {
		vals[v] = congest.Val{A: int64(rng.Intn(1000)), B: int64(v)}
		want = congest.MinPair(want, vals[v])
	}
	sub, err := Convergecast(net, bt, vals, congest.MinPair, nil, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if sub[bt.Root] != want {
		t.Fatalf("root min %+v, want %+v", sub[bt.Root], want)
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	g := graph.Lollipop(30, 6)
	net, bt := buildTree(t, g, 19)
	got, err := Broadcast(net, bt, congest.Val{A: 424242, B: -1}, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	for v := range got {
		if got[v] != (congest.Val{A: 424242, B: -1}) {
			t.Fatalf("node %d got %+v", v, got[v])
		}
	}
}

func TestSubtreeSizes(t *testing.T) {
	g := graph.Path(9)
	net, bt := buildTree(t, g, 23)
	sizes, err := SubtreeSizes(net, bt, nil, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if sizes[bt.Root] != int64(g.N()) {
		t.Fatalf("root subtree size %d, want %d", sizes[bt.Root], g.N())
	}
	// Each node's size = 1 + sum of children's sizes.
	for v := 0; v < g.N(); v++ {
		var sum int64 = 1
		for _, p := range bt.ChildPorts[v] {
			sum += sizes[g.Neighbor(v, p)]
		}
		if sizes[v] != sum {
			t.Fatalf("node %d size %d, want %d", v, sizes[v], sum)
		}
	}
}

func TestHeavyPathInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	graphs := []*graph.Graph{
		graph.Path(40),
		graph.Grid(6, 7),
		graph.CompleteBinaryTree(6),
		graph.RandomTree(80, rng),
		graph.RandomConnected(70, 0.05, rng),
	}
	for gi, g := range graphs {
		net, bt := buildTree(t, g, int64(41+gi))
		h, err := DecomposeHeavyPaths(net, bt, testBudget)
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		n := g.N()
		// (a) Each node has at most one heavy child, and heavy marks agree
		// across the edge.
		for v := 0; v < n; v++ {
			if p := h.HeavyChildPort[v]; p >= 0 {
				c := g.Neighbor(v, p)
				if !h.ParentHeavy[c] {
					t.Fatalf("graph %d: heavy child %d of %d not marked", gi, c, v)
				}
			}
		}
		// (b) Path members agree on TopID and Length, and indices along a
		// chain increase by one upward.
		for v := 0; v < n; v++ {
			if h.ParentHeavy[v] {
				u := bt.ParentNode[v]
				if h.TopID[u] != h.TopID[v] || h.Length[u] != h.Length[v] {
					t.Fatalf("graph %d: chain info mismatch across heavy edge %d-%d", gi, v, u)
				}
				if h.Index[u] != h.Index[v]+1 {
					t.Fatalf("graph %d: index %d above %d on heavy edge %d-%d", gi, h.Index[u], h.Index[v], v, u)
				}
				if h.Level[u] != h.Level[v] {
					t.Fatalf("graph %d: level mismatch on chain %d-%d", gi, v, u)
				}
			}
		}
		// (c) Any leaf-to-root walk crosses at most log2(n) light edges.
		limit := 0
		for s := 1; s < n; s *= 2 {
			limit++
		}
		for v := 0; v < n; v++ {
			light := 0
			for u := v; u != bt.Root; u = bt.ParentNode[u] {
				if !h.ParentHeavy[u] {
					light++
				}
			}
			if light > limit {
				t.Fatalf("graph %d: node %d crosses %d light edges, limit %d", gi, v, light, limit)
			}
		}
		// (d) Levels: a path with no light in-edges has level 0; levels of
		// nested paths strictly increase; MaxLevel <= log2(n).
		if h.MaxLevel > limit {
			t.Fatalf("graph %d: MaxLevel %d exceeds log2(n)=%d", gi, h.MaxLevel, limit)
		}
		for v := 0; v < n; v++ {
			if v == bt.Root {
				continue
			}
			u := bt.ParentNode[v]
			if !h.ParentHeavy[v] && h.Level[u] <= h.Level[v] {
				t.Fatalf("graph %d: light edge %d->%d has levels %d -> %d, want increase",
					gi, v, u, h.Level[v], h.Level[u])
			}
		}
	}
}

func TestHeavyPathOnPathGraphIsOneChain(t *testing.T) {
	g := graph.Path(16)
	net, bt := buildTree(t, g, 57)
	h, err := DecomposeHeavyPaths(net, bt, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	// A path rooted at one end decomposes into a single heavy chain (every
	// internal edge has a subtree holding more than half the parent's).
	if bt.Root != 0 && bt.Root != g.N()-1 {
		t.Skip("leader not at an end; chain-count claim only holds for end roots")
	}
	tops := 0
	for v := 0; v < g.N(); v++ {
		if h.IsTop(v) {
			tops++
		}
	}
	if tops != 1 {
		t.Fatalf("path graph decomposed into %d chains, want 1", tops)
	}
}
