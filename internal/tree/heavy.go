package tree

import (
	"fmt"

	"shortcutpa/internal/congest"
)

// Message kinds for the heavy-path protocols.
const (
	kindHeavyMark int32 = iota + 10
	kindLevelUp
	kindIndexUp
	kindPathDown
)

// HeavyPaths is the heavy-path decomposition of a BFS tree (Definition 6.5):
// an edge (parent u, child v) is heavy iff v's subtree holds more than half
// of u's subtree; heavy edges form vertex-disjoint upward chains ("heavy
// paths"; every node is on exactly one, possibly as a singleton). Any
// leaf-to-root path crosses at most log2(n) light edges, so at most log2(n)+1
// heavy paths. Entry v of each slice is node v's local knowledge.
type HeavyPaths struct {
	ParentHeavy    []bool  // v's parent edge is heavy
	HeavyChildPort []int   // port to v's heavy child; -1 if none
	Index          []int64 // 1-based position from the path's bottom ("source")
	Length         []int64 // number of nodes on v's path
	TopID          []int64 // ID of the path's top node (the "sink"), = path ID
	Level          []int   // light level of v's path (0: no incoming light edges)
	MaxLevel       int     // maximum Level over all paths
}

// IsTop reports whether v is the top (sink) node of its heavy path.
func (h *HeavyPaths) IsTop(v int) bool { return !h.ParentHeavy[v] }

// IsBottom reports whether v is the bottom (source) node of its heavy path.
func (h *HeavyPaths) IsBottom(v int) bool { return h.HeavyChildPort[v] < 0 }

// UpPathPort returns the port toward the next node up v's path, or -1 at the
// top.
func (h *HeavyPaths) UpPathPort(t *BFSTree, v int) int {
	if h.ParentHeavy[v] {
		return t.ParentPort[v]
	}
	return -1
}

// DecomposeHeavyPaths runs the heavy-path decomposition on t: subtree sizes
// (convergecast), heavy-child marking, light-level convergecast, bottom-up
// numbering along chains, and a top-down pass distributing (top ID, length,
// level) to all chain members. O(D) rounds per phase (chains are
// vertex-disjoint, so numbering pipelines without congestion), O(n) messages
// per phase.
func DecomposeHeavyPaths(net *congest.Network, t *BFSTree, maxRounds int64) (*HeavyPaths, error) {
	n := net.N()
	h := &HeavyPaths{
		ParentHeavy:    make([]bool, n),
		HeavyChildPort: make([]int, n),
		Index:          make([]int64, n),
		Length:         make([]int64, n),
		TopID:          make([]int64, n),
		Level:          make([]int, n),
	}

	// Phase 1: subtree sizes; parents record per-child sizes and pick the
	// heavy child locally (at most one child can exceed half the subtree).
	childSize := make([]map[int]int64, n)
	for v := range childSize {
		childSize[v] = make(map[int]int64, len(t.ChildPorts[v]))
	}
	sizes, err := SubtreeSizes(net, t, func(v, port int, size int64) {
		childSize[v][port] = size
	}, maxRounds)
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		h.HeavyChildPort[v] = -1
		for port, cs := range childSize[v] {
			if 2*cs > sizes[v] {
				h.HeavyChildPort[v] = port
			}
		}
	}

	// Phase 2: tell the heavy child its parent edge is heavy.
	procs := net.Scratch().Procs(n)
	for v := 0; v < n; v++ {
		v := v
		procs[v] = congest.ProcFunc(func(ctx *congest.Ctx) bool {
			if ctx.Round() == 0 && h.HeavyChildPort[v] >= 0 {
				ctx.Send(h.HeavyChildPort[v], congest.Message{Kind: kindHeavyMark})
			}
			ctx.ForRecv(func(int, congest.Incoming) {
				h.ParentHeavy[v] = true
			})
			return false
		})
	}
	if _, err := net.Run("tree/heavy-mark", procs, maxRounds); err != nil {
		return nil, err
	}

	// Phase 3: light-level convergecast. PL(v) = max over children c of
	// PL(c) + (edge light ? 1 : 0); a path's level is PL at its top.
	pl := make([]int64, n)
	if err := runLevelConvergecast(net, t, h, pl, maxRounds); err != nil {
		return nil, err
	}

	// Phase 4: number chains bottom-up: bottoms take index 1 and indices
	// propagate up heavy edges. (procs shares runLevelConvergecast's arena
	// buffer; that phase has completed.)
	procs = net.Scratch().Procs(n)
	idxImpls := make([]indexUpProc, n)
	for v := 0; v < n; v++ {
		idxImpls[v] = indexUpProc{t: t, h: h, v: v}
		procs[v] = &idxImpls[v]
	}
	if _, err := net.Run("tree/heavy-index", procs, maxRounds); err != nil {
		return nil, err
	}

	// Phase 5: tops distribute (top ID, length, level) down their chains.
	for v := 0; v < n; v++ {
		v := v
		procs[v] = congest.ProcFunc(func(ctx *congest.Ctx) bool {
			if ctx.Round() == 0 && h.IsTop(v) {
				h.TopID[v] = ctx.ID()
				h.Length[v] = h.Index[v]
				h.Level[v] = int(pl[v])
				if p := h.HeavyChildPort[v]; p >= 0 {
					ctx.Send(p, congest.Message{Kind: kindPathDown, A: h.TopID[v], B: h.Length[v], C: pl[v]})
				}
			}
			ctx.ForRecv(func(_ int, in congest.Incoming) {
				h.TopID[v] = in.Msg.A
				h.Length[v] = in.Msg.B
				h.Level[v] = int(in.Msg.C)
				if p := h.HeavyChildPort[v]; p >= 0 {
					ctx.Send(p, in.Msg)
				}
			})
			return false
		})
	}
	if _, err := net.Run("tree/heavy-info", procs, maxRounds); err != nil {
		return nil, err
	}

	for v := 0; v < n; v++ {
		if h.Level[v] > h.MaxLevel {
			h.MaxLevel = h.Level[v]
		}
	}
	if err := h.sanityCheck(t); err != nil {
		return nil, err
	}
	return h, nil
}

// runLevelConvergecast computes PL bottom-up with the +1-on-light-edges rule.
func runLevelConvergecast(net *congest.Network, t *BFSTree, h *HeavyPaths, pl []int64, maxRounds int64) error {
	n := net.N()
	procs := net.Scratch().Procs(n)
	waiting := make([]int, n)
	for v := 0; v < n; v++ {
		v := v
		waiting[v] = len(t.ChildPorts[v])
		procs[v] = congest.ProcFunc(func(ctx *congest.Ctx) bool {
			ctx.ForRecv(func(_ int, in congest.Incoming) {
				child := in.Msg.A
				if in.Port != h.HeavyChildPort[v] {
					child++ // light in-edge: the hanging path sits one level below
				}
				if child > pl[v] {
					pl[v] = child
				}
				waiting[v]--
			})
			if waiting[v] == 0 {
				waiting[v] = -1
				if t.ParentPort[v] >= 0 {
					ctx.Send(t.ParentPort[v], congest.Message{Kind: kindLevelUp, A: pl[v]})
				}
			}
			return false
		})
	}
	_, err := net.Run("tree/heavy-level", procs, maxRounds)
	return err
}

// indexUpProc numbers a chain: bottoms fire index 1, heavy parents increment.
type indexUpProc struct {
	t     *BFSTree
	h     *HeavyPaths
	v     int
	fired bool
}

func (p *indexUpProc) Step(ctx *congest.Ctx) bool {
	fire := func(idx int64) {
		p.h.Index[p.v] = idx
		p.fired = true
		if p.h.ParentHeavy[p.v] {
			ctx.Send(p.t.ParentPort[p.v], congest.Message{Kind: kindIndexUp, A: idx})
		}
	}
	if ctx.Round() == 0 && p.h.IsBottom(p.v) {
		fire(1)
	}
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		if !p.fired {
			fire(in.Msg.A + 1)
		}
	})
	return false
}

// sanityCheck verifies structural invariants of the decomposition using
// engine-side global knowledge (test/diagnostic aid; not part of the model).
func (h *HeavyPaths) sanityCheck(t *BFSTree) error {
	for v := range h.Index {
		if h.Index[v] < 1 || h.Index[v] > h.Length[v] {
			return fmt.Errorf("tree: node %d has index %d of path length %d", v, h.Index[v], h.Length[v])
		}
		if h.IsTop(v) && h.Index[v] != h.Length[v] {
			return fmt.Errorf("tree: top node %d has index %d != length %d", v, h.Index[v], h.Length[v])
		}
	}
	return nil
}
