package tree

import (
	"fmt"

	"shortcutpa/internal/congest"
)

// Message kinds for the heavy-path protocols.
const (
	kindHeavyMark int32 = iota + 10
	kindLevelUp
	kindIndexUp
	kindPathDown
)

// HeavyPaths is the heavy-path decomposition of a BFS tree (Definition 6.5):
// an edge (parent u, child v) is heavy iff v's subtree holds more than half
// of u's subtree; heavy edges form vertex-disjoint upward chains ("heavy
// paths"; every node is on exactly one, possibly as a singleton). Any
// leaf-to-root path crosses at most log2(n) light edges, so at most log2(n)+1
// heavy paths. Entry v of each slice is node v's local knowledge.
type HeavyPaths struct {
	ParentHeavy    []bool  // v's parent edge is heavy
	HeavyChildPort []int   // port to v's heavy child; -1 if none
	Index          []int64 // 1-based position from the path's bottom ("source")
	Length         []int64 // number of nodes on v's path
	TopID          []int64 // ID of the path's top node (the "sink"), = path ID
	Level          []int   // light level of v's path (0: no incoming light edges)
	MaxLevel       int     // maximum Level over all paths
}

// IsTop reports whether v is the top (sink) node of its heavy path.
func (h *HeavyPaths) IsTop(v int) bool { return !h.ParentHeavy[v] }

// IsBottom reports whether v is the bottom (source) node of its heavy path.
func (h *HeavyPaths) IsBottom(v int) bool { return h.HeavyChildPort[v] < 0 }

// UpPathPort returns the port toward the next node up v's path, or -1 at the
// top.
func (h *HeavyPaths) UpPathPort(t *BFSTree, v int) int {
	if h.ParentHeavy[v] {
		return t.ParentPort[v]
	}
	return -1
}

// DecomposeHeavyPaths runs the heavy-path decomposition on t: subtree sizes
// (convergecast), heavy-child marking, light-level convergecast, bottom-up
// numbering along chains, and a top-down pass distributing (top ID, length,
// level) to all chain members. O(D) rounds per phase (chains are
// vertex-disjoint, so numbering pipelines without congestion), O(n) messages
// per phase.
func DecomposeHeavyPaths(net *congest.Network, t *BFSTree, maxRounds int64) (*HeavyPaths, error) {
	n := net.N()
	h := &HeavyPaths{
		ParentHeavy:    make([]bool, n),
		HeavyChildPort: make([]int, n),
		Index:          make([]int64, n),
		Length:         make([]int64, n),
		TopID:          make([]int64, n),
		Level:          make([]int, n),
	}

	// Phase 1: subtree sizes; parents record per-child sizes and pick the
	// heavy child locally (at most one child can exceed half the subtree).
	childSize := make([]map[int]int64, n)
	for v := range childSize {
		childSize[v] = make(map[int]int64, len(t.ChildPorts[v]))
	}
	sizes, err := SubtreeSizes(net, t, func(v, port int, size int64) {
		childSize[v][port] = size
	}, maxRounds)
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		h.HeavyChildPort[v] = -1
		for port, cs := range childSize[v] {
			if 2*cs > sizes[v] {
				h.HeavyChildPort[v] = port
			}
		}
	}

	// Phase 2: tell the heavy child its parent edge is heavy.
	if _, err := net.RunNodes("tree/heavy-mark", &heavyMarkProc{h: h}, maxRounds); err != nil {
		return nil, err
	}

	// Phase 3: light-level convergecast. PL(v) = max over children c of
	// PL(c) + (edge light ? 1 : 0); a path's level is PL at its top.
	pl := make([]int64, n)
	if err := runLevelConvergecast(net, t, h, pl, maxRounds); err != nil {
		return nil, err
	}

	// Phase 4: number chains bottom-up: bottoms take index 1 and indices
	// propagate up heavy edges.
	iup := &indexUpProc{t: t, h: h, fired: make([]bool, n)}
	if _, err := net.RunNodes("tree/heavy-index", iup, maxRounds); err != nil {
		return nil, err
	}

	// Phase 5: tops distribute (top ID, length, level) down their chains.
	if _, err := net.RunNodes("tree/heavy-info", &pathInfoProc{h: h, pl: pl}, maxRounds); err != nil {
		return nil, err
	}

	for v := 0; v < n; v++ {
		if h.Level[v] > h.MaxLevel {
			h.MaxLevel = h.Level[v]
		}
	}
	if err := h.sanityCheck(t); err != nil {
		return nil, err
	}
	return h, nil
}

// heavyMarkProc tells each heavy child that its parent edge is heavy.
type heavyMarkProc struct {
	h *HeavyPaths
}

// Step implements congest.NodeProc.
func (p *heavyMarkProc) Step(ctx *congest.Ctx, v int) bool {
	if ctx.Round() == 0 && p.h.HeavyChildPort[v] >= 0 {
		ctx.Send(p.h.HeavyChildPort[v], congest.Message{Kind: kindHeavyMark})
	}
	ctx.ForRecv(func(int, congest.Incoming) {
		p.h.ParentHeavy[v] = true
	})
	return false
}

// levelProc computes PL bottom-up with the +1-on-light-edges rule
// (waiting == -1 marks a node that already fired).
type levelProc struct {
	t       *BFSTree
	h       *HeavyPaths
	pl      []int64
	waiting []int
}

// Step implements congest.NodeProc.
func (p *levelProc) Step(ctx *congest.Ctx, v int) bool {
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		child := in.Msg.A
		if in.Port != p.h.HeavyChildPort[v] {
			child++ // light in-edge: the hanging path sits one level below
		}
		if child > p.pl[v] {
			p.pl[v] = child
		}
		p.waiting[v]--
	})
	if p.waiting[v] == 0 {
		p.waiting[v] = -1
		if p.t.ParentPort[v] >= 0 {
			ctx.Send(p.t.ParentPort[v], congest.Message{Kind: kindLevelUp, A: p.pl[v]})
		}
	}
	return false
}

// runLevelConvergecast computes PL bottom-up with the +1-on-light-edges rule.
func runLevelConvergecast(net *congest.Network, t *BFSTree, h *HeavyPaths, pl []int64, maxRounds int64) error {
	n := net.N()
	lp := &levelProc{t: t, h: h, pl: pl, waiting: make([]int, n)}
	for v := 0; v < n; v++ {
		lp.waiting[v] = len(t.ChildPorts[v])
	}
	_, err := net.RunNodes("tree/heavy-level", lp, maxRounds)
	return err
}

// indexUpProc numbers a chain: bottoms fire index 1, heavy parents increment.
type indexUpProc struct {
	t     *BFSTree
	h     *HeavyPaths
	fired []bool
}

// Step implements congest.NodeProc.
func (p *indexUpProc) Step(ctx *congest.Ctx, v int) bool {
	fire := func(idx int64) {
		p.h.Index[v] = idx
		p.fired[v] = true
		if p.h.ParentHeavy[v] {
			ctx.Send(p.t.ParentPort[v], congest.Message{Kind: kindIndexUp, A: idx})
		}
	}
	if ctx.Round() == 0 && p.h.IsBottom(v) {
		fire(1)
	}
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		if !p.fired[v] {
			fire(in.Msg.A + 1)
		}
	})
	return false
}

// pathInfoProc distributes (top ID, length, level) from each path top down
// its chain.
type pathInfoProc struct {
	h  *HeavyPaths
	pl []int64
}

// Step implements congest.NodeProc.
func (p *pathInfoProc) Step(ctx *congest.Ctx, v int) bool {
	h := p.h
	if ctx.Round() == 0 && h.IsTop(v) {
		h.TopID[v] = ctx.ID()
		h.Length[v] = h.Index[v]
		h.Level[v] = int(p.pl[v])
		if q := h.HeavyChildPort[v]; q >= 0 {
			ctx.Send(q, congest.Message{Kind: kindPathDown, A: h.TopID[v], B: h.Length[v], C: p.pl[v]})
		}
	}
	ctx.ForRecv(func(_ int, in congest.Incoming) {
		h.TopID[v] = in.Msg.A
		h.Length[v] = in.Msg.B
		h.Level[v] = int(in.Msg.C)
		if q := h.HeavyChildPort[v]; q >= 0 {
			ctx.Send(q, in.Msg)
		}
	})
	return false
}

// sanityCheck verifies structural invariants of the decomposition using
// engine-side global knowledge (test/diagnostic aid; not part of the model).
func (h *HeavyPaths) sanityCheck(t *BFSTree) error {
	for v := range h.Index {
		if h.Index[v] < 1 || h.Index[v] > h.Length[v] {
			return fmt.Errorf("tree: node %d has index %d of path length %d", v, h.Index[v], h.Length[v])
		}
		if h.IsTop(v) && h.Index[v] != h.Length[v] {
			return fmt.Errorf("tree: top node %d has index %d != length %d", v, h.Index[v], h.Length[v])
		}
	}
	return nil
}
