package verify

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
)

func newEngine(t *testing.T, g *graph.Graph, seed int64) *core.Engine {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	e, err := core.NewEngine(net, core.Randomized)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestComponentLabelsMatchOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomConnected(50, 0.08, rng)
		keep := make([]bool, g.M())
		for i := range keep {
			keep[i] = rng.Float64() < 0.5
		}
		e := newEngine(t, g, int64(trial+5))
		lab, err := ComponentLabels(e, SubgraphFromEdges(e, keep))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := g.SubgraphComponents(keep)
		// Same label iff same offline component.
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				if (lab.Label[u] == lab.Label[v]) != (want[u] == want[v]) {
					t.Fatalf("trial %d: nodes %d,%d labels (%d,%d), offline comps (%d,%d)",
						trial, u, v, lab.Label[u], lab.Label[v], want[u], want[v])
				}
			}
		}
	}
}

func TestSpanningTreeVerification(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomizeWeights(graph.RandomConnected(40, 0.1, rng), 20, rng)

	// A real spanning tree (Kruskal's MST) must verify.
	keep := make([]bool, g.M())
	for _, i := range g.KruskalMST() {
		keep[i] = true
	}
	e := newEngine(t, g, 7)
	h := SubgraphFromEdges(e, keep)
	lab, err := ComponentLabels(e, h)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := SpanningTree(e, h, lab)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("true spanning tree rejected")
	}

	// Remove one tree edge: no longer spanning.
	for i := range keep {
		if keep[i] {
			keep[i] = false
			break
		}
	}
	e2 := newEngine(t, g, 8)
	h2 := SubgraphFromEdges(e2, keep)
	lab2, err := ComponentLabels(e2, h2)
	if err != nil {
		t.Fatal(err)
	}
	ok2, err := SpanningTree(e2, h2, lab2)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 {
		t.Fatal("broken tree accepted")
	}

	// A spanning connected subgraph with n edges (tree + extra) is not a tree.
	keep3 := make([]bool, g.M())
	for _, i := range g.KruskalMST() {
		keep3[i] = true
	}
	for i := range keep3 {
		if !keep3[i] {
			keep3[i] = true
			break
		}
	}
	e3 := newEngine(t, g, 9)
	h3 := SubgraphFromEdges(e3, keep3)
	lab3, err := ComponentLabels(e3, h3)
	if err != nil {
		t.Fatal(err)
	}
	ok3, err := SpanningTree(e3, h3, lab3)
	if err != nil {
		t.Fatal(err)
	}
	if ok3 {
		t.Fatal("tree-plus-one-edge accepted as spanning tree")
	}
}

func TestSTConnectivity(t *testing.T) {
	g := graph.Path(10)
	keep := make([]bool, g.M())
	for i := 0; i < 4; i++ {
		keep[i] = true // connects nodes 0..4
	}
	e := newEngine(t, g, 11)
	lab, err := ComponentLabels(e, SubgraphFromEdges(e, keep))
	if err != nil {
		t.Fatal(err)
	}
	if !STConnected(lab, 0, 4) {
		t.Fatal("0 and 4 should be H-connected")
	}
	if STConnected(lab, 0, 7) {
		t.Fatal("0 and 7 should not be H-connected")
	}
}

func TestCutDisconnects(t *testing.T) {
	g := graph.Cycle(8)
	e := newEngine(t, g, 13)
	// One edge of a cycle is not a cut.
	cut1 := make([]bool, g.M())
	cut1[0] = true
	dis, err := CutDisconnects(e, SubgraphFromEdges(e, cut1))
	if err != nil {
		t.Fatal(err)
	}
	if dis {
		t.Fatal("single cycle edge reported as a cut")
	}
	// Two edges are.
	e2 := newEngine(t, g, 14)
	cut2 := make([]bool, g.M())
	cut2[0], cut2[3] = true, true
	dis2, err := CutDisconnects(e2, SubgraphFromEdges(e2, cut2))
	if err != nil {
		t.Fatal(err)
	}
	if !dis2 {
		t.Fatal("two cycle edges not reported as a cut")
	}
}

func TestBipartiteVerification(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{name: "even cycle", g: graph.Cycle(8), want: true},
		{name: "odd cycle", g: graph.Cycle(9), want: false},
		{name: "grid", g: graph.Grid(4, 5), want: true},
		{name: "triangle lollipop", g: graph.Lollipop(10, 3), want: false},
	}
	for ti, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := newEngine(t, tt.g, int64(20+ti))
			keep := make([]bool, tt.g.M())
			for i := range keep {
				keep[i] = true
			}
			h := SubgraphFromEdges(e, keep)
			lab, err := ComponentLabels(e, h)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Bipartite(e, h, lab)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("Bipartite = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBipartiteOnRandomSubgraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomConnected(40, 0.1, rng)
		keep := make([]bool, g.M())
		for i := range keep {
			keep[i] = rng.Float64() < 0.6
		}
		e := newEngine(t, g, int64(40+trial))
		h := SubgraphFromEdges(e, keep)
		lab, err := ComponentLabels(e, h)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Bipartite(e, h, lab)
		if err != nil {
			t.Fatal(err)
		}
		sub := subgraphOf(g, keep)
		_, want := sub.IsBipartite()
		if got != want {
			t.Fatalf("trial %d: Bipartite = %v, offline %v", trial, got, want)
		}
	}
}

// subgraphOf materializes the edge-subset subgraph for the offline oracle.
func subgraphOf(g *graph.Graph, keep []bool) *graph.Graph {
	var edges []graph.Edge
	for i, e := range g.Edges() {
		if keep[i] {
			edges = append(edges, e)
		}
	}
	return graph.MustNew(g.N(), edges)
}
