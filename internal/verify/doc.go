// Package verify implements Corollary A.1: the graph verification problems
// of Das Sarma et al. [5] in Õ(D+√n) rounds and Õ(m) messages, built on
// Thurimella-style connected-component labeling [41] cast as Part-Wise
// Aggregation — each component of the query subgraph H elects a leader
// (Algorithm 9's coarsening) and the leader's ID becomes every member's
// label.
//
// Verifiers provided: connectivity, spanning tree (connected + exactly n-1
// edges), s-t connectivity, cut verification (does deleting the edge set
// disconnect G), and bipartiteness of H. Global counts and verdicts travel
// on the engine's BFS tree (convergecast + broadcast), costing O(D) rounds
// and O(n) messages per decision.
//
// Bipartiteness levels: the paper (footnote 4) obtains per-component rooted
// spanning trees with levels from the PA machinery itself; here levels come
// from an explicit parity flood along H inside each component, which costs
// O(component diameter) extra rounds — a documented simplification
// (DESIGN.md, substitutions).
package verify
