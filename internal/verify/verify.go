package verify

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/part"
	"shortcutpa/internal/tree"
)

// Subgraph is a query subgraph H given as node-local knowledge: for each
// node, which incident ports' edges belong to H. The flags are flat over
// the graph's CSR offsets (the part.Info.SamePart shape): InH[Row[v]+q]
// reports whether the edge behind port q of node v belongs to H.
type Subgraph struct {
	Row []int32 // CSR row offsets (len n+1), aliasing the graph's CSR.RowStart
	InH []bool  // flat 2m
}

// At reports whether the edge behind port q of node v belongs to H.
func (s *Subgraph) At(v, q int) bool { return s.InH[s.Row[v]+int32(q)] }

// PortRow returns node v's per-port window of the flat InH array.
func (s *Subgraph) PortRow(v int) []bool { return s.InH[s.Row[v]:s.Row[v+1]] }

// SubgraphFromEdges builds the node-local view from a global edge subset
// (engine-side instance construction).
func SubgraphFromEdges(e *core.Engine, keep []bool) *Subgraph {
	g := e.Net.Graph()
	n := g.N()
	csr := g.CSR()
	s := &Subgraph{Row: csr.RowStart, InH: make([]bool, len(csr.PortTo))}
	for v := 0; v < n; v++ {
		inH := s.PortRow(v)
		g.ForPorts(v, func(q, _, edge int) bool {
			inH[q] = keep[edge]
			return true
		})
	}
	return s
}

// Labeling is the outcome of component labeling: Label[v] identifies v's
// H-component (labels are leader IDs, unique per component), and Info is
// the underlying partition with installed leaders, reusable for further
// PA calls over the components.
type Labeling struct {
	Label []int64
	Info  *part.Info
}

// ComponentLabels labels the connected components of H (Thurimella's
// algorithm as a PA instance).
func ComponentLabels(e *core.Engine, h *Subgraph) (*Labeling, error) {
	n := e.N
	g := e.Net.Graph()
	in := part.NewInfo(e.Net)
	copy(in.SamePart, h.InH) // H-membership IS the partition's port view
	// Engine-side dense labels for diagnostics/oracles.
	keep := make([]bool, g.M())
	for v := 0; v < n; v++ {
		inH := h.PortRow(v)
		g.ForPorts(v, func(q, _, edge int) bool {
			if inH[q] {
				keep[edge] = true
			}
			return true
		})
	}
	dense, _ := g.SubgraphComponents(keep)
	copy(in.Dense, dense)

	if err := e.CoarsenToLeaders(in); err != nil {
		return nil, fmt.Errorf("verify: labeling: %w", err)
	}
	return &Labeling{Label: in.LeaderID, Info: in}, nil
}

// globalAgg aggregates one value per node over the engine's BFS tree and
// broadcasts the result (O(D) rounds, O(n) messages); every node learns it.
func globalAgg(e *core.Engine, vals []congest.Val, f congest.Combine) (congest.Val, error) {
	budget := int64(16*e.N + 4096)
	sub, err := tree.Convergecast(e.Net, e.Tree, vals, f, nil, budget)
	if err != nil {
		return congest.Val{}, err
	}
	if _, err := tree.Broadcast(e.Net, e.Tree, sub[e.Tree.Root], budget); err != nil {
		return congest.Val{}, err
	}
	return sub[e.Tree.Root], nil
}

// Connected reports whether H spans a single component covering all nodes:
// the global (min label, max label) agree.
func Connected(e *core.Engine, lab *Labeling) (bool, error) {
	vals := make([]congest.Val, e.N)
	for v := 0; v < e.N; v++ {
		vals[v] = congest.Val{A: lab.Label[v], B: -lab.Label[v]}
	}
	got, err := globalAgg(e, vals, func(x, y congest.Val) congest.Val {
		return congest.Val{A: min(x.A, y.A), B: min(x.B, y.B)}
	})
	if err != nil {
		return false, err
	}
	return got.A == -got.B, nil
}

// SpanningTree verifies that H is a spanning tree of G: connected and
// exactly n-1 edges (edge count by halved incident-degree sum).
func SpanningTree(e *core.Engine, h *Subgraph, lab *Labeling) (bool, error) {
	conn, err := Connected(e, lab)
	if err != nil {
		return false, err
	}
	vals := make([]congest.Val, e.N)
	for v := 0; v < e.N; v++ {
		deg := int64(0)
		for _, in := range h.PortRow(v) {
			if in {
				deg++
			}
		}
		vals[v] = congest.Val{A: deg}
	}
	got, err := globalAgg(e, vals, congest.SumPair)
	if err != nil {
		return false, err
	}
	return conn && got.A == 2*int64(e.N-1), nil
}

// STConnected reports whether s and t lie in the same H-component.
func STConnected(lab *Labeling, s, t int) bool {
	return lab.Label[s] == lab.Label[t]
}

// CutDisconnects reports whether deleting the edge set C (given node-locally
// like a Subgraph) disconnects G: label the components of G-C and test for
// more than one.
func CutDisconnects(e *core.Engine, cut *Subgraph) (bool, error) {
	rest := &Subgraph{Row: cut.Row, InH: make([]bool, len(cut.InH))}
	for h := range cut.InH {
		rest.InH[h] = !cut.InH[h]
	}
	lab, err := ComponentLabels(e, rest)
	if err != nil {
		return false, err
	}
	conn, err := Connected(e, lab)
	if err != nil {
		return false, err
	}
	return !conn, nil
}

const (
	kindParity int32 = iota + 130
	kindOddWave
)

// Bipartite reports whether the subgraph H is bipartite: parity levels
// flood from each component leader along H; any H-edge joining equal
// parities flags an odd cycle, and the flags are OR-aggregated globally.
func Bipartite(e *core.Engine, h *Subgraph, lab *Labeling) (bool, error) {
	n := e.N
	// Leaf-scoped arena use: parity and conflict live only across the
	// parity Run below; conflict is folded into vals before globalAgg runs.
	parity := e.Net.Scratch().Int64s(n)
	conflict := e.Net.Scratch().Bools(n)
	for v := range parity {
		parity[v] = -1
	}
	pp := &parityProc{h: h, lab: lab, parity: parity, conflict: conflict}
	if _, err := e.Net.RunNodes("verify/parity", pp, int64(16*n+4096)); err != nil {
		return false, err
	}
	vals := make([]congest.Val, n)
	for v := 0; v < n; v++ {
		if conflict[v] {
			vals[v] = congest.Val{A: 1}
		}
	}
	got, err := globalAgg(e, vals, congest.OrPair)
	if err != nil {
		return false, err
	}
	return got.A == 0, nil
}

// parityProc floods parity levels from component leaders along H; an H-edge
// joining equal parities flags a conflict. Per-node state is the flat
// parity/conflict arrays.
type parityProc struct {
	h        *Subgraph
	lab      *Labeling
	parity   []int64
	conflict []bool
}

// Step implements congest.NodeProc.
func (p *parityProc) Step(ctx *congest.Ctx, v int) bool {
	inH := p.h.PortRow(v)
	adopt := func(par int64) {
		p.parity[v] = par
		for q, ok := range inH {
			if ok && ctx.CanSend(q) {
				ctx.Send(q, congest.Message{Kind: kindParity, A: 1 - par})
			}
		}
	}
	if ctx.Round() == 0 && p.lab.Info.IsLeader[v] {
		adopt(0)
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		want := m.Msg.A
		if p.parity[v] < 0 {
			adopt(want)
		} else if p.parity[v] != want {
			p.conflict[v] = true
		}
	})
	return false
}
