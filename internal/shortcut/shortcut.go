package shortcut

import (
	"fmt"
	"sort"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/part"
	"shortcutpa/internal/tree"
)

const kindBlockSetup int32 = 70

// BlockMeta is what a node on a block knows about the block after setup.
type BlockMeta struct {
	RootDepth int64
	RootID    int64
}

// Shortcut is a T-restricted shortcut held as node-local knowledge. Parts
// are identified by their leader IDs.
type Shortcut struct {
	T *tree.BFSTree
	// Up[v] holds the parts whose shortcut contains v's parent tree edge.
	Up []map[int64]struct{}
	// DownPorts[v][i] lists v's ports to children c with (c,v) in H_i.
	DownPorts []map[int64][]int
	// Meta[v][i] is block-root info for part i's block through v, filled by
	// SetupBlocks for every v in V(H_i).
	Meta []map[int64]BlockMeta
}

// New returns an empty shortcut over t.
func New(t *tree.BFSTree, n int) *Shortcut {
	s := &Shortcut{
		T:         t,
		Up:        make([]map[int64]struct{}, n),
		DownPorts: make([]map[int64][]int, n),
		Meta:      make([]map[int64]BlockMeta, n),
	}
	for v := 0; v < n; v++ {
		s.Up[v] = make(map[int64]struct{})
		s.DownPorts[v] = make(map[int64][]int)
		s.Meta[v] = make(map[int64]BlockMeta)
	}
	return s
}

// ClaimUp records that v's parent edge belongs to part i's shortcut
// (construction-side, called by the claiming protocols at v).
func (s *Shortcut) ClaimUp(v int, i int64) { s.Up[v][i] = struct{}{} }

// HasUp reports whether v's parent edge is in part i's shortcut.
func (s *Shortcut) HasUp(v int, i int64) bool {
	_, ok := s.Up[v][i]
	return ok
}

// AddDownPort records at v that the child edge behind port q carries part i
// (construction-side, called when a claim arrives at v).
func (s *Shortcut) AddDownPort(v int, i int64, q int) {
	for _, have := range s.DownPorts[v][i] {
		if have == q {
			return
		}
	}
	s.DownPorts[v][i] = append(s.DownPorts[v][i], q)
}

// OnBlock reports whether v touches part i's shortcut (v in V(H_i)).
func (s *Shortcut) OnBlock(v int, i int64) bool {
	if s.HasUp(v, i) {
		return true
	}
	return len(s.DownPorts[v][i]) > 0
}

// IsBlockRoot reports whether v is the root of part i's block through v:
// on the block, but the parent edge is not in H_i.
func (s *Shortcut) IsBlockRoot(v int, i int64) bool {
	return s.OnBlock(v, i) && !s.HasUp(v, i)
}

// DropPart removes part i's claims everywhere (used between construction
// repetitions when an unverified part's claims are discarded; each node
// forgets its local entries).
func (s *Shortcut) DropPart(i int64) {
	for v := range s.Up {
		delete(s.Up[v], i)
		delete(s.DownPorts[v], i)
		delete(s.Meta[v], i)
	}
}

// UpParts returns the parts on v's parent edge in deterministic order.
func (s *Shortcut) UpParts(v int) []int64 {
	out := make([]int64, 0, len(s.Up[v]))
	for i := range s.Up[v] {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// SetupBlocks distributes (root depth, root ID) through every block: each
// block root starts a downward pass along its block's edges; nodes record
// the metadata and forward along their own down-ports for that part. An
// edge carries one setup message per part using it, scheduled one per round
// (FIFO), so the pass takes O(D + congestion) rounds and Σ_i |H_i| = Õ(n)
// messages.
func SetupBlocks(net *congest.Network, s *Shortcut, maxRounds int64) error {
	n := net.N()
	sp := &setupProc{s: s, queues: make([]map[int][]congest.Message, n)}
	_, err := net.RunNodes("shortcut/setup", sp, maxRounds)
	return err
}

// setupProc drives the block-setup pass: a per-(node, port) FIFO queue of
// pending setup messages, one send per port per round. Shared across nodes;
// queues[v] is node v's per-port queue map, created lazily at round 0.
type setupProc struct {
	s      *Shortcut
	queues []map[int][]congest.Message
}

// Step implements congest.NodeProc.
func (p *setupProc) Step(ctx *congest.Ctx, v int) bool {
	s := p.s
	if ctx.Round() == 0 {
		// Block roots (on the block, no up-claim) start the downward pass;
		// block leaves (up-claim only) wait to hear from above. Parts are
		// visited in sorted order for deterministic scheduling.
		p.queues[v] = make(map[int][]congest.Message)
		parts := make([]int64, 0, len(s.DownPorts[v]))
		for i := range s.DownPorts[v] {
			parts = append(parts, i)
		}
		sort.Slice(parts, func(a, b int) bool { return parts[a] < parts[b] })
		for _, i := range parts {
			if s.IsBlockRoot(v, i) {
				meta := BlockMeta{RootDepth: int64(s.T.Depth[v]), RootID: ctx.ID()}
				s.Meta[v][i] = meta
				for _, q := range s.DownPorts[v][i] {
					p.enqueue(v, q, congest.Message{Kind: kindBlockSetup, A: i, B: meta.RootDepth, C: meta.RootID})
				}
			}
		}
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		if m.Msg.Kind != kindBlockSetup {
			return
		}
		i := m.Msg.A
		if _, seen := s.Meta[v][i]; seen {
			return
		}
		s.Meta[v][i] = BlockMeta{RootDepth: m.Msg.B, RootID: m.Msg.C}
		for _, q := range s.DownPorts[v][i] {
			p.enqueue(v, q, congest.Message{Kind: kindBlockSetup, A: i, B: m.Msg.B, C: m.Msg.C})
		}
	})
	return p.flush(ctx, v)
}

func (p *setupProc) enqueue(v, port int, m congest.Message) {
	p.queues[v][port] = append(p.queues[v][port], m)
}

// flush sends one queued message per port (ports in sorted order for
// determinism) and reports whether work remains.
func (p *setupProc) flush(ctx *congest.Ctx, v int) bool {
	pending := false
	queues := p.queues[v]
	ports := make([]int, 0, len(queues))
	for port := range queues {
		ports = append(ports, port)
	}
	sort.Ints(ports)
	for _, port := range ports {
		q := queues[port]
		if len(q) == 0 {
			continue
		}
		if ctx.CanSend(port) {
			ctx.Send(port, q[0])
			queues[port] = q[1:]
		}
		if len(queues[port]) > 0 {
			pending = true
		}
	}
	return pending
}

// Congestion returns (engine-side) the maximum number of parts on any tree
// edge — the shortcut's congestion c per Definition 2.1(1).
func (s *Shortcut) Congestion() int {
	c := 0
	for v := range s.Up {
		if len(s.Up[v]) > c {
			c = len(s.Up[v])
		}
	}
	return c
}

// TotalEdges returns Σ_i |H_i| (engine-side).
func (s *Shortcut) TotalEdges() int {
	t := 0
	for v := range s.Up {
		t += len(s.Up[v])
	}
	return t
}

// BlockCounts returns (engine-side) the number of blocks of each part that
// has a nonempty shortcut, keyed by part ID: the connected components of
// the forest (V(H_i), H_i), Definition 2.3.
func (s *Shortcut) BlockCounts() map[int64]int {
	// Group claimed edges by part.
	type edge struct{ child, parent int }
	edgesByPart := make(map[int64][]edge)
	for v := range s.Up {
		for i := range s.Up[v] {
			edgesByPart[i] = append(edgesByPart[i], edge{child: v, parent: s.T.ParentNode[v]})
		}
	}
	out := make(map[int64]int, len(edgesByPart))
	for i, edges := range edgesByPart {
		// Union-find over the touched nodes only.
		idx := make(map[int]int)
		touch := func(v int) int {
			if id, ok := idx[v]; ok {
				return id
			}
			id := len(idx)
			idx[v] = id
			return id
		}
		for _, e := range edges {
			touch(e.child)
			touch(e.parent)
		}
		dsu := newMiniDSU(len(idx))
		for _, e := range edges {
			dsu.union(idx[e.child], idx[e.parent])
		}
		out[i] = dsu.count()
	}
	return out
}

// BlockParameter returns (engine-side) the maximum block count over all
// parts — the shortcut's block parameter b per Definition 2.3. Parts with
// empty shortcuts contribute 0.
func (s *Shortcut) BlockParameter() int {
	b := 0
	for _, c := range s.BlockCounts() {
		if c > b {
			b = c
		}
	}
	return b
}

// VerifyAgainstTree checks structural invariants engine-side: every claim
// is mirrored (child's Up entry matches a parent DownPorts entry), and Meta
// agrees with the true block roots. Test/diagnostic helper.
func (s *Shortcut) VerifyAgainstTree(net *congest.Network, in *part.Info) error {
	g := net.Graph()
	for v := range s.Up {
		for i := range s.Up[v] {
			pp := s.T.ParentPort[v]
			if pp < 0 {
				return fmt.Errorf("shortcut: root has an up-claim for part %d", i)
			}
			u := g.Neighbor(v, pp)
			// The edge v-u is unique, so the mirrored down-port must be
			// exactly the CSR-materialized reverse port of pp.
			rq := g.ReversePort(v, pp)
			found := false
			for _, q := range s.DownPorts[u][i] {
				if q == rq {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("shortcut: claim %d->%d for part %d not mirrored", v, u, i)
			}
		}
		for i := range s.Meta[v] {
			if !s.OnBlock(v, i) {
				return fmt.Errorf("shortcut: node %d has meta for part %d but is off-block", v, i)
			}
		}
	}
	_ = in
	return nil
}

// miniDSU is a tiny union-find for component counting.
type miniDSU struct{ parent []int }

func newMiniDSU(n int) *miniDSU {
	d := &miniDSU{parent: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

func (d *miniDSU) find(v int) int {
	for d.parent[v] != v {
		d.parent[v] = d.parent[d.parent[v]]
		v = d.parent[v]
	}
	return v
}

func (d *miniDSU) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		d.parent[rb] = ra
	}
}

func (d *miniDSU) count() int {
	c := 0
	for v := range d.parent {
		if d.find(v) == v {
			c++
		}
	}
	return c
}
