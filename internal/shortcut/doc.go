// Package shortcut implements tree-restricted low-congestion shortcuts
// (Definitions 2.1-2.3): their node-local representation, the block setup
// pass that distributes block-root information for Lemma 4.2's routing
// discipline, and offline quality measurement (congestion and block
// parameter) used by verification tests and the Table 1 experiments.
//
// A T-restricted shortcut assigns to each part P_i a subset H_i of the BFS
// tree's edges. Because construction claims always travel rootward, the
// natural local representation is: node v stores the set of parts whose
// shortcut contains v's parent edge (Up), and symmetrically the ports to
// children whose edges it carries (DownPorts), learned when claims passed
// by. The blocks of P_i are the connected components of the forest
// (V(H_i), H_i); each is a subtree of T whose root is its member closest to
// the tree root.
package shortcut
