package shortcut

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/tree"
)

const testBudget = 100000

func buildTree(t *testing.T, g *graph.Graph, seed int64) (*congest.Network, *tree.BFSTree) {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	leader, err := tree.ElectLeader(net, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := tree.BuildBFS(net, leader, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	return net, bt
}

// claimPath claims v's rootward tree path for part i, for hops edges,
// mirroring Up/DownPorts exactly as the construction protocols do.
func claimPath(net *congest.Network, bt *tree.BFSTree, s *Shortcut, v int, i int64, hops int) {
	g := net.Graph()
	for h := 0; h < hops && bt.ParentPort[v] >= 0; h++ {
		if s.HasUp(v, i) {
			// Merged with an existing claim; the rest of the path is shared.
			return
		}
		s.ClaimUp(v, i)
		u := g.Neighbor(v, bt.ParentPort[v])
		s.AddDownPort(u, i, g.PortTo(u, v))
		v = u
	}
}

func TestSetupBlocksSingleChain(t *testing.T) {
	g := graph.Path(10)
	net, bt := buildTree(t, g, 1)
	s := New(bt, g.N())
	// Claim the deepest node's full rootward path for part 7.
	deepest := 0
	for v := 0; v < g.N(); v++ {
		if bt.Depth[v] > bt.Depth[deepest] {
			deepest = v
		}
	}
	claimPath(net, bt, s, deepest, 7, g.N())
	if err := SetupBlocks(net, s, testBudget); err != nil {
		t.Fatal(err)
	}
	if got := s.Congestion(); got != 1 {
		t.Fatalf("congestion = %d, want 1", got)
	}
	if got := s.BlockCounts()[7]; got != 1 {
		t.Fatalf("blocks of part 7 = %d, want 1", got)
	}
	// Every node on the deepest-to-root chain must know the root (the tree
	// root itself, since the claim runs all the way up).
	rootID := net.ID(bt.Root)
	for v := deepest; ; v = bt.ParentNode[v] {
		if !s.OnBlock(v, 7) {
			t.Fatalf("node %d should be on part 7's block", v)
		}
		meta, ok := s.Meta[v][7]
		if !ok {
			t.Fatalf("node %d missing block meta", v)
		}
		if meta.RootID != rootID || meta.RootDepth != 0 {
			t.Fatalf("node %d meta %+v, want root %d depth 0", v, meta, rootID)
		}
		if v == bt.Root {
			break
		}
	}
	if err := s.VerifyAgainstTree(net, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetupBlocksDisjointBlocksOfOnePart(t *testing.T) {
	// A star of three arms: claim partial paths on two arms that do NOT
	// reach the root's edges jointly — build two separate blocks for the
	// same part.
	g := graph.Star(7) // hub 0, leaves 1..6
	net, bt := buildTree(t, g, 3)
	if bt.Root != 0 {
		t.Skip("hub not elected root under this seed; block shapes differ")
	}
	s := New(bt, g.N())
	claimPath(net, bt, s, 1, 9, 1) // edge 1-0
	claimPath(net, bt, s, 2, 9, 1) // edge 2-0
	// Those two claims share the hub: one block. Another part claims a
	// single disjoint edge.
	claimPath(net, bt, s, 3, 11, 1)
	if err := SetupBlocks(net, s, testBudget); err != nil {
		t.Fatal(err)
	}
	counts := s.BlockCounts()
	if counts[9] != 1 {
		t.Fatalf("part 9 blocks = %d, want 1 (claims share the hub)", counts[9])
	}
	if counts[11] != 1 {
		t.Fatalf("part 11 blocks = %d, want 1", counts[11])
	}
	if got := s.Congestion(); got != 1 {
		t.Fatalf("congestion = %d, want 1", got)
	}
	// Hub is the block root for both parts.
	if !s.IsBlockRoot(0, 9) || !s.IsBlockRoot(0, 11) {
		t.Fatal("hub should be block root for both parts")
	}
}

func TestSetupBlocksMultiPartCongestion(t *testing.T) {
	g := graph.Path(12)
	net, bt := buildTree(t, g, 5)
	s := New(bt, g.N())
	deepest := 0
	for v := 0; v < g.N(); v++ {
		if bt.Depth[v] > bt.Depth[deepest] {
			deepest = v
		}
	}
	// Three parts claim overlapping rootward paths from the deepest node.
	for _, i := range []int64{100, 200, 300} {
		claimPath(net, bt, s, deepest, i, 5)
	}
	if err := SetupBlocks(net, s, testBudget); err != nil {
		t.Fatal(err)
	}
	if got := s.Congestion(); got != 3 {
		t.Fatalf("congestion = %d, want 3", got)
	}
	for _, i := range []int64{100, 200, 300} {
		if got := s.BlockCounts()[i]; got != 1 {
			t.Fatalf("part %d blocks = %d, want 1", i, got)
		}
	}
	if err := s.VerifyAgainstTree(net, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetupBlocksRandomizedProperty(t *testing.T) {
	// Property: after setup, for every part, all members of one DSU
	// component share the same (root depth, root ID), and the root really
	// is the component's minimum-depth member.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(60, 0.05, rng)
		net, bt := buildTree(t, g, int64(trial+20))
		s := New(bt, g.N())
		for i := int64(1); i <= 6; i++ {
			for k := 0; k < 3; k++ {
				claimPath(net, bt, s, rng.Intn(g.N()), i*1000, 1+rng.Intn(8))
			}
		}
		if err := SetupBlocks(net, s, testBudget); err != nil {
			t.Fatal(err)
		}
		if err := s.VerifyAgainstTree(net, nil); err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= 6; i++ {
			pid := i * 1000
			verifyBlockMeta(t, net, bt, s, pid)
		}
		if s.TotalEdges() == 0 {
			t.Fatal("no edges were claimed")
		}
	}
}

// verifyBlockMeta cross-checks distributed Meta against an offline
// component computation.
func verifyBlockMeta(t *testing.T, net *congest.Network, bt *tree.BFSTree, s *Shortcut, pid int64) {
	t.Helper()
	n := net.N()
	// Offline components of (V(H_pid), H_pid).
	comp := make([]int, n)
	for v := range comp {
		comp[v] = -1
	}
	changed := true
	next := 0
	for v := 0; v < n; v++ {
		if s.OnBlock(v, pid) && comp[v] < 0 {
			comp[v] = next
			next++
		}
	}
	for changed {
		changed = false
		for v := 0; v < n; v++ {
			if !s.HasUp(v, pid) {
				continue
			}
			u := bt.ParentNode[v]
			lo := min(comp[v], comp[u])
			if comp[v] != lo || comp[u] != lo {
				comp[v], comp[u] = lo, lo
				changed = true
			}
		}
	}
	// Within a component: same meta; root is the min-depth member.
	type agg struct {
		minDepth int
		rootID   int64
		metas    map[BlockMeta]struct{}
	}
	byComp := make(map[int]*agg)
	for v := 0; v < n; v++ {
		if comp[v] < 0 {
			continue
		}
		a := byComp[comp[v]]
		if a == nil {
			a = &agg{minDepth: 1 << 30, metas: make(map[BlockMeta]struct{})}
			byComp[comp[v]] = a
		}
		if bt.Depth[v] < a.minDepth {
			a.minDepth = bt.Depth[v]
			a.rootID = net.ID(v)
		}
		m, ok := s.Meta[v][pid]
		if !ok {
			t.Fatalf("part %d: node %d on block but missing meta", pid, v)
		}
		a.metas[m] = struct{}{}
	}
	for c, a := range byComp {
		if len(a.metas) != 1 {
			t.Fatalf("part %d component %d has %d distinct metas", pid, c, len(a.metas))
		}
		for m := range a.metas {
			if m.RootDepth != int64(a.minDepth) || m.RootID != a.rootID {
				t.Fatalf("part %d component %d meta %+v, want depth %d id %d",
					pid, c, m, a.minDepth, a.rootID)
			}
		}
	}
}

func TestDropPart(t *testing.T) {
	g := graph.Path(8)
	net, bt := buildTree(t, g, 7)
	s := New(bt, g.N())
	deepest := 0
	for v := 0; v < g.N(); v++ {
		if bt.Depth[v] > bt.Depth[deepest] {
			deepest = v
		}
	}
	claimPath(net, bt, s, deepest, 1, 3)
	claimPath(net, bt, s, deepest, 2, 3)
	s.DropPart(1)
	if s.Congestion() != 1 {
		t.Fatalf("congestion after drop = %d, want 1", s.Congestion())
	}
	if _, ok := s.BlockCounts()[1]; ok {
		t.Fatal("dropped part still has blocks")
	}
	if _, ok := s.BlockCounts()[2]; !ok {
		t.Fatal("surviving part lost its blocks")
	}
}
