package subpart

import (
	"fmt"
	"math"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/part"
)

// Message kinds used by this package's protocols.
const (
	kindClaim int32 = iota + 50
	kindChild
	kindRepExchange
)

// Division is a sub-part division as local knowledge: entry v of each
// per-node slice belongs to node v; SameSub is flat over the CSR offsets.
type Division struct {
	RepID      []int64 // ID of v's sub-part representative
	IsRep      []bool
	ParentPort []int // toward the representative within the sub-part tree; -1 at the rep
	ChildPorts [][]int
	WholePart  []bool // v's part is one sub-part (the covered / small-part branch)
	// Row/SameSub mirror part.Info's flat layout: SameSub[Row[v]+q] reports
	// whether the neighbor behind port q of node v is in the same sub-part.
	Row     []int32
	SameSub []bool
	Depth   []int // hop distance to the representative along the sub-part tree
}

// SameSubAt reports whether port q of node v stays inside v's sub-part.
func (d *Division) SameSubAt(v, q int) bool { return d.SameSub[d.Row[v]+int32(q)] }

// SameSubRow returns node v's per-port window of the flat SameSub array.
func (d *Division) SameSubRow(v int) []bool { return d.SameSub[d.Row[v]:d.Row[v+1]] }

func newDivision(net *congest.Network) *Division {
	n := net.N()
	csr := net.Graph().CSR()
	d := &Division{
		RepID:      make([]int64, n),
		IsRep:      make([]bool, n),
		ParentPort: make([]int, n),
		ChildPorts: make([][]int, n),
		WholePart:  make([]bool, n),
		Row:        csr.RowStart,
		SameSub:    make([]bool, len(csr.PortTo)),
		Depth:      make([]int, n),
	}
	for v := range d.ParentPort {
		d.ParentPort[v] = -1
		d.RepID[v] = -1
		d.Depth[v] = -1
	}
	return d
}

// RandomDivision computes a sub-part division via Algorithm 3. Parts covered
// by pb (intra-part BFS of radius D reached everyone) become a single
// sub-part rooted at the leader. In larger parts every node self-elects as a
// representative with probability min(1, ln(n)/D) and an O(D)-round
// restricted wave has each node adopt the first representative it hears
// (w.h.p. every node is reached and each part gets Õ(|P_i|/D) sub-parts,
// Lemma 5.1). Nodes left unreached — a 1/poly(n) probability event — fall
// back to singleton sub-parts, preserving correctness unconditionally.
func RandomDivision(net *congest.Network, in *part.Info, pb *part.BFS, d int64, maxRounds int64) (*Division, error) {
	n := net.N()
	if d < 1 {
		d = 1
	}
	div := newDivision(net)

	// Covered parts: adopt the part BFS tree wholesale.
	for v := 0; v < n; v++ {
		if pb.Covered[v] {
			div.RepID[v] = in.LeaderID[v]
			div.IsRep[v] = in.IsLeader[v]
			div.ParentPort[v] = pb.ParentPort[v]
			div.ChildPorts[v] = append([]int(nil), pb.ChildPorts[v]...)
			div.WholePart[v] = true
			div.Depth[v] = pb.Depth[v]
		}
	}

	// Sampling wave over uncovered parts, with the paper's probability
	// min{1, log n / D}; the singleton fallback below covers the 1/poly(n)
	// failure probability unconditionally.
	prob := math.Min(1, math.Log(float64(n)+2)/float64(d))
	wp := &waveProc{in: in, div: div, covered: pb.Covered, d: d, prob: prob,
		claimed: make([]bool, n)}
	if _, err := net.RunNodes("subpart/wave", wp, maxRounds); err != nil {
		return nil, err
	}

	// Unreached nodes of uncovered parts become singleton representatives.
	for v := 0; v < n; v++ {
		if div.RepID[v] < 0 {
			div.RepID[v] = net.ID(v)
			div.IsRep[v] = true
		}
	}

	if err := exchangeReps(net, in, div, maxRounds); err != nil {
		return nil, err
	}
	return div, nil
}

// waveProc implements the Algorithm 3 wave: self-elect with probability
// prob, then adopt the first representative ID heard, register as a child,
// and forward the wave within the ball of radius d. Shared across nodes;
// per-node state is the division plus the flat covered/claimed arrays.
type waveProc struct {
	in      *part.Info
	div     *Division
	d       int64
	prob    float64
	covered []bool
	claimed []bool
}

// Step implements congest.NodeProc.
func (w *waveProc) Step(ctx *congest.Ctx, v int) bool {
	if w.covered[v] {
		return false
	}
	div := w.div
	same := w.in.SameRow(v)
	forward := func(depth int64) {
		if depth >= w.d {
			return
		}
		for q, ok := range same {
			if ok && q != div.ParentPort[v] && ctx.CanSend(q) {
				ctx.Send(q, congest.Message{Kind: kindClaim, A: div.RepID[v], B: depth + 1})
			}
		}
	}
	if ctx.Round() == 0 && ctx.Rand().Float64() < w.prob {
		w.claimed[v] = true
		div.IsRep[v] = true
		div.RepID[v] = ctx.ID()
		div.Depth[v] = 0
		forward(0)
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		switch m.Msg.Kind {
		case kindClaim:
			if w.claimed[v] {
				return
			}
			w.claimed[v] = true
			div.RepID[v] = m.Msg.A
			div.ParentPort[v] = m.Port
			div.Depth[v] = int(m.Msg.B)
			ctx.Send(m.Port, congest.Message{Kind: kindChild})
			forward(m.Msg.B)
		case kindChild:
			div.ChildPorts[v] = append(div.ChildPorts[v], m.Port)
		}
	})
	return false
}

// exchangeReps has every node announce its representative ID across
// intra-part edges so that both endpoints learn whether the edge stays
// inside a sub-part (needed for Algorithm 1's exit-edge broadcasts).
// One round, O(Σ_i m_i) messages.
func exchangeReps(net *congest.Network, in *part.Info, div *Division, maxRounds int64) error {
	_, err := net.RunNodes("subpart/exchange", &repExchangeProc{in: in, div: div}, maxRounds)
	return err
}

// repExchangeProc announces RepID across intra-part edges and records
// same-sub-part flags into the division's flat SameSub array.
type repExchangeProc struct {
	in  *part.Info
	div *Division
}

// Step implements congest.NodeProc.
func (p *repExchangeProc) Step(ctx *congest.Ctx, v int) bool {
	div := p.div
	if ctx.Round() == 0 {
		for q, ok := range p.in.SameRow(v) {
			if ok {
				ctx.Send(q, congest.Message{Kind: kindRepExchange, A: div.RepID[v]})
			}
		}
	}
	subRow := div.SameSubRow(v)
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		subRow[m.Port] = m.Msg.A == div.RepID[v]
	})
	return false
}

// Validate checks division invariants engine-side (test/diagnostic aid):
// sub-part trees stay within parts, parent pointers lead acyclically to the
// representative within the stated depth, child/parent views agree, and
// SameSub matches RepID equality.
func (div *Division) Validate(net *congest.Network, in *part.Info, maxDepth int) error {
	g := net.Graph()
	n := g.N()
	for v := 0; v < n; v++ {
		if div.IsRep[v] {
			if div.RepID[v] != net.ID(v) {
				return fmt.Errorf("subpart: rep %d has RepID %d, want own ID", v, div.RepID[v])
			}
			if div.ParentPort[v] != -1 {
				return fmt.Errorf("subpart: rep %d has a parent", v)
			}
		}
		// Walk to the representative.
		u, steps := v, 0
		for div.ParentPort[u] >= 0 {
			next := g.Neighbor(u, div.ParentPort[u])
			if in.Dense[next] != in.Dense[v] {
				return fmt.Errorf("subpart: tree edge %d-%d crosses parts", u, next)
			}
			if div.RepID[next] != div.RepID[v] {
				return fmt.Errorf("subpart: tree edge %d-%d crosses sub-parts", u, next)
			}
			u = next
			steps++
			if steps > n {
				return fmt.Errorf("subpart: parent cycle at node %d", v)
			}
		}
		if !div.IsRep[u] {
			return fmt.Errorf("subpart: node %d's chain ends at non-rep %d", v, u)
		}
		if div.RepID[v] != net.ID(u) {
			return fmt.Errorf("subpart: node %d RepID %d but chain reaches %d", v, div.RepID[v], net.ID(u))
		}
		if maxDepth > 0 && steps > maxDepth {
			return fmt.Errorf("subpart: node %d at tree depth %d > %d", v, steps, maxDepth)
		}
		for _, q := range div.ChildPorts[v] {
			c := g.Neighbor(v, q)
			if div.ParentPort[c] < 0 || g.Neighbor(c, div.ParentPort[c]) != v {
				return fmt.Errorf("subpart: child link %d->%d not mirrored", v, c)
			}
		}
		var mismatch error
		g.ForPorts(v, func(q, u, _ int) bool {
			want := in.Dense[u] == in.Dense[v] && div.RepID[u] == div.RepID[v]
			if in.Dense[u] == in.Dense[v] && div.SameSubAt(v, q) != want {
				mismatch = fmt.Errorf("subpart: SameSub[%d][%d]=%v, want %v", v, q, div.SameSubAt(v, q), want)
				return false
			}
			return true
		})
		if mismatch != nil {
			return mismatch
		}
	}
	return nil
}

// CountSubParts returns (engine-side) the number of sub-parts per dense part
// ID.
func (div *Division) CountSubParts(in *part.Info) map[int]int {
	repsSeen := make(map[int]map[int64]struct{})
	for v, p := range in.Dense {
		if repsSeen[p] == nil {
			repsSeen[p] = make(map[int64]struct{})
		}
		repsSeen[p][div.RepID[v]] = struct{}{}
	}
	out := make(map[int]int, len(repsSeen))
	for p, s := range repsSeen {
		out[p] = len(s)
	}
	return out
}
