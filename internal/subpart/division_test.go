package subpart

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
)

const testBudget = 200000

// setup builds a network, partition info with elected leaders, and the
// radius-d intra-part BFS that RandomDivision consumes.
func setup(t *testing.T, g *graph.Graph, parts []int, seed, d int64) (*congest.Network, *part.Info, *part.BFS) {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	in, err := part.FromDense(net, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.ElectLeaders(net, in, testBudget); err != nil {
		t.Fatal(err)
	}
	pb, err := part.RestrictedBFS(net, in, d, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	return net, in, pb
}

func TestRandomDivisionOnCoveredParts(t *testing.T) {
	// Small parts on a grid: every part is covered, so each is one sub-part
	// rooted at its leader.
	g := graph.Grid(6, 6)
	rng := rand.New(rand.NewSource(1))
	parts := graph.RandomConnectedPartition(g, 9, rng)
	d := int64(g.N()) // radius large enough to cover everything
	net, in, pb := setup(t, g, parts, 2, d)
	div, err := RandomDivision(net, in, pb, d, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if err := div.Validate(net, in, int(d)); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if !div.WholePart[v] {
			t.Fatalf("node %d not in a whole-part sub-part", v)
		}
		if div.RepID[v] != in.LeaderID[v] {
			t.Fatalf("node %d rep %d, want leader %d", v, div.RepID[v], in.LeaderID[v])
		}
	}
	for p, c := range div.CountSubParts(in) {
		if c != 1 {
			t.Fatalf("covered part %d has %d sub-parts, want 1", p, c)
		}
	}
}

func TestRandomDivisionOnLongPath(t *testing.T) {
	// One part spanning a long path, small radius: the sampling branch must
	// produce about |P|/D sub-parts of depth <= D.
	const n, d = 400, 20
	g := graph.Path(n)
	net, in, pb := setup(t, g, graph.WholePartition(n), 3, d)
	div, err := RandomDivision(net, in, pb, d, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if err := div.Validate(net, in, d); err != nil {
		t.Fatal(err)
	}
	counts := div.CountSubParts(in)
	c := counts[in.Dense[0]]
	// Lemma 5.1: Õ(|P|/D) sub-parts. With prob 2 ln n / D the expectation is
	// 2 n ln n / D ≈ 240; allow generous slack but reject pathological
	// counts (singleton fallback storms or missing samples).
	if c < n/(2*d) {
		t.Fatalf("too few sub-parts: %d", c)
	}
	if c > n {
		t.Fatalf("too many sub-parts: %d", c)
	}
	// No node should be left at unreasonable depth.
	for v := 0; v < n; v++ {
		if div.Depth[v] > d {
			t.Fatalf("node %d at depth %d > D=%d", v, div.Depth[v], d)
		}
	}
}

func TestRandomDivisionMixedParts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomConnected(120, 0.03, rng)
		parts := graph.RandomConnectedPartition(g, 4, rng)
		d := int64(6)
		net, in, pb := setup(t, g, parts, int64(10+trial), d)
		div, err := RandomDivision(net, in, pb, d, testBudget)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := div.Validate(net, in, int(d)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every node has a representative.
		for v := 0; v < g.N(); v++ {
			if div.RepID[v] < 0 {
				t.Fatalf("trial %d: node %d has no rep", trial, v)
			}
		}
	}
}

func TestRandomDivisionGridStar(t *testing.T) {
	// The Figure 2 instance: rows are long parts, apex is a singleton part.
	const rows, cols = 8, 50
	g := graph.GridStar(rows, cols)
	parts := graph.GridStarRowParts(rows, cols)
	d := int64(rows) // D of this network is Θ(rows)
	net, in, pb := setup(t, g, parts, 5, d)
	div, err := RandomDivision(net, in, pb, d, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if err := div.Validate(net, in, int(d)); err != nil {
		t.Fatal(err)
	}
	// The apex part is covered (singleton).
	apex := g.N() - 1
	if !div.WholePart[apex] || !div.IsRep[apex] {
		t.Fatal("apex should be a whole-part sub-part")
	}
	// Rows (50 nodes, radius 8): sampling branch; each row should have
	// several sub-parts but far fewer than its node count w.h.p.
	counts := div.CountSubParts(in)
	for p, c := range counts {
		if p == in.Dense[apex] {
			continue
		}
		if c < 2 || c > cols {
			t.Fatalf("row part %d has %d sub-parts", p, c)
		}
	}
}

func TestRandomDivisionIsReproducible(t *testing.T) {
	run := func() []int64 {
		g := graph.Path(100)
		net, in, pb := setup(t, g, graph.WholePartition(100), 9, 10)
		div, err := RandomDivision(net, in, pb, 10, testBudget)
		if err != nil {
			t.Fatal(err)
		}
		return div.RepID
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d rep differs across identical runs", v)
		}
	}
}
