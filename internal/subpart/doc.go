// Package subpart implements the paper's sub-part divisions (Definition 4.1)
// and the machinery for computing them: the randomized sampling division
// (Algorithm 3), star joinings (Definition 6.1 / Algorithm 5, randomized and
// deterministic via Cole–Vishkin), and the deterministic division
// (Algorithm 6).
//
// A sub-part division refines each part into Õ(|P_i|/D) sub-parts, each with
// a spanning tree of diameter O(D) rooted at a designated representative.
// Only representatives may inject messages into shortcuts, which is the
// paper's key device for message-optimality (Section 3.2).
package subpart
