package subpart

import (
	"shortcutpa/internal/congest"
)

// ForestAgg aggregates within the sub-part forest of a Division: one
// convergecast up each sub-part tree followed by a broadcast down it. This
// is Lemma 6.4's observation that aggregating inside incomplete sub-parts
// is trivial: the trees have diameter O(D) and every node knows its parent.
// It implements Agg, so Algorithm 6 can drive star joinings with it.
type ForestAgg struct {
	Net *congest.Network
	Div *Division
	// Budget caps each run.
	Budget int64

	// Call-lifetime proc state, reused across Aggregate calls (Algorithm 6
	// makes O(log n) of them per level); every entry is rewritten per call.
	proc *forestAggProc
}

var _ Agg = (*ForestAgg)(nil)

// Forest-aggregation message kinds.
const (
	kindForestUp int32 = iota + 65
	kindForestDown
)

// Aggregate implements Agg over the division's sub-part trees.
func (fa *ForestAgg) Aggregate(vals []congest.Val, f congest.Combine) ([]congest.Val, error) {
	n := fa.Net.N()
	out := make([]congest.Val, n)
	if fa.proc == nil {
		fa.proc = &forestAggProc{
			div:     fa.Div,
			acc:     make([]congest.Val, n),
			waiting: make([]int, n),
			fired:   make([]bool, n),
		}
	}
	p := fa.proc
	p.f, p.out = f, out
	copy(p.acc, vals)
	for v := 0; v < n; v++ {
		p.waiting[v] = len(fa.Div.ChildPorts[v])
		p.fired[v] = false
	}
	defer func() { p.f, p.out = nil, nil }() // drop call-scoped references on every path
	if _, err := fa.Net.RunNodes("subpart/forest-agg", p, fa.Budget); err != nil {
		return nil, err
	}
	return out, nil
}

// forestAggProc is the shared convergecast + broadcast state machine over
// the sub-part forest; per-node state is the flat acc/waiting/fired arrays.
type forestAggProc struct {
	div     *Division
	f       congest.Combine
	out     []congest.Val
	acc     []congest.Val
	waiting []int
	fired   []bool
}

// Step implements congest.NodeProc.
func (p *forestAggProc) Step(ctx *congest.Ctx, v int) bool {
	div := p.div
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		switch m.Msg.Kind {
		case kindForestUp:
			p.acc[v] = p.f(p.acc[v], congest.Val{A: m.Msg.A, B: m.Msg.B})
			p.waiting[v]--
		case kindForestDown:
			p.out[v] = congest.Val{A: m.Msg.A, B: m.Msg.B}
			for _, q := range div.ChildPorts[v] {
				ctx.Send(q, m.Msg)
			}
		}
	})
	if p.waiting[v] == 0 && !p.fired[v] {
		p.fired[v] = true
		if pp := div.ParentPort[v]; pp >= 0 {
			ctx.Send(pp, congest.Message{Kind: kindForestUp, A: p.acc[v].A, B: p.acc[v].B})
		} else {
			p.out[v] = p.acc[v]
			for _, q := range div.ChildPorts[v] {
				ctx.Send(q, congest.Message{Kind: kindForestDown, A: p.acc[v].A, B: p.acc[v].B})
			}
		}
	}
	return false
}
