package subpart

import (
	"shortcutpa/internal/congest"
)

// ForestAgg aggregates within the sub-part forest of a Division: one
// convergecast up each sub-part tree followed by a broadcast down it. This
// is Lemma 6.4's observation that aggregating inside incomplete sub-parts
// is trivial: the trees have diameter O(D) and every node knows its parent.
// It implements Agg, so Algorithm 6 can drive star joinings with it.
type ForestAgg struct {
	Net *congest.Network
	Div *Division
	// Budget caps each run.
	Budget int64
}

var _ Agg = (*ForestAgg)(nil)

// Forest-aggregation message kinds.
const (
	kindForestUp int32 = iota + 65
	kindForestDown
)

// Aggregate implements Agg over the division's sub-part trees.
func (fa *ForestAgg) Aggregate(vals []congest.Val, f congest.Combine) ([]congest.Val, error) {
	n := fa.Net.N()
	out := make([]congest.Val, n)
	procs := fa.Net.Scratch().Procs(n)
	impls := make([]forestAggProc, n) // one backing array, not n tiny allocs
	for v := 0; v < n; v++ {
		impls[v] = forestAggProc{div: fa.Div, f: f, v: v, acc: vals[v], out: out}
		procs[v] = &impls[v]
	}
	if _, err := fa.Net.Run("subpart/forest-agg", procs, fa.Budget); err != nil {
		return nil, err
	}
	return out, nil
}

type forestAggProc struct {
	div     *Division
	f       congest.Combine
	v       int
	acc     congest.Val
	out     []congest.Val
	waiting int
	fired   bool
}

func (p *forestAggProc) Step(ctx *congest.Ctx) bool {
	div, v := p.div, p.v
	if ctx.Round() == 0 {
		p.waiting = len(div.ChildPorts[v])
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		switch m.Msg.Kind {
		case kindForestUp:
			p.acc = p.f(p.acc, congest.Val{A: m.Msg.A, B: m.Msg.B})
			p.waiting--
		case kindForestDown:
			p.out[v] = congest.Val{A: m.Msg.A, B: m.Msg.B}
			for _, q := range div.ChildPorts[v] {
				ctx.Send(q, m.Msg)
			}
		}
	})
	if p.waiting == 0 && !p.fired {
		p.fired = true
		if pp := div.ParentPort[v]; pp >= 0 {
			ctx.Send(pp, congest.Message{Kind: kindForestUp, A: p.acc.A, B: p.acc.B})
		} else {
			p.out[v] = p.acc
			for _, q := range div.ChildPorts[v] {
				ctx.Send(q, congest.Message{Kind: kindForestDown, A: p.acc.A, B: p.acc.B})
			}
		}
	}
	return false
}
