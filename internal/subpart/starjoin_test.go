package subpart

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
)

// starJoinFixture builds a partitioned network with leaders, an oracle
// aggregation service, and per-part chosen out-edges (minimum edge-index
// edge leaving the part, mirroring how Borůvka chooses MOEs).
func starJoinFixture(t *testing.T, g *graph.Graph, parts []int, seed int64) (*congest.Network, *part.Info, []int, *OracleAgg) {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	in, err := part.FromDense(net, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.ElectLeaders(net, in, 100000); err != nil {
		t.Fatal(err)
	}
	chosen := make([]int, g.N())
	for v := range chosen {
		chosen[v] = -1
	}
	// Pick, per part, the smallest-index edge leaving it.
	bestEdge := make(map[int]int)
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		for _, end := range []int{e.U, e.V} {
			p := in.Dense[end]
			other := e.U ^ e.V ^ end
			if in.Dense[other] == p {
				continue
			}
			if have, ok := bestEdge[p]; !ok || i < have {
				bestEdge[p] = i
			}
		}
	}
	for p, i := range bestEdge {
		e := g.Edge(i)
		end := e.U
		if in.Dense[end] != p {
			end = e.V
		}
		other := e.U ^ e.V ^ end
		chosen[end] = g.PortTo(end, other)
	}
	return net, in, chosen, &OracleAgg{Dense: in.Dense}
}

// checkStarJoining verifies Definition 6.1: roles are part-consistent,
// joiners' chosen edges land in receiver parts, and (for instances where
// every part has an out-edge) at least a constant fraction of parts merge.
func checkStarJoining(t *testing.T, g *graph.Graph, in *part.Info, chosen []int, res *StarJoinResult, wantFraction bool) {
	t.Helper()
	byPart := make(map[int]Role)
	for v := 0; v < g.N(); v++ {
		p := in.Dense[v]
		if have, ok := byPart[p]; ok {
			if have != res.Role[v] {
				t.Fatalf("part %d has inconsistent roles", p)
			}
		} else {
			byPart[p] = res.Role[v]
		}
	}
	joiners, receivers, total := 0, 0, 0
	for _, r := range byPart {
		total++
		switch r {
		case RoleJoiner:
			joiners++
		case RoleReceiver:
			receivers++
		}
	}
	for v := 0; v < g.N(); v++ {
		if res.Role[v] != RoleJoiner || chosen[v] < 0 {
			continue
		}
		target := g.Neighbor(v, chosen[v])
		if res.Role[target] != RoleReceiver {
			t.Fatalf("joiner %d's chosen edge points at part with role %d", v, res.Role[target])
		}
	}
	if wantFraction && total > 1 && joiners == 0 {
		t.Fatalf("no joiners among %d parts", total)
	}
}

func TestStarJoinDeterministicOnCycleOfParts(t *testing.T) {
	// A cycle graph with singleton parts: the super-graph is one directed
	// cycle — the pure Cole-Vishkin case.
	g := graph.Cycle(17)
	net, in, chosen, agg := starJoinFixture(t, g, graph.SingletonPartition(17), 1)
	res, err := StarJoin(net, in, chosen, agg, true, 0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	checkStarJoining(t, g, in, chosen, res, true)
}

func TestStarJoinDeterministicStarTopology(t *testing.T) {
	// Star graph, singleton parts: all leaves point at the hub (in-degree
	// >= 2 rule fires), so the hub receives and every leaf joins.
	g := graph.Star(9)
	net, in, chosen, agg := starJoinFixture(t, g, graph.SingletonPartition(9), 2)
	res, err := StarJoin(net, in, chosen, agg, true, 0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	checkStarJoining(t, g, in, chosen, res, true)
	if res.Role[0] != RoleReceiver {
		t.Fatal("hub should be a receiver")
	}
	joiners := 0
	for v := 1; v < 9; v++ {
		if res.Role[v] == RoleJoiner {
			joiners++
		}
	}
	if joiners != 8 {
		t.Fatalf("%d of 8 leaves joined", joiners)
	}
}

func TestStarJoinBothModesOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomConnected(50, 0.08, rng)
		k := 4 + rng.Intn(12)
		parts := graph.RandomConnectedPartition(g, k, rng)
		for _, det := range []bool{true, false} {
			net, in, chosen, agg := starJoinFixture(t, g, parts, int64(10*trial)+boolInt(det))
			res, err := StarJoin(net, in, chosen, agg, det, int64(trial), 100000)
			if err != nil {
				t.Fatalf("trial %d det=%v: %v", trial, det, err)
			}
			checkStarJoining(t, g, in, chosen, res, det)
		}
	}
}

func TestStarJoinConvergesWhenIterated(t *testing.T) {
	// Iterating star joinings + merges must coarsen singleton parts to one
	// part per component within O(log n) rounds — the engine behind
	// Algorithms 6 and 9 and Borůvka.
	for _, det := range []bool{true, false} {
		g := graph.Grid(6, 8)
		parts := graph.SingletonPartition(g.N())
		rounds := 0
		for ; rounds < 30; rounds++ {
			net, in, chosen, agg := starJoinFixture(t, g, parts, int64(100+rounds))
			if countParts(parts) == 1 {
				break
			}
			res, err := StarJoin(net, in, chosen, agg, det, int64(rounds), 100000)
			if err != nil {
				t.Fatal(err)
			}
			// The deterministic variant guarantees joiners every round; the
			// randomized one only in expectation (coin flips can all agree).
			checkStarJoining(t, g, in, chosen, res, det)
			// Engine-side merge of joiners into their targets (the callers'
			// job; here done with global knowledge for the test).
			parts = mergeJoiners(g, in, chosen, res, parts)
		}
		if countParts(parts) != 1 {
			t.Fatalf("det=%v: %d parts left after %d joinings", det, countParts(parts), rounds)
		}
		if rounds > 25 {
			t.Fatalf("det=%v: took %d joinings for 48 nodes", det, rounds)
		}
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func countParts(parts []int) int {
	_, k := graph.NormalizeParts(parts)
	return k
}

func mergeJoiners(g *graph.Graph, in *part.Info, chosen []int, res *StarJoinResult, parts []int) []int {
	dsu := graph.NewDSU(g.N())
	for _, e := range g.Edges() {
		if parts[e.U] == parts[e.V] {
			dsu.Union(e.U, e.V)
		}
	}
	for v := 0; v < g.N(); v++ {
		if res.Role[v] == RoleJoiner && chosen[v] >= 0 {
			dsu.Union(v, g.Neighbor(v, chosen[v]))
		}
	}
	labels, _ := dsu.Labels()
	return labels
}
