package subpart

import (
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
)

// detSetup mirrors division_test's setup for the deterministic pipeline.
func detSetup(t *testing.T, g *graph.Graph, parts []int, seed, d int64) (*part.Info, *Division) {
	t.Helper()
	net, in, pb := setup(t, g, parts, seed, d)
	div, err := DeterministicDivision(net, in, pb, d, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if err := div.Validate(net, in, 0 /* depth checked separately */); err != nil {
		t.Fatal(err)
	}
	return in, div
}

func TestDeterministicDivisionCoveredPartsStayWhole(t *testing.T) {
	g := graph.Grid(6, 6)
	parts := graph.StripePartition(6, 6)
	in, div := detSetup(t, g, parts, 1, int64(g.N()))
	for v := 0; v < g.N(); v++ {
		if !div.WholePart[v] {
			t.Fatalf("node %d of covered part not whole-part", v)
		}
	}
	for p, c := range div.CountSubParts(in) {
		if c != 1 {
			t.Fatalf("part %d has %d sub-parts", p, c)
		}
	}
}

func TestDeterministicDivisionDeepParts(t *testing.T) {
	// Grid-star rows deeper than D: Algorithm 6 must split them into
	// complete sub-parts of >= D nodes each (so at most |P|/D+1 of them).
	const rows, cols = 6, 60
	g := graph.GridStar(rows, cols)
	parts := graph.GridStarRowParts(rows, cols)
	d := int64(rows + 2)
	in, div := detSetup(t, g, parts, 3, d)
	counts := div.CountSubParts(in)
	sizes := graph.PartSizes(in.Dense)
	for p, c := range counts {
		if sizes[p] <= int(d) {
			continue
		}
		if c > sizes[p]/int(d)+1 {
			t.Fatalf("part %d (size %d, D=%d) has %d sub-parts", p, sizes[p], d, c)
		}
		if c < 2 {
			t.Fatalf("deep part %d was not split", p)
		}
	}
	// Sub-part trees must not be deeper than the paper's 4D bound allows
	// (we allow a small slack over 4D for the attachment chains).
	for v := 0; v < g.N(); v++ {
		if div.Depth[v] > 6*int(d) {
			t.Fatalf("node %d at sub-part depth %d > 6D", v, div.Depth[v])
		}
	}
}

func TestDeterministicDivisionIsReproducible(t *testing.T) {
	run := func() []int64 {
		const rows, cols = 5, 40
		g := graph.GridStar(rows, cols)
		parts := graph.GridStarRowParts(rows, cols)
		_, div := detSetup(t, g, parts, 7, int64(rows+2))
		return div.RepID
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("rep of node %d differs across runs", v)
		}
	}
}

func TestForestAggMatchesOfflinePerSubPart(t *testing.T) {
	const rows, cols = 5, 40
	g := graph.GridStar(rows, cols)
	parts := graph.GridStarRowParts(rows, cols)
	net, in, pb := setup(t, g, parts, 9, int64(rows+2))
	div, err := DeterministicDivision(net, in, pb, int64(rows+2), testBudget)
	if err != nil {
		t.Fatal(err)
	}
	fa := &ForestAgg{Net: net, Div: div, Budget: testBudget}
	input := make([]congest.Val, g.N())
	for v := range input {
		input[v] = congest.Val{A: int64(v + 1)}
	}
	got, err := fa.Aggregate(input, congest.SumPair)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: sum per sub-part (keyed by RepID).
	want := make(map[int64]int64)
	for v := 0; v < g.N(); v++ {
		want[div.RepID[v]] += int64(v + 1)
	}
	for v := 0; v < g.N(); v++ {
		if got[v].A != want[div.RepID[v]] {
			t.Fatalf("node %d: forest agg %d, want %d", v, got[v].A, want[div.RepID[v]])
		}
	}
}
