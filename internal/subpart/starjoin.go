package subpart

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/part"
)

// starjoin.go implements star joinings (Definition 6.1 / Algorithm 5).
// Given one chosen outgoing edge per part, a star joining designates a
// constant fraction of the parts as joiners, each knowing an edge into a
// receiver part, such that merges form stars (joiners attach directly to
// receivers, bounding the merged diameter).
//
// The deterministic version is Algorithm 5: parts with super-graph
// in-degree >= 2 become receivers and their pointers joiners; the residual
// super-graph has in- and out-degree <= 1 (disjoint paths and cycles) and
// is 3-colored by simulating Cole-Vishkin [4] on part leaders, after which
// each color class becomes receivers in turn. The randomized version uses
// leader coin flips (tails pointing at heads join), merging a constant
// fraction in expectation — the paper's "easily accomplished with random
// coin flips".
//
// All part-internal coordination goes through an Agg service (Lemma 6.3's
// algorithm A): Algorithm 6 passes cheap intra-sub-part aggregation, while
// Algorithm 9 and Borůvka pass full PA.

// Agg is the part-wise aggregation service star joining coordinates with:
// one call makes every node learn f over its current part's values.
type Agg interface {
	Aggregate(vals []congest.Val, f congest.Combine) ([]congest.Val, error)
}

// Role is a part's outcome in a star joining.
type Role int8

// Roles. RoleNone parts neither merge nor receive this round.
const (
	RoleNone Role = iota
	RoleReceiver
	RoleJoiner
)

// StarJoinResult reports, per node, its part's role. Members of joiner
// parts already know their chosen edge (it was the input).
type StarJoinResult struct {
	Role []Role
}

// Message kinds for the cross-edge exchanges.
const (
	kindPoint int32 = iota + 60
	kindForward
	kindBack
)

// exchange state per node for the cross-edge protocol, plus the
// call-lifetime scratch the joining's O(log* n) exchange iterations reuse
// (each helper fully rewrites every entry before the round that reads it,
// so reuse cannot leak state between iterations).
type joinState struct {
	in         *part.Info
	chosenPort []int

	// pointedPorts[v] = ports over which some part's chosen edge points at v.
	pointedPorts [][]int
	// lastBack[v] = latest (color, flags) received over the chosen port.
	backColor []int64
	backFlags []int64
	havePred  []bool
	predColor []int64 // latest pred color forwarded to v over a pointed port

	// Reused per-iteration buffers (see deterministicResidue / cvStep /
	// reduceColor / colorPhase / randomizedFlips).
	color   []int64
	flags   []int64
	sendFwd []bool
	valBuf  []congest.Val
}

// flag bits carried in kindBack replies.
const (
	flagActive   int64 = 1 << 0
	flagReceiver int64 = 1 << 1
)

// StarJoin computes a star joining over the current partition. chosenPort[v]
// is the port of the part's chosen outgoing edge if v is its endpoint, else
// -1 (at most one endpoint per part; parts without a chosen edge never
// join but may receive). det selects Algorithm 5; otherwise coin flips.
// nonce differentiates the randomness of repeated joinings (callers pass
// the coarsening level).
func StarJoin(net *congest.Network, in *part.Info, chosenPort []int, agg Agg, det bool, nonce int64, maxRounds int64) (*StarJoinResult, error) {
	n := net.N()
	st := &joinState{
		in:           in,
		chosenPort:   chosenPort,
		pointedPorts: make([][]int, n),
		backColor:    make([]int64, n),
		backFlags:    make([]int64, n),
		havePred:     make([]bool, n),
		predColor:    make([]int64, n),
		color:        make([]int64, n),
		flags:        make([]int64, n),
		sendFwd:      make([]bool, n),
		valBuf:       make([]congest.Val, n),
	}
	res := &StarJoinResult{Role: make([]Role, n)}

	// Stage 0: endpoints announce the chosen edges (POINT).
	if err := st.pointRound(net, maxRounds); err != nil {
		return nil, err
	}

	// Stage 1: in-degree count; delta >= 2 parts become receivers.
	for v := 0; v < n; v++ {
		st.valBuf[v] = congest.Val{A: int64(len(st.pointedPorts[v]))}
	}
	degs, err := agg.Aggregate(st.valBuf, congest.SumPair)
	if err != nil {
		return nil, err
	}
	// A part without a chosen edge can never join, only be joined: make it
	// a permanent receiver so parts pointing at it are not starved (the
	// Algorithm 6 case where incomplete sub-parts point at complete ones).
	for v := 0; v < n; v++ {
		st.valBuf[v] = congest.Val{}
		if chosenPort[v] >= 0 {
			st.valBuf[v] = congest.Val{A: 1}
		}
	}
	hasEdge, err := agg.Aggregate(st.valBuf, congest.OrPair)
	if err != nil {
		return nil, err
	}
	receiver := make([]bool, n)
	for v := 0; v < n; v++ {
		receiver[v] = degs[v].A >= 2 || hasEdge[v].A == 0
	}

	if det {
		if err := st.deterministicResidue(net, in, agg, receiver, res, maxRounds); err != nil {
			return nil, err
		}
	} else {
		if err := st.randomizedFlips(net, in, agg, receiver, res, nonce, maxRounds); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// pointRound: each chosen endpoint sends POINT over its chosen port; the
// far endpoint records the port.
func (st *joinState) pointRound(net *congest.Network, maxRounds int64) error {
	_, err := net.RunNodes("subpart/point", (*pointProc)(st), maxRounds)
	return err
}

// pointProc is joinState viewed as the POINT round's shared state machine.
type pointProc joinState

// Step implements congest.NodeProc.
func (p *pointProc) Step(ctx *congest.Ctx, v int) bool {
	st := (*joinState)(p)
	if ctx.Round() == 0 && st.chosenPort[v] >= 0 {
		ctx.Send(st.chosenPort[v], congest.Message{Kind: kindPoint})
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		st.pointedPorts[v] = append(st.pointedPorts[v], m.Port)
	})
	return false
}

// exchangeRound: active endpoints forward (FWD, myColor, myFlags) over the
// chosen port; every pointed node replies (BACK, partColor, partFlags) over
// the ports that forwarded this round. After the round, each endpoint
// holds its successor part's color/flags, and each pointed node the
// predecessor's. Reads st.color/st.flags/st.sendFwd, which the caller must
// have fully (re)written.
func (st *joinState) exchangeRound(net *congest.Network, maxRounds int64) error {
	n := net.N()
	// Clear stale exchange results: replies arrive only for this round's
	// forwards.
	for v := 0; v < n; v++ {
		st.backColor[v], st.backFlags[v] = 0, 0
		st.havePred[v], st.predColor[v] = false, 0
	}
	_, err := net.RunNodes("subpart/exchange", (*exchangeProc)(st), maxRounds)
	return err
}

// exchangeProc is joinState viewed as the FWD/BACK exchange's shared state
// machine.
type exchangeProc joinState

// Step implements congest.NodeProc.
func (p *exchangeProc) Step(ctx *congest.Ctx, v int) bool {
	st := (*joinState)(p)
	if ctx.Round() == 0 && st.chosenPort[v] >= 0 && st.sendFwd[v] {
		ctx.Send(st.chosenPort[v], congest.Message{Kind: kindForward, A: st.color[v], B: st.flags[v]})
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		switch m.Msg.Kind {
		case kindForward:
			st.havePred[v] = true
			st.predColor[v] = m.Msg.A
			ctx.Send(m.Port, congest.Message{Kind: kindBack, A: st.color[v], B: st.flags[v]})
		case kindBack:
			st.backColor[v] = m.Msg.A
			st.backFlags[v] = m.Msg.B
		}
	})
	return false
}

// spreadFromEndpoint distributes a value known at the chosen endpoint to the
// whole part via one aggregation (everyone else contributes the identity).
func (st *joinState) spreadFromEndpoint(agg Agg, n int, has func(v int) bool, val func(v int) congest.Val) ([]congest.Val, error) {
	for v := 0; v < n; v++ {
		if has(v) {
			st.valBuf[v] = val(v)
		} else {
			st.valBuf[v] = congest.Val{A: -1 << 62}
		}
	}
	return agg.Aggregate(st.valBuf, congest.MaxPair)
}

// randomizedFlips implements the coin-flip star joining: every part leader
// flips; tails parts whose successor is heads (and not already a joiner
// target inconsistency) join; heads parts receive.
func (st *joinState) randomizedFlips(net *congest.Network, in *part.Info, agg Agg, recvByDeg []bool,
	res *StarJoinResult, nonce int64, maxRounds int64) error {
	n := net.N()
	// Leader flips ride an aggregation to all members.
	for v := 0; v < n; v++ {
		if in.IsLeader[v] {
			st.valBuf[v] = congest.Val{A: rngBit(net, v, nonce)}
		} else {
			st.valBuf[v] = congest.Val{A: -1}
		}
	}
	got, err := agg.Aggregate(st.valBuf, congest.MaxPair)
	if err != nil {
		return err
	}
	heads := make([]bool, n)
	for v := 0; v < n; v++ {
		heads[v] = got[v].A == 1
	}
	// Heads or high-in-degree parts receive; they are announced over the
	// chosen edges, and tails parts pointing at them join.
	for v := 0; v < n; v++ {
		st.color[v] = 0
		st.flags[v] = 0
		if heads[v] || recvByDeg[v] {
			st.flags[v] = flagReceiver
		}
		st.sendFwd[v] = !heads[v] && !recvByDeg[v] // only potential joiners ask
	}
	if err := st.exchangeRound(net, maxRounds); err != nil {
		return err
	}
	// Endpoint learned whether its target receives; spread part-wide.
	joins, err := st.spreadFromEndpoint(agg, n, func(v int) bool { return st.chosenPort[v] >= 0 }, func(v int) congest.Val {
		if st.backFlags[v]&flagReceiver != 0 && !heads[v] && !recvByDeg[v] {
			return congest.Val{A: 1}
		}
		return congest.Val{A: 0}
	})
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		switch {
		case joins[v].A == 1:
			res.Role[v] = RoleJoiner
		case heads[v] || recvByDeg[v]:
			res.Role[v] = RoleReceiver
		}
	}
	return nil
}

// rngBit draws one reproducible bit per (node, nonce) from the network's
// seed; distinct nonces give fresh coins for repeated joinings. The full
// splitmix64 finalizer keeps distinct leaders' bits decorrelated (a partial
// finalizer provably is not: low product bits depend only on low input
// bits).
func rngBit(net *congest.Network, v int, nonce int64) int64 {
	x := uint64(net.Seed())*0x9E3779B97F4A7C15 + uint64(net.ID(v))*0xBF58476D1CE4E5B9 + uint64(nonce)*0xD6E8FEB86659FD93
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x & 1)
}

// deterministicResidue is Algorithm 5 proper: receivers by in-degree, their
// pointers join; the residue (paths/cycles) is Cole-Vishkin 3-colored and
// color classes become receivers in turn.
func (st *joinState) deterministicResidue(net *congest.Network, in *part.Info, agg Agg, recvByDeg []bool,
	res *StarJoinResult, maxRounds int64) error {
	n := net.N()
	active := make([]bool, n) // part still in the residual super-graph

	// Round A: receivers-by-degree announce; pointers at them join.
	for v := 0; v < n; v++ {
		st.color[v] = 0
		st.flags[v] = 0
		if recvByDeg[v] {
			st.flags[v] = flagReceiver
		}
		st.sendFwd[v] = !recvByDeg[v]
	}
	if err := st.exchangeRound(net, maxRounds); err != nil {
		return err
	}
	joins, err := st.spreadFromEndpoint(agg, n, func(v int) bool { return st.chosenPort[v] >= 0 }, func(v int) congest.Val {
		if st.backFlags[v]&flagReceiver != 0 && !recvByDeg[v] {
			return congest.Val{A: 1}
		}
		return congest.Val{A: 0}
	})
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		switch {
		case recvByDeg[v]:
			res.Role[v] = RoleReceiver
		case joins[v].A == 1:
			res.Role[v] = RoleJoiner
		default:
			active[v] = true
		}
		st.color[v] = in.LeaderID[v] // initial CV colors: leader IDs
	}

	// Cole-Vishkin iterations until colors fit in {0..5}, then 6 -> 3.
	for iter := 0; iter < 8; iter++ {
		maxColor := int64(0)
		for v := 0; v < n; v++ {
			if active[v] && st.color[v] > maxColor {
				maxColor = st.color[v]
			}
		}
		if maxColor < 6 {
			break
		}
		if err := st.cvStep(net, agg, active, maxRounds); err != nil {
			return err
		}
	}
	for c := int64(5); c >= 3; c-- {
		if err := st.reduceColor(net, agg, active, c, maxRounds); err != nil {
			return err
		}
	}
	// Color classes 0,1,2 become receivers in turn; their pointers join.
	for c := int64(0); c <= 2; c++ {
		if err := st.colorPhase(net, agg, active, c, res, maxRounds); err != nil {
			return err
		}
	}
	return nil
}

// cvStep: one Cole-Vishkin color reduction across the residual super-graph.
// st.color is both input and output.
func (st *joinState) cvStep(net *congest.Network, agg Agg, active []bool, maxRounds int64) error {
	n := net.N()
	for v := 0; v < n; v++ {
		st.flags[v] = 0
		if active[v] {
			st.flags[v] = flagActive
		}
		st.sendFwd[v] = active[v]
	}
	if err := st.exchangeRound(net, maxRounds); err != nil {
		return err
	}
	// Endpoint now holds the successor's color (if the successor is still
	// active); compute the new color at the endpoint and spread it.
	newColors, err := st.spreadFromEndpoint(agg, n, func(v int) bool {
		return st.chosenPort[v] >= 0
	}, func(v int) congest.Val {
		succ := st.color[v] + 1 // pseudo-successor for dangling tails
		if st.backFlags[v]&flagActive != 0 {
			succ = st.backColor[v]
		}
		return congest.Val{A: cvCombine(st.color[v], succ)}
	})
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if active[v] && newColors[v].A >= 0 {
			st.color[v] = newColors[v].A
		}
	}
	return nil
}

// cvCombine is the Cole-Vishkin step: k = lowest bit where own and
// successor colors differ; new color = 2k + own bit at k.
func cvCombine(own, succ int64) int64 {
	diff := own ^ succ
	if diff == 0 {
		diff = 1 // colors equal can only happen for dangling pseudo-successors
	}
	k := int64(0)
	for diff&1 == 0 {
		diff >>= 1
		k++
	}
	return 2*k + ((own >> k) & 1)
}

// reduceColor removes color class c (c in {3,4,5}): parts colored c recolor
// to the smallest of {0,1,2} used by neither neighbor.
func (st *joinState) reduceColor(net *congest.Network, agg Agg, active []bool, c int64, maxRounds int64) error {
	n := net.N()
	for v := 0; v < n; v++ {
		st.flags[v] = 0
		if active[v] {
			st.flags[v] = flagActive
		}
		st.sendFwd[v] = active[v]
	}
	if err := st.exchangeRound(net, maxRounds); err != nil {
		return err
	}
	// Successor color sits at the endpoint; predecessor color sits at the
	// pointed node. Combine both through one aggregation (disjoint fields).
	for v := 0; v < n; v++ {
		val := congest.Val{A: -1 << 62, B: -1 << 62}
		if st.chosenPort[v] >= 0 && st.backFlags[v]&flagActive != 0 {
			val.A = st.backColor[v]
		}
		if st.havePred[v] {
			val.B = st.predColor[v]
		}
		st.valBuf[v] = val
	}
	got, err := agg.Aggregate(st.valBuf, congest.MaxPair)
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if !active[v] || st.color[v] != c {
			continue
		}
		succ, pred := got[v].A, got[v].B
		for cand := int64(0); cand <= 2; cand++ {
			if cand != succ && cand != pred {
				st.color[v] = cand
				break
			}
		}
	}
	return nil
}

// colorPhase makes color class c receivers and their active pointers
// joiners, removing both from the residue.
func (st *joinState) colorPhase(net *congest.Network, agg Agg, active []bool, c int64,
	res *StarJoinResult, maxRounds int64) error {
	n := net.N()
	for v := 0; v < n; v++ {
		st.flags[v] = 0
		if active[v] && st.color[v] == c {
			st.flags[v] = flagReceiver
		}
		st.sendFwd[v] = active[v] && st.color[v] != c
	}
	if err := st.exchangeRound(net, maxRounds); err != nil {
		return err
	}
	joins, err := st.spreadFromEndpoint(agg, n, func(v int) bool { return st.chosenPort[v] >= 0 }, func(v int) congest.Val {
		if active[v] && st.color[v] != c && st.backFlags[v]&flagReceiver != 0 {
			return congest.Val{A: 1}
		}
		return congest.Val{A: 0}
	})
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if !active[v] {
			continue
		}
		switch {
		case st.color[v] == c:
			res.Role[v] = RoleReceiver
			active[v] = false
		case joins[v].A == 1:
			res.Role[v] = RoleJoiner
			active[v] = false
		}
	}
	return nil
}

// OracleAgg is an engine-side instant aggregation service for unit tests of
// star joinings (it performs the partition-wide reduce without messaging).
// Production callers use PA (core.Engine's aggregator).
type OracleAgg struct {
	Dense []int
}

// Aggregate implements Agg.
func (o *OracleAgg) Aggregate(vals []congest.Val, f congest.Combine) ([]congest.Val, error) {
	if len(vals) != len(o.Dense) {
		return nil, fmt.Errorf("subpart: oracle agg size mismatch")
	}
	acc := make(map[int]congest.Val)
	for v, p := range o.Dense {
		if have, ok := acc[p]; ok {
			acc[p] = f(have, vals[v])
		} else {
			acc[p] = vals[v]
		}
	}
	out := make([]congest.Val, len(vals))
	for v, p := range o.Dense {
		out[v] = acc[p]
	}
	return out, nil
}
