package subpart

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/part"
)

// detdivision.go implements Algorithm 6: the deterministic sub-part
// division. Every node of an uncovered part starts as its own sub-part;
// O(log n) rounds of star joinings merge sub-parts (incomplete sub-parts
// prefer incomplete targets in their part, falling back to complete ones),
// joiners re-root their spanning trees at the attachment point and adopt
// the receiver's representative, and a sub-part freezes ("complete") once
// it reaches D nodes. Lemma 6.4: the result is a division with Õ(|P_i|/D)
// sub-parts whose trees keep O(D) diameter (the paper's 4D argument).
//
// Parts already covered by the radius-D BFS become single whole-part
// sub-parts, as in the randomized division.

// Deterministic-division message kinds.
const (
	kindAttach int32 = iota + 155
	kindAttachAck
	kindFlip
	kindSubInfo
	kindDepthDown
)

const negInf = -(int64(1) << 62)

// DeterministicDivision computes the Algorithm 6 division. d is the
// completeness threshold (the paper's D).
func DeterministicDivision(net *congest.Network, in *part.Info, pb *part.BFS, d int64, maxRounds int64) (*Division, error) {
	n := net.N()
	div := newDivision(net)
	g := net.Graph()

	// Covered parts: whole-part sub-parts from the part BFS tree.
	// Uncovered parts: singleton sub-parts.
	complete := make([]bool, n) // my sub-part is complete (frozen)
	for v := 0; v < n; v++ {
		if pb.Covered[v] {
			div.RepID[v] = in.LeaderID[v]
			div.IsRep[v] = in.IsLeader[v]
			div.ParentPort[v] = pb.ParentPort[v]
			div.ChildPorts[v] = append([]int(nil), pb.ChildPorts[v]...)
			div.WholePart[v] = true
			complete[v] = true
			continue
		}
		div.RepID[v] = net.ID(v)
		div.IsRep[v] = true
	}

	fa := &ForestAgg{Net: net, Div: div, Budget: maxRounds}
	maxIters := 2*log2ceil(n) + 8
	// Iteration-lifetime scratch, reused across the O(log n) merge rounds:
	// flat per-port neighbor knowledge (every entry is rewritten by each
	// exchange, since every node broadcasts), the candidate/choice arrays
	// (fully reinitialized below), and the constant all-ones sizing input.
	csr := g.CSR()
	nbrRep := make([]int64, len(csr.PortTo))
	nbrComplete := make([]bool, len(csr.PortTo))
	siSame := make([]bool, len(csr.PortTo))
	cand := make([]congest.Val, n)
	chosen := make([]int, n)
	newRep := make([]congest.Val, n)
	ones := make([]congest.Val, n)
	for v := range ones {
		ones[v] = congest.Val{A: 1}
	}
	for iter := 0; ; iter++ {
		if iter > maxIters {
			return nil, fmt.Errorf("subpart: Algorithm 6 did not converge in %d iterations", maxIters)
		}
		// Refresh neighbor knowledge: (rep ID, completeness) per port.
		if err := exchangeSubInfo(net, div, complete, nbrRep, nbrComplete, maxRounds); err != nil {
			return nil, err
		}
		// Candidate out-edges for incomplete sub-parts: same part, different
		// sub-part; prefer incomplete targets (class 0) over complete ones
		// (class 1). Each sub-part picks the minimum (class, ID, port).
		hasAny := false
		for v := 0; v < n; v++ {
			cand[v] = congest.Val{A: 1 << 62}
			if complete[v] || pb.Covered[v] {
				continue
			}
			same := in.SameRow(v)
			row := csr.RowStart[v]
			for q := range same {
				if !same[q] || nbrRep[row+int32(q)] == div.RepID[v] {
					continue
				}
				class := int64(0)
				if nbrComplete[row+int32(q)] {
					class = 1
				}
				val := congest.Val{A: class*(1<<50) + net.ID(v), B: int64(q)}
				cand[v] = congest.MinPair(cand[v], val)
				hasAny = true
			}
		}
		if !hasAny {
			break
		}
		mins, err := fa.Aggregate(cand, congest.MinPair)
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			chosen[v] = -1
			if mins[v].A != 1<<62 && mins[v].A%(1<<50) == net.ID(v) {
				chosen[v] = int(mins[v].B)
			}
		}

		// Star joining over the sub-parts.
		div.sameSubOrSelfInto(siSame, net, in)
		si := &part.Info{
			Row:      csr.RowStart,
			SamePart: siSame,
			LeaderID: div.RepID,
			IsLeader: div.IsRep,
			Dense:    denseFromReps(net, div),
		}
		sj, err := StarJoin(net, si, chosen, fa, true, int64(iter), maxRounds)
		if err != nil {
			return nil, err
		}

		// Joiner endpoints query the receiver's rep ID across the chosen
		// edge (no structural change yet).
		if err := attachRound(net, chosen, div, sj, newRep, maxRounds); err != nil {
			return nil, err
		}
		// Spread the adopted rep ID over the OLD joiner trees while they
		// are still intact.
		spread, err := fa.Aggregate(newRep, congest.MaxPair)
		if err != nil {
			return nil, err
		}
		// Re-root joiner trees at their endpoints and attach them as
		// children on the receiver side.
		if err := rerootJoiners(net, div, chosen, sj, maxRounds); err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			if sj.Role[v] == RoleJoiner && spread[v].A > negInf {
				div.RepID[v] = spread[v].A
				div.IsRep[v] = div.RepID[v] == net.ID(v)
			}
		}
		// Completeness: sub-part size >= d freezes it (joiners now count
		// within their receiver's tree).
		sizes, err := fa.Aggregate(ones, congest.SumPair)
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			if !pb.Covered[v] {
				complete[v] = sizes[v].A >= d
			}
		}
	}

	// Final passes: depths down the trees, and the SameSub port exchange.
	if err := computeDepths(net, div, maxRounds); err != nil {
		return nil, err
	}
	if err := exchangeReps(net, in, div, maxRounds); err != nil {
		return nil, err
	}
	return div, nil
}

// sameSubOrSelfInto derives per-port same-sub-part flags from current rep
// IDs into a caller-owned flat buffer (the part.Info.SamePart shape), for
// the star joining's partition view (engine-side convenience; the protocol
// equivalent is the exchange in exchangeSubInfo).
func (div *Division) sameSubOrSelfInto(out []bool, net *congest.Network, in *part.Info) {
	g := net.Graph()
	n := g.N()
	for v := 0; v < n; v++ {
		row := out[div.Row[v]:div.Row[v+1]]
		rep := div.RepID[v]
		same := in.SameRow(v)
		g.ForPorts(v, func(q, to, _ int) bool {
			row[q] = same[q] && div.RepID[to] == rep
			return true
		})
	}
}

// denseFromReps labels sub-parts densely (engine-side diagnostics).
func denseFromReps(net *congest.Network, div *Division) []int {
	n := net.N()
	dense := make(map[int64]int)
	out := make([]int, n)
	for v := 0; v < n; v++ {
		id, ok := dense[div.RepID[v]]
		if !ok {
			id = len(dense)
			dense[div.RepID[v]] = id
		}
		out[v] = id
	}
	return out
}

// exchangeSubInfo: one round announcing (rep ID, completeness) on all
// ports, into flat CSR-offset buffers (every node broadcasts, so every
// entry of both buffers is rewritten — callers may reuse them uncleaned).
func exchangeSubInfo(net *congest.Network, div *Division, complete []bool,
	nbrRep []int64, nbrComplete []bool, maxRounds int64) error {
	p := &subInfoProc{div: div, complete: complete, nbrRep: nbrRep, nbrComplete: nbrComplete}
	_, err := net.RunNodes("subpart/subinfo", p, maxRounds)
	return err
}

// subInfoProc broadcasts (rep ID, completeness) on all ports into the flat
// CSR-offset neighbor-knowledge buffers.
type subInfoProc struct {
	div         *Division
	complete    []bool
	nbrRep      []int64
	nbrComplete []bool
}

// Step implements congest.NodeProc.
func (p *subInfoProc) Step(ctx *congest.Ctx, v int) bool {
	div := p.div
	if ctx.Round() == 0 {
		flag := int64(0)
		if p.complete[v] {
			flag = 1
		}
		ctx.Broadcast(congest.Message{Kind: kindSubInfo, A: div.RepID[v], B: flag})
	}
	repRow := p.nbrRep[div.Row[v]:div.Row[v+1]]
	compRow := p.nbrComplete[div.Row[v]:div.Row[v+1]]
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		repRow[m.Port] = m.Msg.A
		compRow[m.Port] = m.Msg.B != 0
	})
	return false
}

// attachRound: joiner endpoints query the far side's rep ID over the
// chosen edge, filling newRep with the per-node adopted-rep values (negInf
// where not an endpoint). Purely informational — tree surgery happens in
// rerootJoiners.
func attachRound(net *congest.Network, chosen []int, div *Division, sj *StarJoinResult,
	newRep []congest.Val, maxRounds int64) error {
	for v := range newRep {
		newRep[v] = congest.Val{A: negInf}
	}
	p := &attachProc{div: div, sj: sj, chosen: chosen, newRep: newRep}
	_, err := net.RunNodes("subpart/attach", p, maxRounds)
	return err
}

// attachProc: joiner endpoints query the far side's rep ID over the chosen
// edge; answers land in the flat newRep array.
type attachProc struct {
	div    *Division
	sj     *StarJoinResult
	chosen []int
	newRep []congest.Val
}

// Step implements congest.NodeProc.
func (p *attachProc) Step(ctx *congest.Ctx, v int) bool {
	if ctx.Round() == 0 && p.sj.Role[v] == RoleJoiner && p.chosen[v] >= 0 {
		ctx.Send(p.chosen[v], congest.Message{Kind: kindAttach})
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		switch m.Msg.Kind {
		case kindAttach:
			ctx.Send(m.Port, congest.Message{Kind: kindAttachAck, A: p.div.RepID[v]})
		case kindAttachAck:
			p.newRep[v] = congest.Val{A: m.Msg.A}
		}
	})
	return false
}

// rerootJoiners re-roots each joiner sub-part's tree at its attachment
// endpoint (the endpoint takes the chosen edge as its parent, a FLIP wave
// inverts parent pointers along the path to the old representative) and
// registers the endpoint as a child on the receiver side (ATTACH).
func rerootJoiners(net *congest.Network, div *Division, chosen []int, sj *StarJoinResult, maxRounds int64) error {
	p := &rerootProc{div: div, sj: sj, chosen: chosen}
	_, err := net.RunNodes("subpart/reroot", p, maxRounds)
	return err
}

// rerootProc re-roots joiner trees at their chosen endpoints via FLIP waves
// and registers endpoints as children on the receiver side.
type rerootProc struct {
	div    *Division
	sj     *StarJoinResult
	chosen []int
}

// Step implements congest.NodeProc.
func (p *rerootProc) Step(ctx *congest.Ctx, v int) bool {
	div := p.div
	flip := func(newParent int) {
		old := div.ParentPort[v]
		div.ParentPort[v] = newParent
		if old >= 0 {
			ctx.Send(old, congest.Message{Kind: kindFlip})
			div.ChildPorts[v] = append(div.ChildPorts[v], old)
		}
		div.IsRep[v] = false
	}
	if ctx.Round() == 0 && p.sj.Role[v] == RoleJoiner && p.chosen[v] >= 0 {
		ctx.Send(p.chosen[v], congest.Message{Kind: kindAttach})
		flip(p.chosen[v])
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		switch m.Msg.Kind {
		case kindAttach:
			// A joiner endpoint hangs below me now.
			div.ChildPorts[v] = append(div.ChildPorts[v], m.Port)
		case kindFlip:
			// A FLIP from port q: the sender becomes my parent and
			// leaves my children.
			div.ChildPorts[v] = removePort(div.ChildPorts[v], m.Port)
			flip(m.Port)
		}
	})
	return false
}

// computeDepths broadcasts depths down the final sub-part trees.
func computeDepths(net *congest.Network, div *Division, maxRounds int64) error {
	_, err := net.RunNodes("subpart/depths", &depthsProc{div: div}, maxRounds)
	return err
}

// depthsProc floods depths down from each representative.
type depthsProc struct {
	div *Division
}

// Step implements congest.NodeProc.
func (p *depthsProc) Step(ctx *congest.Ctx, v int) bool {
	div := p.div
	down := func(depth int64) {
		div.Depth[v] = int(depth)
		for _, q := range div.ChildPorts[v] {
			ctx.Send(q, congest.Message{Kind: kindDepthDown, A: depth + 1})
		}
	}
	if ctx.Round() == 0 && div.IsRep[v] {
		down(0)
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		down(m.Msg.A)
	})
	return false
}

func removePort(ports []int, q int) []int {
	out := ports[:0]
	for _, p := range ports {
		if p != q {
			out = append(out, p)
		}
	}
	return out
}

func log2ceil(n int) int {
	k := 0
	for s := 1; s < n; s *= 2 {
		k++
	}
	return k
}
