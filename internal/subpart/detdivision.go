package subpart

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/part"
)

// detdivision.go implements Algorithm 6: the deterministic sub-part
// division. Every node of an uncovered part starts as its own sub-part;
// O(log n) rounds of star joinings merge sub-parts (incomplete sub-parts
// prefer incomplete targets in their part, falling back to complete ones),
// joiners re-root their spanning trees at the attachment point and adopt
// the receiver's representative, and a sub-part freezes ("complete") once
// it reaches D nodes. Lemma 6.4: the result is a division with Õ(|P_i|/D)
// sub-parts whose trees keep O(D) diameter (the paper's 4D argument).
//
// Parts already covered by the radius-D BFS become single whole-part
// sub-parts, as in the randomized division.

// Deterministic-division message kinds.
const (
	kindAttach int32 = iota + 155
	kindAttachAck
	kindFlip
	kindSubInfo
	kindDepthDown
)

const negInf = -(int64(1) << 62)

// DeterministicDivision computes the Algorithm 6 division. d is the
// completeness threshold (the paper's D).
func DeterministicDivision(net *congest.Network, in *part.Info, pb *part.BFS, d int64, maxRounds int64) (*Division, error) {
	n := net.N()
	div := newDivision(n)
	g := net.Graph()

	// Covered parts: whole-part sub-parts from the part BFS tree.
	// Uncovered parts: singleton sub-parts.
	complete := make([]bool, n) // my sub-part is complete (frozen)
	for v := 0; v < n; v++ {
		if pb.Covered[v] {
			div.RepID[v] = in.LeaderID[v]
			div.IsRep[v] = in.IsLeader[v]
			div.ParentPort[v] = pb.ParentPort[v]
			div.ChildPorts[v] = append([]int(nil), pb.ChildPorts[v]...)
			div.WholePart[v] = true
			complete[v] = true
			continue
		}
		div.RepID[v] = net.ID(v)
		div.IsRep[v] = true
	}

	fa := &ForestAgg{Net: net, Div: div, Budget: maxRounds}
	maxIters := 2*log2ceil(n) + 8
	for iter := 0; ; iter++ {
		if iter > maxIters {
			return nil, fmt.Errorf("subpart: Algorithm 6 did not converge in %d iterations", maxIters)
		}
		// Refresh neighbor knowledge: (rep ID, completeness) per port.
		nbrRep, nbrComplete, err := exchangeSubInfo(net, div, complete, maxRounds)
		if err != nil {
			return nil, err
		}
		// Candidate out-edges for incomplete sub-parts: same part, different
		// sub-part; prefer incomplete targets (class 0) over complete ones
		// (class 1). Each sub-part picks the minimum (class, ID, port).
		cand := make([]congest.Val, n)
		hasAny := false
		for v := 0; v < n; v++ {
			cand[v] = congest.Val{A: 1 << 62}
			if complete[v] || pb.Covered[v] {
				continue
			}
			for q := 0; q < g.Degree(v); q++ {
				if !in.SamePart[v][q] || nbrRep[v][q] == div.RepID[v] {
					continue
				}
				class := int64(0)
				if nbrComplete[v][q] {
					class = 1
				}
				val := congest.Val{A: class*(1<<50) + net.ID(v), B: int64(q)}
				cand[v] = congest.MinPair(cand[v], val)
				hasAny = true
			}
		}
		if !hasAny {
			break
		}
		mins, err := fa.Aggregate(cand, congest.MinPair)
		if err != nil {
			return nil, err
		}
		chosen := make([]int, n)
		for v := 0; v < n; v++ {
			chosen[v] = -1
			if mins[v].A != 1<<62 && mins[v].A%(1<<50) == net.ID(v) {
				chosen[v] = int(mins[v].B)
			}
		}

		// Star joining over the sub-parts.
		si := &part.Info{
			SamePart: div.SameSubOrSelf(net, in),
			LeaderID: div.RepID,
			IsLeader: div.IsRep,
			Dense:    denseFromReps(net, div),
		}
		sj, err := StarJoin(net, si, chosen, fa, true, int64(iter), maxRounds)
		if err != nil {
			return nil, err
		}

		// Joiner endpoints query the receiver's rep ID across the chosen
		// edge (no structural change yet).
		newRep, err := attachRound(net, chosen, div, sj, maxRounds)
		if err != nil {
			return nil, err
		}
		// Spread the adopted rep ID over the OLD joiner trees while they
		// are still intact.
		spread, err := fa.Aggregate(newRep, congest.MaxPair)
		if err != nil {
			return nil, err
		}
		// Re-root joiner trees at their endpoints and attach them as
		// children on the receiver side.
		if err := rerootJoiners(net, div, chosen, sj, maxRounds); err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			if sj.Role[v] == RoleJoiner && spread[v].A > negInf {
				div.RepID[v] = spread[v].A
				div.IsRep[v] = div.RepID[v] == net.ID(v)
			}
		}
		// Completeness: sub-part size >= d freezes it (joiners now count
		// within their receiver's tree).
		ones := make([]congest.Val, n)
		for v := range ones {
			ones[v] = congest.Val{A: 1}
		}
		sizes, err := fa.Aggregate(ones, congest.SumPair)
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			if !pb.Covered[v] {
				complete[v] = sizes[v].A >= d
			}
		}
	}

	// Final passes: depths down the trees, and the SameSub port exchange.
	if err := computeDepths(net, div, maxRounds); err != nil {
		return nil, err
	}
	if err := exchangeReps(net, in, div, maxRounds); err != nil {
		return nil, err
	}
	return div, nil
}

// SameSubOrSelf derives per-port same-sub-part flags from current rep IDs
// for the star joining's partition view (engine-side convenience; the
// protocol equivalent is the exchange in exchangeSubInfo).
func (div *Division) SameSubOrSelf(net *congest.Network, in *part.Info) [][]bool {
	g := net.Graph()
	n := g.N()
	out := make([][]bool, n)
	for v := 0; v < n; v++ {
		out[v] = make([]bool, g.Degree(v))
		row := out[v]
		rep := div.RepID[v]
		same := in.SamePart[v]
		g.ForPorts(v, func(q, to, _ int) bool {
			row[q] = same[q] && div.RepID[to] == rep
			return true
		})
	}
	return out
}

// denseFromReps labels sub-parts densely (engine-side diagnostics).
func denseFromReps(net *congest.Network, div *Division) []int {
	n := net.N()
	dense := make(map[int64]int)
	out := make([]int, n)
	for v := 0; v < n; v++ {
		id, ok := dense[div.RepID[v]]
		if !ok {
			id = len(dense)
			dense[div.RepID[v]] = id
		}
		out[v] = id
	}
	return out
}

// exchangeSubInfo: one round announcing (rep ID, completeness) on all ports.
func exchangeSubInfo(net *congest.Network, div *Division, complete []bool, maxRounds int64) ([][]int64, [][]bool, error) {
	n := net.N()
	g := net.Graph()
	nbrRep := make([][]int64, n)
	nbrComplete := make([][]bool, n)
	procs := make([]congest.Proc, n)
	for v := 0; v < n; v++ {
		v := v
		nbrRep[v] = make([]int64, g.Degree(v))
		nbrComplete[v] = make([]bool, g.Degree(v))
		procs[v] = congest.ProcFunc(func(ctx *congest.Ctx) bool {
			if ctx.Round() == 0 {
				flag := int64(0)
				if complete[v] {
					flag = 1
				}
				ctx.Broadcast(congest.Message{Kind: kindSubInfo, A: div.RepID[v], B: flag})
			}
			for _, m := range ctx.Recv() {
				nbrRep[v][m.Port] = m.Msg.A
				nbrComplete[v][m.Port] = m.Msg.B != 0
			}
			return false
		})
	}
	if _, err := net.Run("subpart/subinfo", procs, maxRounds); err != nil {
		return nil, nil, err
	}
	return nbrRep, nbrComplete, nil
}

// attachRound: joiner endpoints query the far side's rep ID over the
// chosen edge. Returns the per-node adopted-rep values (negInf where not an
// endpoint). Purely informational — tree surgery happens in rerootJoiners.
func attachRound(net *congest.Network, chosen []int, div *Division, sj *StarJoinResult, maxRounds int64) ([]congest.Val, error) {
	n := net.N()
	newRep := make([]congest.Val, n)
	for v := range newRep {
		newRep[v] = congest.Val{A: negInf}
	}
	procs := make([]congest.Proc, n)
	for v := 0; v < n; v++ {
		v := v
		procs[v] = congest.ProcFunc(func(ctx *congest.Ctx) bool {
			if ctx.Round() == 0 && sj.Role[v] == RoleJoiner && chosen[v] >= 0 {
				ctx.Send(chosen[v], congest.Message{Kind: kindAttach})
			}
			for _, m := range ctx.Recv() {
				switch m.Msg.Kind {
				case kindAttach:
					ctx.Send(m.Port, congest.Message{Kind: kindAttachAck, A: div.RepID[v]})
				case kindAttachAck:
					newRep[v] = congest.Val{A: m.Msg.A}
				}
			}
			return false
		})
	}
	if _, err := net.Run("subpart/attach", procs, maxRounds); err != nil {
		return nil, err
	}
	return newRep, nil
}

// rerootJoiners re-roots each joiner sub-part's tree at its attachment
// endpoint (the endpoint takes the chosen edge as its parent, a FLIP wave
// inverts parent pointers along the path to the old representative) and
// registers the endpoint as a child on the receiver side (ATTACH).
func rerootJoiners(net *congest.Network, div *Division, chosen []int, sj *StarJoinResult, maxRounds int64) error {
	n := net.N()
	procs := make([]congest.Proc, n)
	for v := 0; v < n; v++ {
		v := v
		procs[v] = congest.ProcFunc(func(ctx *congest.Ctx) bool {
			flip := func(newParent int) {
				old := div.ParentPort[v]
				div.ParentPort[v] = newParent
				if old >= 0 {
					ctx.Send(old, congest.Message{Kind: kindFlip})
					div.ChildPorts[v] = append(div.ChildPorts[v], old)
				}
				div.IsRep[v] = false
			}
			if ctx.Round() == 0 && sj.Role[v] == RoleJoiner && chosen[v] >= 0 {
				ctx.Send(chosen[v], congest.Message{Kind: kindAttach})
				flip(chosen[v])
			}
			for _, m := range ctx.Recv() {
				switch m.Msg.Kind {
				case kindAttach:
					// A joiner endpoint hangs below me now.
					div.ChildPorts[v] = append(div.ChildPorts[v], m.Port)
				case kindFlip:
					// A FLIP from port q: the sender becomes my parent and
					// leaves my children.
					div.ChildPorts[v] = removePort(div.ChildPorts[v], m.Port)
					flip(m.Port)
				}
			}
			return false
		})
	}
	_, err := net.Run("subpart/reroot", procs, maxRounds)
	return err
}

// computeDepths broadcasts depths down the final sub-part trees.
func computeDepths(net *congest.Network, div *Division, maxRounds int64) error {
	n := net.N()
	procs := make([]congest.Proc, n)
	for v := 0; v < n; v++ {
		v := v
		procs[v] = congest.ProcFunc(func(ctx *congest.Ctx) bool {
			down := func(depth int64) {
				div.Depth[v] = int(depth)
				for _, q := range div.ChildPorts[v] {
					ctx.Send(q, congest.Message{Kind: kindDepthDown, A: depth + 1})
				}
			}
			if ctx.Round() == 0 && div.IsRep[v] {
				down(0)
			}
			for _, m := range ctx.Recv() {
				down(m.Msg.A)
			}
			return false
		})
	}
	_, err := net.Run("subpart/depths", procs, maxRounds)
	return err
}

func removePort(ports []int, q int) []int {
	out := ports[:0]
	for _, p := range ports {
		if p != q {
			out = append(out, p)
		}
	}
	return out
}

func log2ceil(n int) int {
	k := 0
	for s := 1; s < n; s *= 2 {
		k++
	}
	return k
}
