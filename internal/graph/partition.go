package graph

import (
	"fmt"
	"math/rand"
)

// Partition utilities: the PA problem's input is a partition of V into
// connected parts. parts[v] is node v's part ID; IDs need not be dense.

// ValidatePartition checks that every part of parts induces a connected
// subgraph of g, as Definition 1.1 requires.
func ValidatePartition(g *Graph, parts []int) error {
	if len(parts) != g.N() {
		return fmt.Errorf("graph: partition has %d entries for %d nodes", len(parts), g.N())
	}
	dsu := NewDSU(g.N())
	g.ForEdges(func(_ int, e Edge) bool {
		if parts[e.U] == parts[e.V] {
			dsu.Union(e.U, e.V)
		}
		return true
	})
	root := make(map[int]int)
	for v, p := range parts {
		r := dsu.Find(v)
		if prev, ok := root[p]; ok && prev != r {
			return fmt.Errorf("graph: part %d is disconnected", p)
		} else if !ok {
			root[p] = r
		}
	}
	return nil
}

// PartSizes returns the size of each part keyed by part ID.
func PartSizes(parts []int) map[int]int {
	sizes := make(map[int]int)
	for _, p := range parts {
		sizes[p]++
	}
	return sizes
}

// NormalizeParts relabels part IDs densely to [0, #parts) preserving order
// of first appearance, and returns the number of parts.
func NormalizeParts(parts []int) ([]int, int) {
	dense := make(map[int]int)
	out := make([]int, len(parts))
	for v, p := range parts {
		id, ok := dense[p]
		if !ok {
			id = len(dense)
			dense[p] = id
		}
		out[v] = id
	}
	return out, len(dense)
}

// SingletonPartition puts every node in its own part.
func SingletonPartition(n int) []int {
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i
	}
	return parts
}

// WholePartition puts every node in one part (valid iff g is connected).
func WholePartition(n int) []int {
	return make([]int, n)
}

// RandomConnectedPartition grows approximately k connected parts by seeding
// k nodes and running a randomized multi-source BFS. Every part is connected
// by construction. Requires a connected g and 1 <= k <= n.
func RandomConnectedPartition(g *Graph, k int, rng *rand.Rand) []int {
	n := g.N()
	if k < 1 || k > n {
		panic(fmt.Sprintf("graph: RandomConnectedPartition needs 1 <= k <= n, got k=%d n=%d", k, n))
	}
	parts := make([]int, n)
	for i := range parts {
		parts[i] = -1
	}
	frontier := make([]int, 0, n)
	for _, s := range rng.Perm(n)[:k] {
		if parts[s] == -1 {
			parts[s] = len(frontier) // temp: reuse as id source
		}
	}
	// Re-walk to assign dense seed ids deterministically.
	id := 0
	for v := 0; v < n; v++ {
		if parts[v] >= 0 {
			parts[v] = id
			id++
			frontier = append(frontier, v)
		}
	}
	for len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		v := frontier[i]
		grew := false
		for _, p := range rng.Perm(g.Degree(v)) {
			u := g.Neighbor(v, p)
			if parts[u] == -1 {
				parts[u] = parts[v]
				frontier = append(frontier, u)
				grew = true
				break
			}
		}
		if !grew {
			frontier[i] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		}
	}
	return parts
}

// StripePartition partitions a rows x cols grid-indexed node set into one
// part per row (the Figure 2 partition shape for plain grids).
func StripePartition(rows, cols int) []int {
	parts := make([]int, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			parts[r*cols+c] = r
		}
	}
	return parts
}

// InterleavedPathParts partitions a path graph on n nodes into k parts where
// part i owns a contiguous run; with runs of length 1 and k parts this
// degenerates to high-diameter "comb" parts on grids. Here: contiguous
// blocks of ceil(n/k).
func InterleavedPathParts(n, k int) []int {
	parts := make([]int, n)
	block := (n + k - 1) / k
	for v := 0; v < n; v++ {
		parts[v] = v / block
	}
	return parts
}
