package graph

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"
)

func TestLoadEdgeListSNAPFixture(t *testing.T) {
	f, err := os.Open("testdata/snap_tiny.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, ids, err := LoadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	// External IDs 5,10,20,30,40,50 remap to 0..5 in ascending order.
	wantIDs := []int64{5, 10, 20, 30, 40, 50}
	if fmt.Sprint(ids) != fmt.Sprint(wantIDs) {
		t.Fatalf("ids = %v, want %v", ids, wantIDs)
	}
	if g.N() != 6 {
		t.Fatalf("n = %d, want 6", g.N())
	}
	// 7 distinct undirected pairs survive the both-direction duplicates,
	// the repeated 5-10 line, and the 40-40 self-loop.
	if g.M() != 7 {
		t.Fatalf("m = %d, want 7", g.M())
	}
	// Node 10 (dense index 1) is the hub: neighbors 5, 20, 30, 40, 50.
	if d := g.Degree(1); d != 5 {
		t.Fatalf("hub degree = %d, want 5", d)
	}
	for _, e := range g.Edges() {
		if e.W != 1 {
			t.Fatalf("SNAP edge (%d,%d) has weight %d, want default 1", e.U, e.V, e.W)
		}
	}
}

func TestLoadEdgeListDIMACSFixture(t *testing.T) {
	f, err := os.Open("testdata/dimacs_tiny.gr")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, ids, err := LoadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 6 {
		t.Fatalf("got n=%d m=%d, want 5/6", g.N(), g.M())
	}
	if ids[0] != 1 || ids[4] != 5 {
		t.Fatalf("ids = %v, want 1..5", ids)
	}
	// Weights survive: total = 3+1+4+1+5+9.
	if w := g.TotalWeight(); w != 23 {
		t.Fatalf("total weight = %d, want 23", w)
	}
}

// TestLoadEdgeListRoundTrip serializes a generated graph the way pagen
// -edges prints it (u v w per line, already-dense IDs) and reloads it: the
// loaded graph must match node for node and edge for edge.
func TestLoadEdgeListRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"gridstar", GridStar(4, 9)},
		{"powerlaw", RandomizeWeights(PowerLaw(150, 4, 2.5, rand.New(rand.NewSource(3))), 50, rand.New(rand.NewSource(4)))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			sb.WriteString("# round-trip\n")
			tc.g.ForEdges(func(_ int, e Edge) bool {
				fmt.Fprintf(&sb, "%d %d %d\n", e.U, e.V, e.W)
				return true
			})
			got, ids, err := LoadEdgeList(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatal(err)
			}
			if got.N() != tc.g.N() || got.M() != tc.g.M() {
				t.Fatalf("round-trip n=%d m=%d, want n=%d m=%d", got.N(), got.M(), tc.g.N(), tc.g.M())
			}
			for v, id := range ids {
				if int64(v) != id {
					t.Fatalf("dense input remapped: ids[%d] = %d", v, id)
				}
			}
			want := sortedEdgeSet(tc.g)
			if have := sortedEdgeSet(got); have != want {
				t.Fatalf("edge sets differ after round-trip")
			}
		})
	}
}

func sortedEdgeSet(g *Graph) string {
	lines := make([]string, 0, g.M())
	g.ForEdges(func(_ int, e Edge) bool {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		lines = append(lines, fmt.Sprintf("%d-%d:%d", u, v, e.W))
		return true
	})
	sort.Strings(lines)
	return strings.Join(lines, ";")
}

func TestLoadEdgeListErrors(t *testing.T) {
	for _, tc := range []struct {
		name, in string
	}{
		{"malformed", "1 2\nnonsense line here extra\n"},
		{"one-field", "1\n"},
		{"bad-weight", "1 2 0\n"},
		{"negative-id", "-1 2\n"},
		{"negative-second-id", "1 -2\n"},
		{"float-weight", "1 2 0.5\n"},
		{"hex-id", "0x10 2\n"},
		{"id-overflows-int64", "99999999999999999999999 2\n"},
		{"second-id-overflows-int64", "1 99999999999999999999999\n"},
		{"weight-overflows-int64", "1 2 99999999999999999999999\n"},
		{"negative-weight", "1 2 -7\n"},
		{"four-fields", "1 2 3 4\n"},
		{"dimacs-bad-edge", "c header\ne 1 x\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := LoadEdgeList(strings.NewReader(tc.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
	// Empty input is a valid empty graph, not an error.
	g, ids, err := LoadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil || g.N() != 0 || len(ids) != 0 {
		t.Errorf("empty input: g.N()=%d ids=%v err=%v", g.N(), ids, err)
	}
}

// TestLoadEdgeListErrorLineNumbers pins that parse errors name the offending
// 1-based input line — comments and blanks still count, because that is the
// number an editor shows.
func TestLoadEdgeListErrorLineNumbers(t *testing.T) {
	in := "# header\n\n1 2\n1 2 bogus\n"
	_, _, err := LoadEdgeList(strings.NewReader(in))
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %q does not name line 4", err)
	}
	if !strings.Contains(err.Error(), `"bogus"`) {
		t.Fatalf("error %q does not quote the bad field", err)
	}
}

// TestLoadEdgeListSparseLargeIDs feeds external IDs well above int32 range:
// they must parse (IDs are int64), remap densely in ascending order, and keep
// their weights — the internal node index never sees the external magnitude.
func TestLoadEdgeListSparseLargeIDs(t *testing.T) {
	const big = int64(1) << 40 // ~1.1e12, far beyond int32
	in := fmt.Sprintf("%d %d 3\n%d %d 5\n7 %d 2\n", big, big+2, big+2, big+9, big)
	g, ids, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []int64{7, big, big + 2, big + 9}
	if fmt.Sprint(ids) != fmt.Sprint(wantIDs) {
		t.Fatalf("ids = %v, want %v", ids, wantIDs)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 4/3", g.N(), g.M())
	}
	if w := g.TotalWeight(); w != 10 {
		t.Fatalf("total weight = %d, want 10", w)
	}
	// Max representable ID round-trips.
	maxIn := fmt.Sprintf("0 %d\n", int64(math.MaxInt64))
	_, ids, err = LoadEdgeList(strings.NewReader(maxIn))
	if err != nil {
		t.Fatal(err)
	}
	if ids[1] != math.MaxInt64 {
		t.Fatalf("ids = %v, want max int64 preserved", ids)
	}
}
