package graph

import (
	"errors"
	"fmt"
)

// Builder constructs a Graph from a stream of edges in O(n + m) with no
// hash maps and no retained intermediates beyond the edge list itself.
// Degrees are counted as edges arrive, per-edge validation (range,
// self-loop, weight) happens inline in AddEdge, and duplicate detection is
// a sort-free per-row scan of the freshly filled CSR in Finish — the mark
// array replaces the old map[[2]int]struct{} whose ~m hash inserts
// dominated construction at n = 10^6.
//
// Finish takes ownership of the streamed edges: unlike New, which must
// defensively copy a caller-owned slice, a Builder's edge storage is
// private from the start, so the finished Graph adopts it directly. A
// Builder is single-use; Finish invalidates it.
type Builder struct {
	n     int
	edges []Edge
	deg   []int32
	err   error // first inline (range / self-loop / weight) error; stops intake
	done  bool
}

// NewBuilder returns a Builder for a graph on n nodes. mHint sizes the edge
// storage; generators that know their exact edge count pass it to make
// construction a single allocation per array, but the hint is only a hint —
// AddEdge grows past it as needed.
func NewBuilder(n, mHint int) *Builder {
	b := &Builder{n: n}
	if n < 0 {
		b.err = errors.New("graph: negative node count")
		return b
	}
	if err := checkCSRIndexRange(int64(n), 0); err != nil {
		// Refuse before allocating the n-sized degree array: an over-limit
		// node count must fail cleanly, not attempt a multi-GB build.
		b.err = err
		return b
	}
	if mHint < 0 {
		mHint = 0
	}
	b.edges = make([]Edge, 0, mHint)
	b.deg = make([]int32, n)
	return b
}

// AddEdge streams one undirected edge into the builder, validating range,
// self-loops, and weight positivity inline. After the first invalid edge
// the builder stops accepting (Finish reports the error); duplicate edges
// are accepted here and rejected by Finish's per-row check.
func (b *Builder) AddEdge(u, v int, w Weight) {
	if b.err != nil {
		return
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.err = fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
		return
	}
	if u == v {
		b.err = fmt.Errorf("graph: self-loop at %d", u)
		return
	}
	if w <= 0 {
		b.err = fmt.Errorf("graph: edge (%d,%d) has non-positive weight %d", u, v, w)
		return
	}
	b.edges = append(b.edges, Edge{U: u, V: v, W: w})
	b.deg[u]++
	b.deg[v]++
}

// Finish validates duplicates, builds the CSR adjacency, and returns the
// graph, taking ownership of the streamed edge list (no copy). The builder
// must not be used afterwards.
//
// Error precedence matches New exactly: the reported error is the one at
// the smallest offending edge index, where an index offends by being out of
// range / a self-loop / non-positive (caught inline, which also stops
// intake) or by being the second occurrence of an edge (caught here). Any
// duplicate among the accepted prefix necessarily precedes the inline
// error's index, so duplicates win when both exist.
func (b *Builder) Finish() (*Graph, error) {
	if b.done {
		return nil, errors.New("graph: Finish called twice on one Builder")
	}
	b.done = true
	if b.n < 0 {
		return nil, b.err
	}
	if err := checkCSRIndexRange(int64(b.n), int64(len(b.edges))); err != nil {
		return nil, err
	}
	g := &Graph{n: b.n, edges: b.edges}
	g.csr = buildCSR(b.n, g.edges, b.deg)
	if dup := findDuplicate(b.n, g.csr); dup >= 0 {
		e := g.edges[dup]
		return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", e.U, e.V)
	}
	if b.err != nil {
		return nil, b.err
	}
	return g, nil
}

// MustFinish is Finish but panics on error — the generator-side counterpart
// of MustNew, for edge streams correct by construction.
func (b *Builder) MustFinish() *Graph {
	g, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return g
}

// findDuplicate returns the smallest edge index that is a second occurrence
// of an undirected edge, or -1. It is the builder's sort-free duplicate
// check: within a CSR row, ports appear in edge-input order, so scanning
// each row with an epoch-stamped mark array (mark[u] == v+1 iff u was
// already seen in v's row) flags exactly the later edge of every duplicate
// pair, in O(n + 2m) total and one flat allocation — no map, no sort, and
// no initialization pass either: stamps are v+1 >= 1, so the zero value a
// fresh array carries already means "unseen". Each pair is flagged in both
// endpoint rows with the same edge index, so the minimum over flags is the
// first duplicate in input order, matching the edge the old map-based New
// reported.
func findDuplicate(n int, c CSR) int {
	dup := -1
	mark := make([]int32, n)
	for v := 0; v < n; v++ {
		for h := c.RowStart[v]; h < c.RowStart[v+1]; h++ {
			u := c.PortTo[h]
			if mark[u] == int32(v)+1 {
				if e := int(c.PortEdge[h]); dup < 0 || e < dup {
					dup = e
				}
				continue
			}
			mark[u] = int32(v) + 1
		}
	}
	return dup
}
