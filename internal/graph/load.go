package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// load.go brings real-world inputs into the pipeline: SNAP- and
// DIMACS-style edge lists, normalized into the same Builder stream the
// synthetic generators use, so skew claims (and every protocol) extend
// beyond generated families.

// LoadEdgeList parses an undirected edge list in the two formats real
// benchmark graphs ship in and returns the graph plus the original node
// IDs (ids[v] is the external ID the input used for dense node v).
//
// Accepted lines:
//
//	# ...  or  % ...      comment (SNAP / Matrix Market headers)
//	c ...                 comment (DIMACS)
//	p <name> <n> <m>      DIMACS problem line (sizes are advisory; ignored)
//	e <u> <v> [w]         DIMACS edge
//	<u> <v> [w]           SNAP edge (whitespace-separated integers)
//
// Real files are messy, so normalization is part of the contract rather
// than an error: node IDs may be arbitrary non-negative 64-bit integers
// (remapped to dense [0, n) in ascending ID order — deterministic for a
// given input, independent of edge order), self-loops are dropped, and
// duplicate unordered pairs — including the "both directions listed" form
// every directed SNAP export has — collapse to the first occurrence, whose
// weight wins. An absent weight field is weight 1; a present one must be
// a positive integer.
//
// The collected pairs are sorted and deduplicated (O(m log m)), then
// streamed through Builder like every generator, so the result passes the
// same validation and gets the same CSR layout.
func LoadEdgeList(r io.Reader) (*Graph, []int64, error) {
	type rawEdge struct {
		u, v int64 // canonicalized u < v
		w    Weight
		pos  int // input order; first occurrence of a pair wins
	}
	var raw []rawEdge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "c", "p":
			continue
		case "e", "a":
			fields = fields[1:]
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, nil, fmt.Errorf("graph: edge list line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: edge list line %d: bad node %q", lineNo, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: edge list line %d: bad node %q", lineNo, fields[1])
		}
		if u < 0 || v < 0 {
			return nil, nil, fmt.Errorf("graph: edge list line %d: negative node ID", lineNo)
		}
		w := defaultWeight
		if len(fields) == 3 {
			wv, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || wv <= 0 {
				return nil, nil, fmt.Errorf("graph: edge list line %d: bad weight %q", lineNo, fields[2])
			}
			w = Weight(wv)
		}
		if u == v {
			continue // self-loops carry no CONGEST meaning; drop
		}
		if u > v {
			u, v = v, u
		}
		raw = append(raw, rawEdge{u: u, v: v, w: w, pos: len(raw)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: edge list: %w", err)
	}

	// Dense ID index: every endpoint, sorted ascending, deduplicated.
	ids := make([]int64, 0, 2*len(raw))
	for _, e := range raw {
		ids = append(ids, e.u, e.v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ids = compactInt64(ids)
	rank := func(id int64) int {
		return sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	}

	// Sort pairs (input position breaking ties) so duplicates are adjacent
	// and the survivor is the earliest occurrence.
	sort.Slice(raw, func(i, j int) bool {
		a, b := raw[i], raw[j]
		if a.u != b.u {
			return a.u < b.u
		}
		if a.v != b.v {
			return a.v < b.v
		}
		return a.pos < b.pos
	})
	b := NewBuilder(len(ids), len(raw))
	for i, e := range raw {
		if i > 0 && e.u == raw[i-1].u && e.v == raw[i-1].v {
			continue
		}
		b.AddEdge(rank(e.u), rank(e.v), e.w)
	}
	g, err := b.Finish()
	if err != nil {
		return nil, nil, err
	}
	return g, ids, nil
}

// compactInt64 removes adjacent duplicates from a sorted slice in place.
func compactInt64(s []int64) []int64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
