package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// powerlaw.go holds the skewed-degree generators: the families whose hub
// nodes defeat uniform node-count sharding and that the shortcut
// framework's target instances (social and web graphs) actually look
// like. Both stream through Builder like every other generator, are
// deterministic per rng stream, and produce connected simple graphs.

// PowerLaw returns a connected Chung–Lu random graph on n nodes whose
// expected degree sequence follows a power law with exponent alpha > 2:
// node v has expected degree proportional to (v+1)^(-1/(alpha-1)), scaled
// so the average degree is avgDeg (before the connectivity tree). Node 0
// is the heaviest hub, and degrees fall off by index — the adversarial
// layout for contiguous node-range sharding, since the lowest-index shard
// owns every hub.
//
// Sampling is the Miller–Hagberg sorted-weight algorithm: for each u the
// candidate partners v > u are visited by geometric skipping at the
// current probability ceiling, so generation costs O(n + m) rather than
// the O(n^2) of naive pair flipping. Connectivity comes from unioning a
// uniform random attachment tree (node i attaches to a uniform node in
// [0, i), as in RandomConnected); Chung–Lu draws that re-propose a tree
// edge are skipped by the same flat parent-array check, so the stream
// never carries a duplicate.
func PowerLaw(n int, avgDeg, alpha float64, rng *rand.Rand) *Graph {
	if alpha <= 2 {
		panic(fmt.Sprintf("graph: PowerLaw needs alpha > 2, got %g", alpha))
	}
	if avgDeg <= 0 {
		panic(fmt.Sprintf("graph: PowerLaw needs avgDeg > 0, got %g", avgDeg))
	}
	w := make([]float64, n)
	var sum float64
	for v := 0; v < n; v++ {
		w[v] = math.Pow(float64(v+1), -1/(alpha-1))
		sum += w[v]
	}
	total := avgDeg * float64(n) // sum of scaled weights
	for v := 0; v < n; v++ {
		w[v] *= total / sum
	}
	b := NewBuilder(n, n-1+int(total/2))
	treeParent := make([]int32, n)
	for i := range treeParent {
		treeParent[i] = -1
	}
	for i := 1; i < n; i++ {
		u := rng.Intn(i)
		treeParent[i] = int32(u)
		b.AddEdge(u, i, defaultWeight)
	}
	for u := 0; u+1 < n; u++ {
		v := u + 1
		p := math.Min(w[u]*w[v]/total, 1)
		for v < n && p > 0 {
			if p < 1 {
				// Geometric skip: jump straight to the next candidate that
				// would flip at probability p. The float comparison guards
				// the rng.Float64() == 0 draw (log 0 = -Inf) without an
				// overflow-prone int conversion.
				skip := math.Log(rng.Float64()) / math.Log(1-p)
				if skip >= float64(n-v) {
					break
				}
				v += int(skip)
			}
			q := math.Min(w[u]*w[v]/total, 1)
			if rng.Float64()*p < q && treeParent[v] != int32(u) {
				b.AddEdge(u, v, defaultWeight)
			}
			p = q
			v++
		}
	}
	return b.MustFinish()
}

// PrefAttach returns a Barabási–Albert preferential-attachment graph:
// a clique on the first m+1 nodes, then each node v in [m+1, n) attaches
// to m distinct earlier nodes sampled with probability proportional to
// their current degree. Degrees follow a power law with exponent ~3 and
// the heaviest hubs sit at the lowest indices, like PowerLaw. The exact
// edge count is m(m+1)/2 + (n-m-1)m.
//
// Degree-proportional sampling is the standard repeated-endpoint trick:
// every accepted edge appends both endpoints to a target list, so a
// uniform draw from the list is a degree-weighted draw over nodes.
// Duplicate picks within one node's batch re-draw, deduplicated by an
// epoch-stamped mark array (stamps are node indices >= m+1 >= 2, so the
// zero value means "unpicked" with no clearing pass).
func PrefAttach(n, m int, rng *rand.Rand) *Graph {
	if m < 1 {
		panic(fmt.Sprintf("graph: PrefAttach needs m >= 1, got %d", m))
	}
	if n < m+1 {
		panic(fmt.Sprintf("graph: PrefAttach needs n >= m+1, got n=%d m=%d", n, m))
	}
	edges := m*(m+1)/2 + (n-m-1)*m
	b := NewBuilder(n, edges)
	targets := make([]int32, 0, 2*edges)
	for u := 1; u <= m; u++ {
		for v := 0; v < u; v++ {
			b.AddEdge(v, u, defaultWeight)
			targets = append(targets, int32(v), int32(u))
		}
	}
	chosen := make([]int32, m)
	mark := make([]int32, n)
	for v := m + 1; v < n; v++ {
		for i := 0; i < m; {
			u := targets[rng.Intn(len(targets))]
			if mark[u] == int32(v) {
				continue // already picked for this v; re-draw
			}
			mark[u] = int32(v)
			chosen[i] = u
			i++
		}
		// Append v's endpoints only after the batch: v never self-attaches,
		// and all m picks see the same pre-v degree distribution.
		for _, u := range chosen {
			b.AddEdge(int(u), v, defaultWeight)
			targets = append(targets, u, int32(v))
		}
	}
	return b.MustFinish()
}
