package graph

// DeepPartition partitions a connected graph into connected parts of at
// least segLen nodes (except possibly the root's remainder) by bottom-up
// clustering of a DFS spanning tree: every node accumulates its children's
// unsealed clusters and seals a part once the accumulation reaches segLen.
// Sealed clusters are connected through their sealing node. On path-like
// graphs the parts are tour segments of diameter ~segLen regardless of the
// graph diameter — the "deep parts" regime the shortcut machinery is built
// for (engine-side instance construction for tests and benchmarks).
func DeepPartition(g *Graph, segLen int) []int {
	n := g.N()
	if segLen < 1 {
		segLen = 1
	}
	children := make([][]int, n)
	order := make([]int, 0, n) // DFS preorder; reversed it is a valid post-order
	visited := make([]bool, n)
	visited[0] = true
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for _, u := range g.SortedNeighbors(v) {
			if !visited[u] {
				visited[u] = true
				children[v] = append(children[v], u)
				stack = append(stack, u)
			}
		}
	}
	parts := make([]int, n)
	for i := range parts {
		parts[i] = -1
	}
	pending := make([][]int, n) // unsealed cluster rooted at v (post-order)
	next := 0
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		cluster := []int{v}
		for _, c := range children[v] {
			cluster = append(cluster, pending[c]...)
			pending[c] = nil
		}
		if len(cluster) >= segLen || v == order[0] {
			for _, u := range cluster {
				parts[u] = next
			}
			next++
			continue
		}
		pending[v] = cluster
	}
	return parts
}
