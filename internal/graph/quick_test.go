package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests on the graph substrate's invariants.

func TestQuickDSUPartitionsAreEquivalenceClasses(t *testing.T) {
	prop := func(pairs []uint16, size uint8) bool {
		n := 2 + int(size)%60
		dsu := NewDSU(n)
		for _, p := range pairs {
			a, b := int(p>>8)%n, int(p&0xff)%n
			dsu.Union(a, b)
		}
		labels, k := dsu.Labels()
		if k < 1 || k > n {
			return false
		}
		// Reflexive/symmetric/transitive by construction; check that Find
		// agrees with labels.
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				if (dsu.Find(u) == dsu.Find(v)) != (labels[u] == labels[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeepPartitionAlwaysValid(t *testing.T) {
	prop := func(seed int64, size, seg uint8) bool {
		n := 10 + int(size)%90
		segLen := 1 + int(seg)%20
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, 2.5/float64(n), rng)
		parts := DeepPartition(g, segLen)
		return ValidatePartition(g, parts) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickRandomConnectedPartitionAlwaysValid(t *testing.T) {
	prop := func(seed int64, size, kk uint8) bool {
		n := 10 + int(size)%60
		k := 1 + int(kk)%10
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, 2.5/float64(n), rng)
		parts := RandomConnectedPartition(g, k, rng)
		return ValidatePartition(g, parts) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickMSTWeightIsMinimalAmongSampledTrees(t *testing.T) {
	// The Kruskal weight is <= the weight of any random spanning tree
	// (sampled via randomized union-find passes).
	prop := func(seed int64, size uint8) bool {
		n := 5 + int(size)%25
		rng := rand.New(rand.NewSource(seed))
		g := RandomizeWeights(RandomConnected(n, 0.3, rng), 50, rng)
		mstW := g.MSTWeight()
		for trial := 0; trial < 4; trial++ {
			dsu := NewDSU(n)
			var w Weight
			for _, i := range rng.Perm(g.M()) {
				e := g.Edge(i)
				if dsu.Union(e.U, e.V) {
					w += e.W
				}
			}
			if w < mstW {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickBFSDistancesSatisfyTriangleOnEdges(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		n := 5 + int(size)%60
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, 3.0/float64(n), rng)
		dist := g.BFSFrom(0)
		for _, e := range g.Edges() {
			d := dist[e.U] - dist[e.V]
			if d > 1 || d < -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
