package graph

import (
	"math"
	"sort"
)

// Offline (sequential) reference algorithms. These are used only as test
// oracles and for experiment reporting; the distributed algorithms under
// test never call them.

// BFSFrom returns the hop distances from src; unreachable nodes get -1.
func (g *Graph) BFSFrom(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for h := g.csr.RowStart[v]; h < g.csr.RowStart[v+1]; h++ {
			to := int(g.csr.PortTo[h])
			if dist[to] < 0 {
				dist[to] = dist[v] + 1
				queue = append(queue, to)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from src.
func (g *Graph) Eccentricity(src int) int {
	ecc := 0
	for _, d := range g.BFSFrom(src) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact hop diameter (max over all-pairs shortest hop
// counts). O(n·m); fine at simulator scales. Returns 0 for n <= 1.
// Panics if the graph is disconnected.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.n; v++ {
		for _, d := range g.BFSFrom(v) {
			if d < 0 {
				panic("graph: Diameter on disconnected graph")
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFSFrom(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns per-node component labels in [0, #components) and the
// number of components. Labels are assigned in discovery order from node 0.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for h := g.csr.RowStart[v]; h < g.csr.RowStart[v+1]; h++ {
				to := int(g.csr.PortTo[h])
				if comp[to] < 0 {
					comp[to] = next
					queue = append(queue, to)
				}
			}
		}
		next++
	}
	return comp, next
}

// SubgraphComponents returns component labels of the subgraph of g induced
// by the edge subset keep (keep[i] == true retains edge i).
func (g *Graph) SubgraphComponents(keep []bool) ([]int, int) {
	dsu := NewDSU(g.n)
	for i, e := range g.edges {
		if keep[i] {
			dsu.Union(e.U, e.V)
		}
	}
	return dsu.Labels()
}

// IsBipartite reports whether g is bipartite, and if so returns a valid
// 2-coloring (side[v] in {0,1}).
func (g *Graph) IsBipartite() (side []int, ok bool) {
	side = make([]int, g.n)
	for i := range side {
		side[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if side[s] >= 0 {
			continue
		}
		side[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for h := g.csr.RowStart[v]; h < g.csr.RowStart[v+1]; h++ {
				to := int(g.csr.PortTo[h])
				if side[to] < 0 {
					side[to] = 1 - side[v]
					queue = append(queue, to)
				} else if side[to] == side[v] {
					return nil, false
				}
			}
		}
	}
	return side, true
}

// DSU is a disjoint-set union (union-find) structure over 0..n-1.
type DSU struct {
	parent []int
	rank   []int
}

// NewDSU returns a DSU with n singleton sets.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int, n), rank: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Find returns the representative of v's set, with path compression.
func (d *DSU) Find(v int) int {
	for d.parent[v] != v {
		d.parent[v] = d.parent[d.parent[v]]
		v = d.parent[v]
	}
	return v
}

// Union merges the sets of a and b; reports whether they were distinct.
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return true
}

// Labels returns dense labels in [0, #sets) per element and the set count.
func (d *DSU) Labels() ([]int, int) {
	labels := make([]int, len(d.parent))
	dense := make(map[int]int)
	for v := range d.parent {
		r := d.Find(v)
		id, ok := dense[r]
		if !ok {
			id = len(dense)
			dense[r] = id
		}
		labels[v] = id
	}
	return labels, len(dense)
}

// KruskalMST returns the edge indices of a minimum spanning forest. Ties are
// broken by edge index, matching the (weight, edge-id) lexicographic rule the
// distributed MST uses, so on connected graphs the result is the unique MST
// under that tie-break.
func (g *Graph) KruskalMST() []int {
	order := make([]int, len(g.edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := g.edges[order[a]], g.edges[order[b]]
		if ea.W != eb.W {
			return ea.W < eb.W
		}
		return order[a] < order[b]
	})
	dsu := NewDSU(g.n)
	var mst []int
	for _, i := range order {
		e := g.edges[i]
		if dsu.Union(e.U, e.V) {
			mst = append(mst, i)
		}
	}
	sort.Ints(mst)
	return mst
}

// MSTWeight returns the total weight of a minimum spanning forest.
func (g *Graph) MSTWeight() Weight {
	var total Weight
	for _, i := range g.KruskalMST() {
		total += g.edges[i].W
	}
	return total
}

// Dijkstra returns exact weighted shortest-path distances from src.
// Unreachable nodes get math.MaxInt64.
func (g *Graph) Dijkstra(src int) []int64 {
	const inf = math.MaxInt64
	dist := make([]int64, g.n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		top := pq.pop()
		if top.d > dist[top.v] {
			continue
		}
		for h := g.csr.RowStart[top.v]; h < g.csr.RowStart[top.v+1]; h++ {
			to := int(g.csr.PortTo[h])
			nd := top.d + int64(g.edges[g.csr.PortEdge[h]].W)
			if nd < dist[to] {
				dist[to] = nd
				pq.push(distItem{v: to, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v int
	d int64
}

// distHeap is a minimal binary min-heap on distance (no container/heap to
// keep the oracle self-contained and allocation-light).
type distHeap []distItem

func (h distHeap) Len() int { return len(h) }

func (h *distHeap) push(it distItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].d <= (*h)[i].d {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(*h) && (*h)[l].d < (*h)[s].d {
			s = l
		}
		if r < len(*h) && (*h)[r].d < (*h)[s].d {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return top
}

// StoerWagnerMinCut returns the weight of a global minimum cut and one side
// of an optimal cut. Requires a connected graph with n >= 2.
func (g *Graph) StoerWagnerMinCut() (Weight, []int) {
	n := g.n
	if n < 2 {
		return 0, nil
	}
	// Dense weight matrix; simulator-scale graphs keep this cheap.
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for _, e := range g.edges {
		w[e.U][e.V] += int64(e.W)
		w[e.V][e.U] += int64(e.W)
	}
	// merged[i] lists original nodes contracted into super-node i.
	merged := make([][]int, n)
	for i := range merged {
		merged[i] = []int{i}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	best := int64(math.MaxInt64)
	var bestSide []int
	for len(active) > 1 {
		// Maximum adjacency (minimum cut phase) order.
		inA := make(map[int]bool, len(active))
		weights := make(map[int]int64, len(active))
		order := make([]int, 0, len(active))
		for len(order) < len(active) {
			sel, selW := -1, int64(-1)
			for _, v := range active {
				if !inA[v] && weights[v] > selW {
					sel, selW = v, weights[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range active {
				if !inA[v] {
					weights[v] += w[sel][v]
				}
			}
		}
		t := order[len(order)-1]
		s := order[len(order)-2]
		cutOfPhase := int64(0)
		for _, v := range active {
			if v != t {
				cutOfPhase += w[t][v]
			}
		}
		if cutOfPhase < best {
			best = cutOfPhase
			bestSide = append([]int(nil), merged[t]...)
		}
		// Contract t into s.
		merged[s] = append(merged[s], merged[t]...)
		for _, v := range active {
			if v != s && v != t {
				w[s][v] += w[t][v]
				w[v][s] = w[s][v]
			}
		}
		next := active[:0]
		for _, v := range active {
			if v != t {
				next = append(next, v)
			}
		}
		active = next
	}
	sort.Ints(bestSide)
	return Weight(best), bestSide
}

// CutWeight returns the total weight of edges with exactly one endpoint in
// side (given as a node set).
func (g *Graph) CutWeight(side map[int]bool) Weight {
	var total Weight
	for _, e := range g.edges {
		if side[e.U] != side[e.V] {
			total += e.W
		}
	}
	return total
}
