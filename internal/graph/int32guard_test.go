package graph

import (
	"math"
	"math/bits"
	"strings"
	"testing"
)

// int32guard_test.go pins the int32 CSR index guard at its exact
// boundaries. The engine's flat arrays (delivery slots, port flags,
// wake stamps) are all indexed through the CSR's int32 offsets, so the
// scale sweep's march toward n = 10^6+ graphs relies on this guard firing
// cleanly — before any allocation — once a requested instance would
// overflow the layout.

// TestCSRIndexRangeBoundary drives the extracted checker across both
// limits (node count and half-edge count) without building real graphs:
// the last representable sizes pass, one past each fails. The checker
// takes int64, so the over-limit cases are expressible on any platform.
func TestCSRIndexRangeBoundary(t *testing.T) {
	const maxN = int64(math.MaxInt32)     // largest node count whose indices fit
	const maxM = int64(math.MaxInt32) / 2 // largest edge count with 2m half-edges in range
	cases := []struct {
		name string
		n, m int64
		ok   bool
	}{
		{"zero", 0, 0, true},
		{"n-at-limit", maxN, 0, true},
		{"n-over-limit", maxN + 1, 0, false},
		{"m-at-limit", 4, maxM, true},
		{"m-over-limit", 4, maxM + 1, false},
		{"both-over", maxN + 1, maxM + 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkCSRIndexRange(tc.n, tc.m)
			if tc.ok && err != nil {
				t.Fatalf("checkCSRIndexRange(%d, %d) = %v, want nil", tc.n, tc.m, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("checkCSRIndexRange(%d, %d) = nil, want error", tc.n, tc.m)
			}
		})
	}
}

// TestNewRejectsOverInt32Nodes goes through the public constructor: a node
// count past the int32 range must error out before New allocates anything
// (the guard precedes the per-node degree array, so this test costs no
// memory despite naming a 2^31-node graph). Only runnable where int is
// 64-bit — on a 32-bit platform the over-limit count is not even
// representable as an argument, which is its own guarantee.
func TestNewRejectsOverInt32Nodes(t *testing.T) {
	if bits.UintSize == 32 {
		t.Skip("int cannot exceed the int32 range on a 32-bit platform")
	}
	over := int64(math.MaxInt32) + 1
	n := int(over)
	g, err := New(n, nil)
	if err == nil {
		t.Fatalf("New(%d, nil) succeeded, want int32 CSR guard error", n)
	}
	if g != nil {
		t.Fatalf("New returned a graph alongside the error")
	}
	if !strings.Contains(err.Error(), "int32 CSR index range") {
		t.Fatalf("New error %q does not name the int32 CSR guard", err)
	}
}
