package graph

import (
	"errors"
	"math"
	"sort"
)

// Weight is an integer edge weight in [1, poly(n)].
type Weight int64

// Edge is an undirected edge between nodes U and V with weight W.
type Edge struct {
	U, V int
	W    Weight
}

// CSR is the flat compressed-sparse-row view of a graph's ported adjacency.
// Node v's ports occupy half-edge indices [RowStart[v], RowStart[v+1]); for
// half-edge h = RowStart[v]+p, PortTo[h] is the neighbor node, PortEdge[h]
// the global edge index, and PortRev[h] the port at the far end (the q with
// Neighbor(PortTo[h], q) == v). The slices are owned by the Graph and must
// not be mutated.
type CSR struct {
	RowStart []int32 // len n+1
	PortTo   []int32 // len 2m
	PortEdge []int32 // len 2m
	PortRev  []int32 // len 2m
}

// Graph is an undirected multigraph-free graph with ported adjacency lists
// in CSR layout. The zero value is an empty graph; use New or a generator.
type Graph struct {
	n     int
	edges []Edge
	csr   CSR
}

// New returns a graph with n nodes and the given undirected edges.
// Self-loops and duplicate edges are rejected. Port numbering follows edge
// order: port p of node v leads across the p-th edge incident to v in the
// input list.
//
// New is a thin adapter over Builder: streaming the caller's slice through
// AddEdge is the defensive copy (the builder owns its storage from the
// start), and validation, degree counting, and the duplicate check are the
// builder's single-pass machinery. Callers that produce edges one at a time
// should use Builder directly and skip the intermediate slice.
func New(n int, edges []Edge) (*Graph, error) {
	// Fail before streaming (and thus before the builder's copy): an
	// over-limit request must not attempt a multi-GB build first. Finish
	// re-checks for direct Builder users, whose stream length is unknown
	// up front.
	if n >= 0 {
		if err := checkCSRIndexRange(int64(n), int64(len(edges))); err != nil {
			return nil, err
		}
	}
	b := NewBuilder(n, len(edges))
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.W)
	}
	return b.Finish()
}

// checkCSRIndexRange guards the int32 CSR layout: node indices and the 2m
// half-edge offsets must both fit in int32, or every flat array the engine
// layers on top of the CSR (delivery slots, port flags) would silently
// wrap. The guard runs in New before any allocation, so an over-limit
// request fails cleanly rather than attempting a multi-GB build first.
// Factored out of New (with int64 parameters, so the boundary itself is
// expressible on 32-bit platforms too) to be unit-testable without
// materializing a 2^31-edge graph.
func checkCSRIndexRange(n, m int64) error {
	if n > math.MaxInt32 || 2*m > math.MaxInt32 {
		return errors.New("graph: size exceeds int32 CSR index range")
	}
	return nil
}

// buildCSR lays out the ported adjacency of a validated edge list. Filling
// both halves of each edge in one pass makes reverse ports free: when edge i
// lands at port pU of U and pV of V, each half records the other's port.
func buildCSR(n int, edges []Edge, deg []int32) CSR {
	h := 2 * len(edges)
	c := CSR{
		RowStart: make([]int32, n+1),
		PortTo:   make([]int32, h),
		PortEdge: make([]int32, h),
		PortRev:  make([]int32, h),
	}
	for v := 0; v < n; v++ {
		c.RowStart[v+1] = c.RowStart[v] + deg[v]
	}
	cursor := make([]int32, n)
	copy(cursor, c.RowStart[:n])
	for i, e := range edges {
		hu, hv := cursor[e.U], cursor[e.V]
		cursor[e.U]++
		cursor[e.V]++
		c.PortTo[hu] = int32(e.V)
		c.PortTo[hv] = int32(e.U)
		c.PortEdge[hu] = int32(i)
		c.PortEdge[hv] = int32(i)
		c.PortRev[hu] = hv - c.RowStart[e.V]
		c.PortRev[hv] = hu - c.RowStart[e.U]
	}
	return c
}

// MustNew is New but panics on error. Intended for generators and tests whose
// inputs are correct by construction.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// CSR returns the flat adjacency arrays. The slices are owned by the graph:
// read-only, valid for the graph's lifetime.
func (g *Graph) CSR() CSR { return g.csr }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return int(g.csr.RowStart[v+1] - g.csr.RowStart[v]) }

// Neighbor returns the node at the far end of port p of node v.
func (g *Graph) Neighbor(v, p int) int { return int(g.csr.PortTo[g.csr.RowStart[v]+int32(p)]) }

// EdgeIndex returns the global edge index behind port p of node v.
func (g *Graph) EdgeIndex(v, p int) int { return int(g.csr.PortEdge[g.csr.RowStart[v]+int32(p)]) }

// EdgeWeight returns the weight of the edge behind port p of node v.
func (g *Graph) EdgeWeight(v, p int) Weight {
	return g.edges[g.csr.PortEdge[g.csr.RowStart[v]+int32(p)]].W
}

// ForPorts calls fn for each port p of node v in ascending port order, with
// the neighbor node and global edge index behind it, until fn returns false.
// This is the cache-friendly way to scan a node's incident edges: one linear
// pass over the CSR arrays instead of a bounds-checked lookup per accessor.
func (g *Graph) ForPorts(v int, fn func(p, to, edge int) bool) {
	lo, hi := g.csr.RowStart[v], g.csr.RowStart[v+1]
	for h := lo; h < hi; h++ {
		if !fn(int(h-lo), int(g.csr.PortTo[h]), int(g.csr.PortEdge[h])) {
			return
		}
	}
}

// Edge returns the i-th edge.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list. Callers that only iterate should
// use ForEdges, which walks the graph-owned list without the O(m) copy.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// ForEdges calls fn for each edge in index order until fn returns false.
// The Edge values are copies; the underlying list is never exposed.
func (g *Graph) ForEdges(fn func(i int, e Edge) bool) {
	for i, e := range g.edges {
		if !fn(i, e) {
			return
		}
	}
}

// PortTo returns the port of v that leads to u, or -1 if u is not adjacent.
func (g *Graph) PortTo(v, u int) int {
	lo, hi := g.csr.RowStart[v], g.csr.RowStart[v+1]
	for h := lo; h < hi; h++ {
		if int(g.csr.PortTo[h]) == u {
			return int(h - lo)
		}
	}
	return -1
}

// ReversePort returns the port at the far end of port p of node v, i.e. the
// port q of u := Neighbor(v,p) with Neighbor(u,q) == v. O(1): reverse ports
// are materialized in the CSR build.
func (g *Graph) ReversePort(v, p int) int { return int(g.csr.PortRev[g.csr.RowStart[v]+int32(p)]) }

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() Weight {
	var s Weight
	for _, e := range g.edges {
		s += e.W
	}
	return s
}

// Reweight returns a copy of g with edge i's weight given by w(i). Weights
// must remain positive. Streams straight into a Builder: one exactly-sized
// edge allocation, no intermediate slice for New to re-copy.
func (g *Graph) Reweight(w func(i int, e Edge) Weight) (*Graph, error) {
	b := NewBuilder(g.n, len(g.edges))
	for i, e := range g.edges {
		b.AddEdge(e.U, e.V, w(i, e))
	}
	return b.Finish()
}

// SortedNeighbors returns the neighbor node indices of v in ascending order.
// Intended for tests and offline oracles; protocols must use ports.
func (g *Graph) SortedNeighbors(v int) []int {
	lo, hi := g.csr.RowStart[v], g.csr.RowStart[v+1]
	out := make([]int, 0, hi-lo)
	for h := lo; h < hi; h++ {
		out = append(out, int(g.csr.PortTo[h]))
	}
	sort.Ints(out)
	return out
}
