// Package graph provides the static undirected graphs on which the CONGEST
// simulator runs, generators for every graph family the paper's results are
// parameterized by, and sequential reference algorithms used as test oracles.
//
// Nodes are indexed 0..N-1. Each node's incident edges are numbered by local
// "ports" 0..deg-1, matching the KT0 CONGEST model in which a node initially
// knows only its own ID and its ports. Edge weights are positive integers in
// [1, poly(n)], as in the paper.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Weight is an integer edge weight in [1, poly(n)].
type Weight int64

// Edge is an undirected edge between nodes U and V with weight W.
type Edge struct {
	U, V int
	W    Weight
}

// halfEdge is one directed side of an undirected edge as seen from a node.
type halfEdge struct {
	to   int // neighbor node index
	edge int // index into Graph.edges
}

// Graph is an undirected multigraph-free graph with ported adjacency lists.
// The zero value is an empty graph; use New or a generator.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]halfEdge
}

// New returns a graph with n nodes and the given undirected edges.
// Self-loops and duplicate edges are rejected.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, errors.New("graph: negative node count")
	}
	g := &Graph{n: n, adj: make([][]halfEdge, n)}
	seen := make(map[[2]int]struct{}, len(edges))
	for _, e := range edges {
		if err := g.addEdge(e, seen); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MustNew is New but panics on error. Intended for generators and tests whose
// inputs are correct by construction.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) addEdge(e Edge, seen map[[2]int]struct{}) error {
	if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, g.n)
	}
	if e.U == e.V {
		return fmt.Errorf("graph: self-loop at %d", e.U)
	}
	if e.W <= 0 {
		return fmt.Errorf("graph: edge (%d,%d) has non-positive weight %d", e.U, e.V, e.W)
	}
	key := [2]int{min(e.U, e.V), max(e.U, e.V)}
	if _, dup := seen[key]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", e.U, e.V)
	}
	seen[key] = struct{}{}
	idx := len(g.edges)
	g.edges = append(g.edges, e)
	g.adj[e.U] = append(g.adj[e.U], halfEdge{to: e.V, edge: idx})
	g.adj[e.V] = append(g.adj[e.V], halfEdge{to: e.U, edge: idx})
	return nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbor returns the node at the far end of port p of node v.
func (g *Graph) Neighbor(v, p int) int { return g.adj[v][p].to }

// EdgeIndex returns the global edge index behind port p of node v.
func (g *Graph) EdgeIndex(v, p int) int { return g.adj[v][p].edge }

// EdgeWeight returns the weight of the edge behind port p of node v.
func (g *Graph) EdgeWeight(v, p int) Weight { return g.edges[g.adj[v][p].edge].W }

// Edge returns the i-th edge.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// PortTo returns the port of v that leads to u, or -1 if u is not adjacent.
func (g *Graph) PortTo(v, u int) int {
	for p, h := range g.adj[v] {
		if h.to == u {
			return p
		}
	}
	return -1
}

// ReversePort returns the port at the far end of port p of node v, i.e. the
// port q of u := Neighbor(v,p) with Neighbor(u,q) == v.
func (g *Graph) ReversePort(v, p int) int {
	u := g.adj[v][p].to
	e := g.adj[v][p].edge
	for q, h := range g.adj[u] {
		if h.edge == e {
			return q
		}
	}
	return -1 // unreachable on a well-formed graph
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() Weight {
	var s Weight
	for _, e := range g.edges {
		s += e.W
	}
	return s
}

// Reweight returns a copy of g with edge i's weight given by w(i). Weights
// must remain positive.
func (g *Graph) Reweight(w func(i int, e Edge) Weight) (*Graph, error) {
	edges := make([]Edge, len(g.edges))
	for i, e := range g.edges {
		e.W = w(i, e)
		edges[i] = e
	}
	return New(g.n, edges)
}

// SortedNeighbors returns the neighbor node indices of v in ascending order.
// Intended for tests and offline oracles; protocols must use ports.
func (g *Graph) SortedNeighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for _, h := range g.adj[v] {
		out = append(out, h.to)
	}
	sort.Ints(out)
	return out
}
