package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// refNew is the pre-Builder construction path, preserved verbatim as the
// test oracle: defensive copy, map-based duplicate detection, first bad
// edge in input order wins. Builder/New must match it bit for bit — same
// CSR arrays, same edge order, same error text.
func refNew(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count")
	}
	if err := checkCSRIndexRange(int64(n), int64(len(edges))); err != nil {
		return nil, err
	}
	g := &Graph{n: n, edges: append([]Edge(nil), edges...)}
	seen := make(map[[2]int]struct{}, len(edges))
	deg := make([]int32, n)
	for _, e := range g.edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at %d", e.U)
		}
		if e.W <= 0 {
			return nil, fmt.Errorf("graph: edge (%d,%d) has non-positive weight %d", e.U, e.V, e.W)
		}
		key := [2]int{min(e.U, e.V), max(e.U, e.V)}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", e.U, e.V)
		}
		seen[key] = struct{}{}
		deg[e.U]++
		deg[e.V]++
	}
	g.csr = buildCSR(n, g.edges, deg)
	return g, nil
}

// builderGraphs are the generator outputs the bit-identity test replays.
// Every generator family is represented, including both random ones.
func builderGraphs(tb testing.TB) map[string]*Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(11))
	return map[string]*Graph{
		"path":      Path(40),
		"cycle":     Cycle(17),
		"star":      Star(33),
		"grid":      Grid(7, 9),
		"torus":     Torus(5, 8),
		"ladder":    Ladder(12),
		"cbt":       CompleteBinaryTree(5),
		"randtree":  RandomTree(50, rng),
		"ktree":     KTree(40, 3, rng),
		"er":        ErdosRenyi(45, 0.15, rng),
		"randconn":  RandomConnected(60, 0.08, rng),
		"lollipop":  Lollipop(30, 8),
		"gridstar":  GridStar(4, 11),
		"reweight":  RandomizeWeights(Grid(6, 6), 50, rng),
		"empty":     MustNew(0, nil),
		"singleton": MustNew(1, nil),
	}
}

// TestBuilderMatchesReferenceOnGenerators replays every generator's edge
// list through the reference path and through a raw Builder, and requires
// bit-identical results: node/edge counts, edge order and weights, and all
// four CSR arrays.
func TestBuilderMatchesReferenceOnGenerators(t *testing.T) {
	for name, g := range builderGraphs(t) {
		t.Run(name, func(t *testing.T) {
			edges := g.Edges()
			ref, err := refNew(g.N(), edges)
			if err != nil {
				t.Fatalf("reference rejected generator output: %v", err)
			}
			b := NewBuilder(g.N(), len(edges))
			for _, e := range edges {
				b.AddEdge(e.U, e.V, e.W)
			}
			built, err := b.Finish()
			if err != nil {
				t.Fatalf("Builder rejected generator output: %v", err)
			}
			for _, pair := range []struct {
				name string
				got  *Graph
			}{{"builder", built}, {"generator", g}} {
				assertGraphsIdentical(t, pair.name, pair.got, ref)
			}
		})
	}
}

func assertGraphsIdentical(t *testing.T, name string, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("%s: n=%d m=%d, want n=%d m=%d", name, got.N(), got.M(), want.N(), want.M())
	}
	if !reflect.DeepEqual(got.edges, want.edges) && !(len(got.edges) == 0 && len(want.edges) == 0) {
		t.Fatalf("%s: edge lists differ", name)
	}
	gc, wc := got.CSR(), want.CSR()
	if !reflect.DeepEqual(gc.RowStart, wc.RowStart) {
		t.Fatalf("%s: RowStart differs", name)
	}
	if !reflect.DeepEqual(gc.PortTo, wc.PortTo) && len(gc.PortTo) != 0 {
		t.Fatalf("%s: PortTo differs", name)
	}
	if !reflect.DeepEqual(gc.PortEdge, wc.PortEdge) && len(gc.PortEdge) != 0 {
		t.Fatalf("%s: PortEdge differs", name)
	}
	if !reflect.DeepEqual(gc.PortRev, wc.PortRev) && len(gc.PortRev) != 0 {
		t.Fatalf("%s: PortRev differs", name)
	}
}

// TestBuilderErrorParity feeds invalid inputs through refNew, New, and a
// raw Builder; all three must reject with the same message. The cases pin
// the precedence rules: first offending edge index wins, and a duplicate
// earlier in the stream beats an inline error later in it.
func TestBuilderErrorParity(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"out-of-range-high", 3, []Edge{{U: 0, V: 3, W: 1}}},
		{"out-of-range-negative", 3, []Edge{{U: -1, V: 2, W: 1}}},
		{"self-loop", 3, []Edge{{U: 1, V: 1, W: 1}}},
		{"zero-weight", 3, []Edge{{U: 0, V: 1, W: 0}}},
		{"negative-weight", 3, []Edge{{U: 0, V: 1, W: -4}}},
		{"duplicate-same-orientation", 3, []Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 2}}},
		{"duplicate-flipped", 3, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 2}}},
		{"triple-edge", 3, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 2}, {U: 0, V: 1, W: 3}}},
		{"dup-before-self-loop", 4, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 1}, {U: 2, V: 2, W: 1}}},
		{"self-loop-before-dup", 4, []Edge{{U: 2, V: 2, W: 1}, {U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 1}}},
		{"range-before-dup", 4, []Edge{{U: 0, V: 9, W: 1}, {U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 1}}},
		{"two-dups-first-wins", 5, []Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}, {U: 3, V: 2, W: 1}, {U: 1, V: 0, W: 1}}},
		{"negative-n", -1, nil},
		{"negative-n-with-edges", -2, []Edge{{U: 0, V: 1, W: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, refErr := refNew(tc.n, tc.edges)
			if refErr == nil {
				t.Fatal("reference accepted an invalid input")
			}
			_, newErr := New(tc.n, tc.edges)
			if newErr == nil || newErr.Error() != refErr.Error() {
				t.Fatalf("New error = %v, want %v", newErr, refErr)
			}
			b := NewBuilder(tc.n, len(tc.edges))
			for _, e := range tc.edges {
				b.AddEdge(e.U, e.V, e.W)
			}
			_, bErr := b.Finish()
			if bErr == nil || bErr.Error() != refErr.Error() {
				t.Fatalf("Builder error = %v, want %v", bErr, refErr)
			}
		})
	}
}

// TestBuilderOverflowGuard pins the int32 CSR guard on both entry points
// without materializing a huge build: an over-int32 node count must fail
// before allocating anything n-sized.
func TestBuilderOverflowGuard(t *testing.T) {
	const tooManyNodes = int(1)<<31 + 1
	if _, err := New(tooManyNodes, nil); err == nil {
		t.Fatal("New accepted an over-int32 node count")
	}
	b := NewBuilder(tooManyNodes, 0)
	b.AddEdge(0, 1, 1) // must be a no-op, not a nil-deg panic
	if _, err := b.Finish(); err == nil {
		t.Fatal("Builder accepted an over-int32 node count")
	}
}

// TestBuilderFinishTwice: a Builder is single-use.
func TestBuilderFinishTwice(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddEdge(0, 1, 1)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(); err == nil {
		t.Fatal("second Finish succeeded, want error")
	}
}

// TestBuilderTakesOwnership: Finish must not copy the streamed edges — the
// returned graph's backing array is the builder's. (This is the property
// that lets generators skip New's defensive copy.)
func TestBuilderTakesOwnership(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 7)
	inner := b.edges
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if &g.edges[0] != &inner[0] {
		t.Fatal("Finish copied the edge list; want ownership transfer")
	}
}

// TestForEdgesMatchesEdges: ForEdges yields the same (index, edge) stream
// Edges exposes, and honors early exit.
func TestForEdgesMatchesEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomConnected(40, 0.1, rng)
	want := g.Edges()
	i := 0
	g.ForEdges(func(idx int, e Edge) bool {
		if idx != i {
			t.Fatalf("ForEdges index %d, want %d", idx, i)
		}
		if e != want[i] {
			t.Fatalf("ForEdges edge %d = %+v, want %+v", i, e, want[i])
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("ForEdges visited %d edges, want %d", i, len(want))
	}
	stops := 0
	g.ForEdges(func(int, Edge) bool {
		stops++
		return stops < 3
	})
	if stops != 3 {
		t.Fatalf("ForEdges early exit visited %d, want 3", stops)
	}
}
