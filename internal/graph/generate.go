package graph

import (
	"fmt"
	"math/rand"
)

// Defaults for generated edge weights. Generators produce unit weights;
// RandomizeWeights assigns weights uniform in [1, maxW].
const defaultWeight Weight = 1

// Path returns the path graph on n nodes: 0-1-2-...-(n-1). Pathwidth 1.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{U: i, V: i + 1, W: defaultWeight})
	}
	return MustNew(n, edges)
}

// Cycle returns the cycle graph on n >= 3 nodes.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Cycle needs n >= 3, got %d", n))
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{U: i, V: (i + 1) % n, W: defaultWeight})
	}
	return MustNew(n, edges)
}

// Star returns the star graph: node 0 is the hub, nodes 1..n-1 are leaves.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: 0, V: i, W: defaultWeight})
	}
	return MustNew(n, edges)
}

// Grid returns the rows x cols grid graph (planar, diameter rows+cols-2).
// Node (r,c) has index r*cols+c.
func Grid(rows, cols int) *Graph {
	n := rows * cols
	edges := make([]Edge, 0, 2*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				edges = append(edges, Edge{U: v, V: v + 1, W: defaultWeight})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: v, V: v + cols, W: defaultWeight})
			}
		}
	}
	return MustNew(n, edges)
}

// Torus returns the rows x cols torus (grid with wraparound): genus 1.
// Requires rows, cols >= 3 so no duplicate edges arise.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: Torus needs rows,cols >= 3, got %dx%d", rows, cols))
	}
	n := rows * cols
	edges := make([]Edge, 0, 2*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			right := r*cols + (c+1)%cols
			down := ((r+1)%rows)*cols + c
			edges = append(edges, Edge{U: v, V: right, W: defaultWeight})
			edges = append(edges, Edge{U: v, V: down, W: defaultWeight})
		}
	}
	return MustNew(n, edges)
}

// Ladder returns the 2 x n ladder graph (pathwidth 2).
func Ladder(n int) *Graph { return Grid(2, n) }

// CompleteBinaryTree returns a complete binary tree with the given number of
// levels (level 1 = a single root). Treewidth 1.
func CompleteBinaryTree(levels int) *Graph {
	if levels < 1 {
		panic("graph: CompleteBinaryTree needs levels >= 1")
	}
	n := (1 << levels) - 1
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{U: (v - 1) / 2, V: v, W: defaultWeight})
	}
	return MustNew(n, edges)
}

// RandomTree returns a uniformly random labeled tree on n nodes built from a
// random Prüfer-like attachment: node i attaches to a uniform node in [0, i).
func RandomTree(n int, rng *rand.Rand) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: rng.Intn(i), V: i, W: defaultWeight})
	}
	return MustNew(n, edges)
}

// KTree returns a k-tree on n >= k+1 nodes (treewidth exactly k for n > k):
// start from a (k+1)-clique; each new node attaches to a random k-clique.
func KTree(n, k int, rng *rand.Rand) *Graph {
	if n < k+1 {
		panic(fmt.Sprintf("graph: KTree needs n >= k+1, got n=%d k=%d", n, k))
	}
	var edges []Edge
	// cliques holds k-subsets that new nodes may attach to.
	var cliques [][]int
	base := make([]int, k+1)
	for i := 0; i <= k; i++ {
		base[i] = i
		for j := 0; j < i; j++ {
			edges = append(edges, Edge{U: j, V: i, W: defaultWeight})
		}
	}
	// All k-subsets of the base clique.
	for drop := 0; drop <= k; drop++ {
		sub := make([]int, 0, k)
		for _, v := range base {
			if v != base[drop] {
				sub = append(sub, v)
			}
		}
		cliques = append(cliques, sub)
	}
	for v := k + 1; v < n; v++ {
		c := cliques[rng.Intn(len(cliques))]
		for _, u := range c {
			edges = append(edges, Edge{U: u, V: v, W: defaultWeight})
		}
		// New k-subsets: v plus each (k-1)-subset of c.
		for drop := 0; drop < k; drop++ {
			sub := make([]int, 0, k)
			sub = append(sub, v)
			for j, u := range c {
				if j != drop {
					sub = append(sub, u)
				}
			}
			cliques = append(cliques, sub)
		}
	}
	return MustNew(n, edges)
}

// ErdosRenyi returns G(n, p). The result may be disconnected; see
// RandomConnected for a connected variant.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, Edge{U: u, V: v, W: defaultWeight})
			}
		}
	}
	return MustNew(n, edges)
}

// RandomConnected returns a connected G(n, p)-like graph: a random spanning
// tree unioned with G(n, p) edges.
func RandomConnected(n int, p float64, rng *rand.Rand) *Graph {
	seen := make(map[[2]int]struct{}, n)
	var edges []Edge
	add := func(u, v int) {
		key := [2]int{min(u, v), max(u, v)}
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		edges = append(edges, Edge{U: u, V: v, W: defaultWeight})
	}
	for i := 1; i < n; i++ {
		add(rng.Intn(i), i)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				add(u, v)
			}
		}
	}
	return MustNew(n, edges)
}

// Lollipop returns a clique on k nodes attached to a path of n-k nodes.
// A classic high-diameter, locally-dense stress test.
func Lollipop(n, k int) *Graph {
	if k < 1 || k > n {
		panic(fmt.Sprintf("graph: Lollipop needs 1 <= k <= n, got n=%d k=%d", n, k))
	}
	var edges []Edge
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, Edge{U: u, V: v, W: defaultWeight})
		}
	}
	for v := k; v < n; v++ {
		edges = append(edges, Edge{U: v - 1, V: v, W: defaultWeight})
	}
	return MustNew(n, edges)
}

// GridStar is the paper's Figure 2 lower-bound instance: a rows x cols grid
// plus an apex node r adjacent to every node of the top row. The apex has
// index rows*cols. With rows = D/2 and cols = (n-1)/rows this realizes the
// D x (n-1)/D construction of Section 3.1.
func GridStar(rows, cols int) *Graph {
	n := rows * cols
	g := Grid(rows, cols)
	edges := g.Edges()
	for c := 0; c < cols; c++ {
		edges = append(edges, Edge{U: n, V: c, W: defaultWeight})
	}
	return MustNew(n+1, edges)
}

// GridStarRowParts returns the Figure 2a partition of GridStar(rows, cols):
// each grid row is a part, and the apex is its own part. parts[v] gives the
// part index of node v.
func GridStarRowParts(rows, cols int) []int {
	parts := make([]int, rows*cols+1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			parts[r*cols+c] = r
		}
	}
	parts[rows*cols] = rows
	return parts
}

// RandomizeWeights returns a copy of g with i.i.d. uniform weights in
// [1, maxW].
func RandomizeWeights(g *Graph, maxW Weight, rng *rand.Rand) *Graph {
	out, err := g.Reweight(func(int, Edge) Weight {
		return 1 + Weight(rng.Int63n(int64(maxW)))
	})
	if err != nil {
		panic(err) // weights are positive by construction
	}
	return out
}
