package graph

import (
	"fmt"
	"math/rand"
)

// Defaults for generated edge weights. Generators produce unit weights;
// RandomizeWeights assigns weights uniform in [1, maxW].
const defaultWeight Weight = 1

// Every generator streams its edges straight into a Builder sized to the
// family's exact edge count (or, for the random families, its expectation),
// so construction is O(n + m) with one allocation per flat array and no
// intermediate edge slice for New to re-validate and copy.

// Path returns the path graph on n nodes: 0-1-2-...-(n-1). Pathwidth 1.
func Path(n int) *Graph {
	b := NewBuilder(n, n-1)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, defaultWeight)
	}
	return b.MustFinish()
}

// Cycle returns the cycle graph on n >= 3 nodes.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Cycle needs n >= 3, got %d", n))
	}
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n, defaultWeight)
	}
	return b.MustFinish()
}

// Star returns the star graph: node 0 is the hub, nodes 1..n-1 are leaves.
func Star(n int) *Graph {
	b := NewBuilder(n, n-1)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i, defaultWeight)
	}
	return b.MustFinish()
}

// Grid returns the rows x cols grid graph (planar, diameter rows+cols-2).
// Node (r,c) has index r*cols+c.
func Grid(rows, cols int) *Graph {
	n := rows * cols
	b := NewBuilder(n, gridEdgeCount(rows, cols))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				b.AddEdge(v, v+1, defaultWeight)
			}
			if r+1 < rows {
				b.AddEdge(v, v+cols, defaultWeight)
			}
		}
	}
	return b.MustFinish()
}

// gridEdgeCount is the exact edge count of the rows x cols grid.
func gridEdgeCount(rows, cols int) int {
	if rows < 1 || cols < 1 {
		return 0
	}
	return rows*(cols-1) + (rows-1)*cols
}

// Torus returns the rows x cols torus (grid with wraparound): genus 1.
// Requires rows, cols >= 3 so no duplicate edges arise.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: Torus needs rows,cols >= 3, got %dx%d", rows, cols))
	}
	n := rows * cols
	b := NewBuilder(n, 2*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			right := r*cols + (c+1)%cols
			down := ((r+1)%rows)*cols + c
			b.AddEdge(v, right, defaultWeight)
			b.AddEdge(v, down, defaultWeight)
		}
	}
	return b.MustFinish()
}

// Ladder returns the 2 x n ladder graph (pathwidth 2).
func Ladder(n int) *Graph { return Grid(2, n) }

// CompleteBinaryTree returns a complete binary tree with the given number of
// levels (level 1 = a single root). Treewidth 1.
func CompleteBinaryTree(levels int) *Graph {
	if levels < 1 {
		panic("graph: CompleteBinaryTree needs levels >= 1")
	}
	n := (1 << levels) - 1
	b := NewBuilder(n, n-1)
	for v := 1; v < n; v++ {
		b.AddEdge((v-1)/2, v, defaultWeight)
	}
	return b.MustFinish()
}

// RandomTree returns a uniformly random labeled tree on n nodes built from a
// random Prüfer-like attachment: node i attaches to a uniform node in [0, i).
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n, n-1)
	for i := 1; i < n; i++ {
		b.AddEdge(rng.Intn(i), i, defaultWeight)
	}
	return b.MustFinish()
}

// KTree returns a k-tree on n >= k+1 nodes (treewidth exactly k for n > k):
// start from a (k+1)-clique; each new node attaches to a random k-clique.
func KTree(n, k int, rng *rand.Rand) *Graph {
	if n < k+1 {
		panic(fmt.Sprintf("graph: KTree needs n >= k+1, got n=%d k=%d", n, k))
	}
	b := NewBuilder(n, k*(k+1)/2+(n-k-1)*k)
	// cliques holds k-subsets that new nodes may attach to.
	var cliques [][]int
	base := make([]int, k+1)
	for i := 0; i <= k; i++ {
		base[i] = i
		for j := 0; j < i; j++ {
			b.AddEdge(j, i, defaultWeight)
		}
	}
	// All k-subsets of the base clique.
	for drop := 0; drop <= k; drop++ {
		sub := make([]int, 0, k)
		for _, v := range base {
			if v != base[drop] {
				sub = append(sub, v)
			}
		}
		cliques = append(cliques, sub)
	}
	for v := k + 1; v < n; v++ {
		c := cliques[rng.Intn(len(cliques))]
		for _, u := range c {
			b.AddEdge(u, v, defaultWeight)
		}
		// New k-subsets: v plus each (k-1)-subset of c.
		for drop := 0; drop < k; drop++ {
			sub := make([]int, 0, k)
			sub = append(sub, v)
			for j, u := range c {
				if j != drop {
					sub = append(sub, u)
				}
			}
			cliques = append(cliques, sub)
		}
	}
	return b.MustFinish()
}

// ErdosRenyi returns G(n, p). The result may be disconnected; see
// RandomConnected for a connected variant. The edge count is random, so the
// builder is sized to its expectation.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n, int(p*float64(n)*float64(n-1)/2))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v, defaultWeight)
			}
		}
	}
	return b.MustFinish()
}

// RandomConnected returns a connected G(n, p)-like graph: a random spanning
// tree unioned with G(n, p) edges. Tree edges are pairwise distinct (each is
// keyed by its larger endpoint) and so are the G(n, p) pairs, so the only
// possible duplicates are G(n, p) edges that re-draw a tree edge — one flat
// parent array answers that, replacing the old map[[2]int]struct{} dedup.
func RandomConnected(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n, n-1+int(p*float64(n)*float64(n-1)/2))
	treeParent := make([]int32, n)
	for i := range treeParent {
		treeParent[i] = -1
	}
	for i := 1; i < n; i++ {
		u := rng.Intn(i)
		treeParent[i] = int32(u)
		b.AddEdge(u, i, defaultWeight)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p && treeParent[v] != int32(u) {
				b.AddEdge(u, v, defaultWeight)
			}
		}
	}
	return b.MustFinish()
}

// Lollipop returns a clique on k nodes attached to a path of n-k nodes.
// A classic high-diameter, locally-dense stress test.
func Lollipop(n, k int) *Graph {
	if k < 1 || k > n {
		panic(fmt.Sprintf("graph: Lollipop needs 1 <= k <= n, got n=%d k=%d", n, k))
	}
	b := NewBuilder(n, k*(k-1)/2+(n-k))
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(u, v, defaultWeight)
		}
	}
	for v := k; v < n; v++ {
		b.AddEdge(v-1, v, defaultWeight)
	}
	return b.MustFinish()
}

// GridStar is the paper's Figure 2 lower-bound instance: a rows x cols grid
// plus an apex node r adjacent to every node of the top row. The apex has
// index rows*cols. With rows = D/2 and cols = (n-1)/rows this realizes the
// D x (n-1)/D construction of Section 3.1.
func GridStar(rows, cols int) *Graph {
	n := rows * cols
	g := Grid(rows, cols)
	b := NewBuilder(n+1, g.M()+cols)
	g.ForEdges(func(_ int, e Edge) bool {
		b.AddEdge(e.U, e.V, e.W)
		return true
	})
	for c := 0; c < cols; c++ {
		b.AddEdge(n, c, defaultWeight)
	}
	return b.MustFinish()
}

// GridStarRowParts returns the Figure 2a partition of GridStar(rows, cols):
// each grid row is a part, and the apex is its own part. parts[v] gives the
// part index of node v.
func GridStarRowParts(rows, cols int) []int {
	parts := make([]int, rows*cols+1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			parts[r*cols+c] = r
		}
	}
	parts[rows*cols] = rows
	return parts
}

// RandomizeWeights returns a copy of g with i.i.d. uniform weights in
// [1, maxW].
func RandomizeWeights(g *Graph, maxW Weight, rng *rand.Rand) *Graph {
	out, err := g.Reweight(func(int, Edge) Weight {
		return 1 + Weight(rng.Int63n(int64(maxW)))
	})
	if err != nil {
		panic(err) // weights are positive by construction
	}
	return out
}
