package graph

import (
	"math/rand"
	"testing"
)

func TestNewRejectsBadEdges(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{name: "out of range", n: 2, edges: []Edge{{U: 0, V: 2, W: 1}}},
		{name: "negative node", n: 2, edges: []Edge{{U: -1, V: 1, W: 1}}},
		{name: "self loop", n: 2, edges: []Edge{{U: 1, V: 1, W: 1}}},
		{name: "zero weight", n: 2, edges: []Edge{{U: 0, V: 1, W: 0}}},
		{name: "duplicate", n: 2, edges: []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.n, tt.edges); err == nil {
				t.Fatalf("New(%d, %v) succeeded, want error", tt.n, tt.edges)
			}
		})
	}
}

func TestNewNegativeNodeCount(t *testing.T) {
	if _, err := New(-1, nil); err == nil {
		t.Fatal("New(-1, nil) succeeded, want error")
	}
}

func TestPortsAreConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomConnected(40, 0.1, rng)
	for v := 0; v < g.N(); v++ {
		for p := 0; p < g.Degree(v); p++ {
			u := g.Neighbor(v, p)
			q := g.ReversePort(v, p)
			if q < 0 {
				t.Fatalf("ReversePort(%d,%d) = -1", v, p)
			}
			if got := g.Neighbor(u, q); got != v {
				t.Fatalf("Neighbor(%d,%d) = %d, want %d", u, q, got, v)
			}
			if g.EdgeIndex(v, p) != g.EdgeIndex(u, q) {
				t.Fatalf("edge index mismatch across ports (%d,%d)/(%d,%d)", v, p, u, q)
			}
			if g.PortTo(v, u) < 0 {
				t.Fatalf("PortTo(%d,%d) = -1 for adjacent nodes", v, u)
			}
		}
	}
}

func TestDegreeSumIsTwiceM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := ErdosRenyi(30, 0.2, rng)
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.M() {
		t.Fatalf("degree sum = %d, want %d", sum, 2*g.M())
	}
}

func TestGeneratorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tests := []struct {
		name      string
		g         *Graph
		wantN     int
		wantM     int
		wantDiam  int // -1 to skip
		connected bool
	}{
		{name: "path", g: Path(10), wantN: 10, wantM: 9, wantDiam: 9, connected: true},
		{name: "cycle", g: Cycle(10), wantN: 10, wantM: 10, wantDiam: 5, connected: true},
		{name: "star", g: Star(10), wantN: 10, wantM: 9, wantDiam: 2, connected: true},
		{name: "grid", g: Grid(4, 5), wantN: 20, wantM: 31, wantDiam: 7, connected: true},
		{name: "torus", g: Torus(4, 4), wantN: 16, wantM: 32, wantDiam: 4, connected: true},
		{name: "ladder", g: Ladder(6), wantN: 12, wantM: 16, wantDiam: 6, connected: true},
		{name: "cbt", g: CompleteBinaryTree(4), wantN: 15, wantM: 14, wantDiam: 6, connected: true},
		{name: "rtree", g: RandomTree(20, rng), wantN: 20, wantM: 19, wantDiam: -1, connected: true},
		{name: "lollipop", g: Lollipop(10, 4), wantN: 10, wantM: 12, wantDiam: 7, connected: true},
		{name: "gridstar", g: GridStar(3, 4), wantN: 13, wantM: 21, wantDiam: -1, connected: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.wantN {
				t.Errorf("N = %d, want %d", tt.g.N(), tt.wantN)
			}
			if tt.g.M() != tt.wantM {
				t.Errorf("M = %d, want %d", tt.g.M(), tt.wantM)
			}
			if tt.connected && !tt.g.Connected() {
				t.Error("graph is disconnected")
			}
			if tt.wantDiam >= 0 {
				if d := tt.g.Diameter(); d != tt.wantDiam {
					t.Errorf("Diameter = %d, want %d", d, tt.wantDiam)
				}
			}
		})
	}
}

func TestKTreeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{1, 2, 3} {
		g := KTree(30, k, rng)
		if !g.Connected() {
			t.Fatalf("KTree(30,%d) disconnected", k)
		}
		// A k-tree on n nodes has k*n - k*(k+1)/2 edges.
		want := k*30 - k*(k+1)/2
		if g.M() != want {
			t.Fatalf("KTree(30,%d) has %d edges, want %d", k, g.M(), want)
		}
	}
}

func TestGridStarDiameterIsConstant(t *testing.T) {
	// The apex keeps the diameter small regardless of grid height... it does
	// not: apex touches only the top row, so diameter ~ rows. Verify the
	// intended Figure 2 shape: diameter grows with rows, not cols.
	dRows := GridStar(12, 4).Diameter()
	dCols := GridStar(4, 12).Diameter()
	if dRows <= dCols {
		t.Fatalf("GridStar diameter should grow with rows: rows-heavy %d, cols-heavy %d", dRows, dCols)
	}
}

func TestComponentsAndBipartite(t *testing.T) {
	g := MustNew(6, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 3, V: 4, W: 1}})
	labels, k := g.Components()
	if k != 3 {
		t.Fatalf("Components count = %d, want 3", k)
	}
	if labels[0] != labels[2] || labels[3] != labels[4] || labels[0] == labels[3] || labels[5] == labels[0] {
		t.Fatalf("bad component labels %v", labels)
	}
	if _, ok := g.IsBipartite(); !ok {
		t.Fatal("forest reported non-bipartite")
	}
	if _, ok := Cycle(5).IsBipartite(); ok {
		t.Fatal("odd cycle reported bipartite")
	}
	if side, ok := Cycle(6).IsBipartite(); !ok {
		t.Fatal("even cycle reported non-bipartite")
	} else {
		for i := 0; i < 6; i++ {
			if side[i] == side[(i+1)%6] {
				t.Fatalf("invalid 2-coloring %v", side)
			}
		}
	}
}

func TestSubgraphComponents(t *testing.T) {
	g := Cycle(6)
	keep := make([]bool, g.M())
	keep[0], keep[1] = true, true // edges 0-1, 1-2
	labels, k := g.SubgraphComponents(keep)
	if k != 4 {
		t.Fatalf("component count = %d, want 4", k)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("0,1,2 should share a component: %v", labels)
	}
}

func TestKruskalAgainstBruteForce(t *testing.T) {
	// On small random weighted graphs, compare Kruskal's MST weight with a
	// brute-force minimum over all spanning trees (via edge subsets).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := RandomizeWeights(RandomConnected(6, 0.4, rng), 20, rng)
		mst := g.KruskalMST()
		if len(mst) != g.N()-1 {
			t.Fatalf("MST has %d edges, want %d", len(mst), g.N()-1)
		}
		var mstW Weight
		for _, i := range mst {
			mstW += g.Edge(i).W
		}
		best := bruteForceMSTWeight(g)
		if mstW != best {
			t.Fatalf("Kruskal weight %d, brute force %d", mstW, best)
		}
	}
}

func bruteForceMSTWeight(g *Graph) Weight {
	m := g.M()
	n := g.N()
	best := Weight(1 << 60)
	for mask := 0; mask < 1<<m; mask++ {
		if popcount(mask) != n-1 {
			continue
		}
		dsu := NewDSU(n)
		var w Weight
		ok := true
		cnt := 0
		for i := 0; i < m; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			e := g.Edge(i)
			if !dsu.Union(e.U, e.V) {
				ok = false
				break
			}
			w += e.W
			cnt++
		}
		if ok && cnt == n-1 && w < best {
			best = w
		}
	}
	return best
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestDijkstraAgainstBFSOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := RandomConnected(50, 0.08, rng)
	dist := g.Dijkstra(0)
	bfs := g.BFSFrom(0)
	for v := 0; v < g.N(); v++ {
		if dist[v] != int64(bfs[v]) {
			t.Fatalf("node %d: dijkstra %d, bfs %d", v, dist[v], bfs[v])
		}
	}
}

func TestStoerWagnerOnKnownGraphs(t *testing.T) {
	// A path's min cut is its lightest edge.
	g := MustNew(4, []Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 7}})
	w, side := g.StoerWagnerMinCut()
	if w != 2 {
		t.Fatalf("path min cut = %d, want 2", w)
	}
	set := make(map[int]bool, len(side))
	for _, v := range side {
		set[v] = true
	}
	if got := g.CutWeight(set); got != 2 {
		t.Fatalf("reported side cuts %d, want 2", got)
	}

	// Two triangles joined by a single light edge.
	g2 := MustNew(6, []Edge{
		{U: 0, V: 1, W: 10}, {U: 1, V: 2, W: 10}, {U: 0, V: 2, W: 10},
		{U: 3, V: 4, W: 10}, {U: 4, V: 5, W: 10}, {U: 3, V: 5, W: 10},
		{U: 2, V: 3, W: 3},
	})
	w2, _ := g2.StoerWagnerMinCut()
	if w2 != 3 {
		t.Fatalf("barbell min cut = %d, want 3", w2)
	}
}

func TestStoerWagnerAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		g := RandomizeWeights(RandomConnected(7, 0.4, rng), 10, rng)
		got, _ := g.StoerWagnerMinCut()
		want := bruteForceMinCut(g)
		if got != want {
			t.Fatalf("trial %d: StoerWagner %d, brute force %d", trial, got, want)
		}
	}
}

func bruteForceMinCut(g *Graph) Weight {
	n := g.N()
	best := Weight(1 << 60)
	for mask := 1; mask < (1<<n)-1; mask++ {
		side := make(map[int]bool, n)
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				side[v] = true
			}
		}
		if w := g.CutWeight(side); w < best {
			best = w
		}
	}
	return best
}

func TestValidatePartition(t *testing.T) {
	g := Path(6)
	if err := ValidatePartition(g, []int{0, 0, 0, 1, 1, 1}); err != nil {
		t.Fatalf("contiguous partition rejected: %v", err)
	}
	if err := ValidatePartition(g, []int{0, 1, 0, 1, 0, 1}); err == nil {
		t.Fatal("disconnected partition accepted")
	}
	if err := ValidatePartition(g, []int{0, 0}); err == nil {
		t.Fatal("short partition accepted")
	}
}

func TestRandomConnectedPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		g := RandomConnected(40, 0.07, rng)
		k := 1 + rng.Intn(10)
		parts := RandomConnectedPartition(g, k, rng)
		if err := ValidatePartition(g, parts); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, got := NormalizeParts(parts); got > k {
			t.Fatalf("trial %d: got %d parts, want <= %d", trial, got, k)
		}
	}
}

func TestPartitionHelpers(t *testing.T) {
	parts := []int{5, 5, 9, 9, 9}
	sizes := PartSizes(parts)
	if sizes[5] != 2 || sizes[9] != 3 {
		t.Fatalf("PartSizes = %v", sizes)
	}
	norm, k := NormalizeParts(parts)
	if k != 2 {
		t.Fatalf("NormalizeParts count = %d, want 2", k)
	}
	if norm[0] != 0 || norm[2] != 1 {
		t.Fatalf("NormalizeParts = %v", norm)
	}
	if got := SingletonPartition(3); got[0] == got[1] {
		t.Fatalf("SingletonPartition = %v", got)
	}
	if got := WholePartition(3); got[0] != got[2] {
		t.Fatalf("WholePartition = %v", got)
	}
	stripes := StripePartition(2, 3)
	if stripes[0] != stripes[2] || stripes[0] == stripes[3] {
		t.Fatalf("StripePartition = %v", stripes)
	}
	ipp := InterleavedPathParts(6, 3)
	if ipp[0] != ipp[1] || ipp[1] == ipp[2] {
		t.Fatalf("InterleavedPathParts = %v", ipp)
	}
}

func TestGridStarRowParts(t *testing.T) {
	g := GridStar(3, 4)
	parts := GridStarRowParts(3, 4)
	if err := ValidatePartition(g, parts); err != nil {
		t.Fatalf("row partition invalid: %v", err)
	}
	if parts[g.N()-1] == parts[0] {
		t.Fatal("apex shares a part with the grid")
	}
}

func TestReweightAndRandomizeWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := RandomizeWeights(Grid(3, 3), 100, rng)
	for i := 0; i < g.M(); i++ {
		w := g.Edge(i).W
		if w < 1 || w > 100 {
			t.Fatalf("edge %d weight %d out of range", i, w)
		}
	}
	doubled, err := g.Reweight(func(_ int, e Edge) Weight { return 2 * e.W })
	if err != nil {
		t.Fatal(err)
	}
	if doubled.TotalWeight() != 2*g.TotalWeight() {
		t.Fatal("Reweight did not double total weight")
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(7)
	if got := g.Eccentricity(0); got != 6 {
		t.Fatalf("Eccentricity(0) = %d, want 6", got)
	}
	if got := g.Eccentricity(3); got != 3 {
		t.Fatalf("Eccentricity(3) = %d, want 3", got)
	}
}

func TestDeepPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	graphs := []*Graph{
		Path(100), Grid(10, 10), Star(20), RandomConnected(80, 0.05, rng), Torus(8, 8),
	}
	for gi, g := range graphs {
		for _, segLen := range []int{1, 5, 12} {
			parts := DeepPartition(g, segLen)
			if err := ValidatePartition(g, parts); err != nil {
				t.Fatalf("graph %d segLen %d: %v", gi, segLen, err)
			}
			sizes := PartSizes(parts)
			small := 0
			for _, s := range sizes {
				if s < segLen {
					small++
				}
			}
			if small > 1 {
				t.Fatalf("graph %d segLen %d: %d parts below the size floor", gi, segLen, small)
			}
		}
	}
}

func TestDeepPartitionMakesDeepParts(t *testing.T) {
	// On a grid, D ~ 2*side but DeepPartition segments can be much deeper.
	g := Grid(12, 12)
	parts := DeepPartition(g, 48)
	sizes := PartSizes(parts)
	for p, s := range sizes {
		if s >= 48 {
			return // at least one genuinely deep part exists
		}
		_ = p
	}
	t.Fatal("no part reached the requested depth")
}
