package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// edgeFingerprint serializes the exact edge stream for bit-identity checks.
func edgeFingerprint(g *Graph) string {
	s := ""
	g.ForEdges(func(_ int, e Edge) bool {
		s += fmt.Sprintf("%d-%d:%d;", e.U, e.V, e.W)
		return true
	})
	return s
}

func TestPowerLawShape(t *testing.T) {
	const n = 2000
	g := PowerLaw(n, 4, 2.5, rand.New(rand.NewSource(1)))
	if g.N() != n {
		t.Fatalf("n = %d, want %d", g.N(), n)
	}
	if !g.Connected() {
		t.Fatal("PowerLaw graph is not connected")
	}
	// Average degree lands near the target (the tree adds ~2, caps remove
	// a little); mostly this guards against the sampler silently emitting
	// almost no Chung-Lu edges.
	avg := float64(2*g.M()) / float64(n)
	if avg < 3 || avg > 9 {
		t.Fatalf("average degree %.2f implausible for avgDeg=4 + tree", avg)
	}
	// The defining property: a heavy hub. Node 0 carries the largest
	// weight; its degree must tower over the average.
	if d := g.Degree(0); float64(d) < 5*avg {
		t.Errorf("hub degree %d is not skewed (avg %.2f)", d, avg)
	}
	// Degrees skew low: the median node stays near tree+tail degree even
	// though the hub is an order of magnitude above the average.
	small := 0
	for v := 0; v < n; v++ {
		if g.Degree(v) <= 4 {
			small++
		}
	}
	if small < n/2 {
		t.Errorf("only %d/%d nodes have degree <= 4; tail not power-law-ish", small, n)
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a := PowerLaw(500, 4, 2.5, rand.New(rand.NewSource(7)))
	b := PowerLaw(500, 4, 2.5, rand.New(rand.NewSource(7)))
	c := PowerLaw(500, 4, 2.5, rand.New(rand.NewSource(8)))
	if edgeFingerprint(a) != edgeFingerprint(b) {
		t.Error("same seed produced different PowerLaw graphs")
	}
	if edgeFingerprint(a) == edgeFingerprint(c) {
		t.Error("different seeds produced identical PowerLaw graphs")
	}
}

func TestPowerLawDegenerate(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		g := PowerLaw(n, 4, 2.5, rand.New(rand.NewSource(1)))
		if g.N() != n {
			t.Errorf("n=%d: got %d nodes", n, g.N())
		}
	}
	mustPanic(t, "alpha", func() { PowerLaw(10, 4, 2.0, rand.New(rand.NewSource(1))) })
	mustPanic(t, "avgDeg", func() { PowerLaw(10, 0, 2.5, rand.New(rand.NewSource(1))) })
}

func TestPrefAttachShape(t *testing.T) {
	const n, m = 1500, 3
	g := PrefAttach(n, m, rand.New(rand.NewSource(1)))
	if g.N() != n {
		t.Fatalf("n = %d, want %d", g.N(), n)
	}
	if want := m*(m+1)/2 + (n-m-1)*m; g.M() != want {
		t.Fatalf("m = %d, want exactly %d", g.M(), want)
	}
	if !g.Connected() {
		t.Fatal("PrefAttach graph is not connected")
	}
	// Every non-seed node attaches to m distinct earlier nodes.
	for v := m + 1; v < n; v++ {
		if g.Degree(v) < m {
			t.Fatalf("node %d has degree %d < m=%d", v, g.Degree(v), m)
		}
	}
	// Preferential attachment concentrates degree on the early nodes.
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(2*g.M()) / float64(n)
	if float64(maxDeg) < 5*avg {
		t.Errorf("max degree %d is not skewed (avg %.2f)", maxDeg, avg)
	}
}

func TestPrefAttachDeterministic(t *testing.T) {
	a := PrefAttach(400, 2, rand.New(rand.NewSource(3)))
	b := PrefAttach(400, 2, rand.New(rand.NewSource(3)))
	c := PrefAttach(400, 2, rand.New(rand.NewSource(4)))
	if edgeFingerprint(a) != edgeFingerprint(b) {
		t.Error("same seed produced different PrefAttach graphs")
	}
	if edgeFingerprint(a) == edgeFingerprint(c) {
		t.Error("different seeds produced identical PrefAttach graphs")
	}
}

func TestPrefAttachDegenerate(t *testing.T) {
	// n == m+1 is the bare clique.
	g := PrefAttach(4, 3, rand.New(rand.NewSource(1)))
	if g.M() != 6 {
		t.Errorf("clique-only PrefAttach has m=%d, want 6", g.M())
	}
	mustPanic(t, "m", func() { PrefAttach(5, 0, rand.New(rand.NewSource(1))) })
	mustPanic(t, "n", func() { PrefAttach(3, 3, rand.New(rand.NewSource(1))) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}
