// Package graph provides the static undirected graphs on which the CONGEST
// simulator runs, generators for every graph family the paper's results are
// parameterized by, and sequential reference algorithms used as test oracles.
//
// Nodes are indexed 0..N-1. Each node's incident edges are numbered by local
// "ports" 0..deg-1, matching the KT0 CONGEST model in which a node initially
// knows only its own ID and its ports. Edge weights are positive integers in
// [1, poly(n)], as in the paper.
//
// Adjacency is stored in compressed sparse row (CSR) form: flat int32
// arrays indexed by global half-edge number rowStart[v]+p. Ports of one node
// are contiguous, so port iteration is a linear scan and the CONGEST engine
// can address its per-edge message slots by the same offsets (see
// internal/congest). The port-based accessors are thin views over the CSR
// arrays; hot loops should use ForPorts or CSR() rather than calling
// Neighbor/EdgeIndex per port, and edge iteration should use ForEdges
// rather than the copying Edges.
//
// Graphs are constructed through Builder (NewBuilder / AddEdge / Finish), a
// streaming O(n + m) path with no hash maps: degrees are counted as edges
// arrive, validation is inline, duplicate detection is a per-row scan of
// the filled CSR, and Finish adopts the streamed edge list without copying.
// Every generator streams into a Builder sized to its exact edge count;
// New/MustNew remain as thin adapters for callers holding an edge slice.
//
// The generators span both degree regimes the engine is measured on:
// uniform families (Path, Cycle, Grid, Torus, RandomConnected) and skewed
// ones, where few nodes carry a constant fraction of all edges (Star,
// GridStar, and the heavy-tailed PowerLaw and PrefAttach in powerlaw.go).
// External graphs load through LoadEdgeList (load.go), which accepts
// SNAP-style and DIMACS-style edge lists, remaps sparse IDs densely, and
// streams through the same Builder path as the generators.
package graph
