package congest

import (
	"fmt"
	"testing"

	"shortcutpa/internal/graph"
)

// BenchmarkEngineSparse measures the activity-proportional round loop on
// frontier-shaped workloads: protocols where almost every node is asleep
// almost every round, so a round's true work is O(awake + delivered) and
// the pre-sparse O(n + slots) scan was pure overhead. Each family runs in
// both execution modes — mode=sparse is the default engine, mode=dense
// forces SetSparseRounds(false), the full-range scan — so the reported
// ns/round ratio IS the sparse-execution win at that awake fraction.
// Outputs are bit-identical across modes and worker counts (the
// equivalence harness proves it); this benchmark only times them.
//
// The three families bracket the sparse regime:
//
//	walk   a single token hopping down a 100k-node path: one node awake
//	       per round, the engine's sparsest possible schedule
//	wave   a BFS wavefront crossing a 2x50k ladder: a constant-width
//	       frontier (~3 nodes) advancing through a huge sleeping graph
//	retry  16 always-active retriers on a 10k torus broadcasting every
//	       32nd round: the CoreFast faulty-tail shape — a tiny persistent
//	       active set plus periodic wake bursts
//
// `make bench` snapshots these rows into BENCH_<pr>.json, bench-compare's
// sparse-rounds stanza prints the sparse/dense ratios, and
// bench-allocs-check pins the steady-state rows allocation-free (the
// per-op ceilings are whole-phase costs; thousands of rounds per op make
// the per-round allocation budget zero).
func BenchmarkEngineSparse(b *testing.B) {
	// hops bounds every family's activity so one benchmark iteration is one
	// phase of ~hops rounds regardless of graph size.
	const hops = 2048
	families := []struct {
		name string
		g    *graph.Graph
		proc func(n int) NodeProcFunc
	}{
		{
			name: "walk",
			g:    graph.Path(100_000),
			proc: func(n int) NodeProcFunc {
				return func(ctx *Ctx, v int) bool {
					got := false
					ctx.ForRecv(func(_ int, in Incoming) { got = true })
					if (ctx.Round() == 0 && v == 0) || got {
						if v < n-1 && ctx.Round() < hops {
							ctx.Send(ctx.Degree()-1, Message{A: int64(v)})
						}
					}
					return false
				}
			},
		},
		{
			name: "wave",
			g:    graph.Ladder(50_000),
			proc: func(n int) NodeProcFunc {
				dist := make([]int64, n)
				return func(ctx *Ctx, v int) bool {
					if ctx.Round() == 0 {
						dist[v] = -1
						if v == 0 {
							dist[v] = 0
							ctx.Broadcast(Message{A: 0})
						}
						return false
					}
					got := false
				ctx.ForRecv(func(_ int, in Incoming) { got = true })
				if dist[v] < 0 && got {
						dist[v] = ctx.Round()
						if ctx.Round() < hops {
							ctx.Broadcast(Message{A: dist[v]})
						}
					}
					return false
				}
			},
		},
		{
			name: "retry",
			g:    graph.Torus(100, 100),
			proc: func(n int) NodeProcFunc {
				stride := n / 16
				return func(ctx *Ctx, v int) bool {
					if v%stride != 0 || ctx.Round() >= hops {
						return false
					}
					if ctx.Round()%32 == 0 {
						ctx.Broadcast(Message{A: int64(v)})
					}
					return true
				}
			},
		},
	}
	for _, fam := range families {
		for _, mode := range []string{"sparse", "dense"} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("family=%s/mode=%s/workers=%d", fam.name, mode, workers)
				b.Run(name, func(b *testing.B) {
					net := NewNetworkWorkers(fam.g, 42, workers)
					net.SetSparseRounds(mode == "sparse")
					n := fam.g.N()
					proc := fam.proc(n)
					if _, err := net.RunNodes("warmup", proc, hops+16); err != nil {
						b.Fatal(err)
					}
					net.ResetMetrics()
					var rounds, stepped int64
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						cost, err := net.RunNodes("bench", proc, hops+16)
						if err != nil {
							b.Fatal(err)
						}
						rounds += cost.Rounds
						st, _ := net.ActivityStats()
						stepped += st
						net.ResetMetrics()
					}
					b.StopTimer()
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(max(rounds, 1)), "ns/round")
					b.ReportMetric(100*float64(stepped)/float64(max(rounds*int64(n), 1)), "awake%")
				})
			}
		}
	}
}
