package congest

import (
	"math"
	"math/rand"
	"testing"

	"shortcutpa/internal/graph"
)

// checkBounds asserts the structural contract every boundary array shares:
// k+1 entries, bounds[0] = 0, bounds[k] = n, monotone non-decreasing — so
// the shards are contiguous, disjoint, and cover [0, n).
func checkBounds(t *testing.T, bounds []int32, k, n int) {
	t.Helper()
	if len(bounds) != k+1 {
		t.Fatalf("len(bounds) = %d, want %d", len(bounds), k+1)
	}
	if bounds[0] != 0 || bounds[k] != int32(n) {
		t.Fatalf("bounds endpoints %d..%d, want 0..%d", bounds[0], bounds[k], n)
	}
	for w := 0; w < k; w++ {
		if bounds[w] > bounds[w+1] {
			t.Fatalf("bounds not monotone at %d: %v", w, bounds)
		}
	}
}

// TestShardBlockContract pins the uniform node-count split the engine used
// before edge balancing (and NodeRangeBounds still wraps): blocks are
// contiguous, cover [0, n) exactly once, and sizes differ by at most one.
func TestShardBlockContract(t *testing.T) {
	for _, tc := range []struct{ k, n int }{
		{1, 0}, {1, 1}, {1, 17}, {3, 17}, {4, 16}, {7, 100}, {8, 8},
		// k > n: some blocks must be empty, none may overlap or skip.
		{5, 3}, {16, 1}, {4, 0},
	} {
		prev := 0
		minSize, maxSize := tc.n+1, -1
		for i := 0; i < tc.k; i++ {
			lo, hi := shardBlock(i, tc.k, tc.n)
			if lo != prev {
				t.Fatalf("k=%d n=%d: block %d starts at %d, want %d (contiguous cover)", tc.k, tc.n, i, lo, prev)
			}
			if hi < lo {
				t.Fatalf("k=%d n=%d: block %d inverted [%d,%d)", tc.k, tc.n, i, lo, hi)
			}
			if size := hi - lo; size < minSize {
				minSize = size
			}
			if size := hi - lo; size > maxSize {
				maxSize = size
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("k=%d n=%d: blocks end at %d, want %d", tc.k, tc.n, prev, tc.n)
		}
		if maxSize-minSize > 1 {
			t.Fatalf("k=%d n=%d: block sizes range %d..%d, want spread <= 1", tc.k, tc.n, minSize, maxSize)
		}
	}
}

// TestEdgeBalancedBoundsStructure checks the structural contract across
// families, worker counts, and both wave weightings, including the
// degenerate shapes (empty graph, k > n, k < 1 clamped to 1).
func TestEdgeBalancedBoundsStructure(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(1),
		graph.Path(2),
		graph.Star(10),
		graph.Torus(8, 8),
		graph.PowerLaw(500, 4, 2.5, rand.New(rand.NewSource(9))),
	}
	for _, g := range graphs {
		rs := g.CSR().RowStart
		for _, k := range []int{-3, 0, 1, 2, 4, 8, g.N() + 5} {
			for _, nodeCost := range []int64{0, 1} {
				bounds := EdgeBalancedBounds(rs, k, nodeCost)
				wantK := k
				if wantK < 1 {
					wantK = 1
				}
				checkBounds(t, bounds, wantK, g.N())
			}
		}
	}
}

// TestEdgeBalancedBoundsBalance is the acceptance check for the tentpole:
// on n≈10^4 instances at 4 and 8 workers, the heaviest shard's edge mass
// stays within 1.25x the mean — or at the indivisible single-node floor
// when one hub alone outweighs a fair share (a star hub holds half of all
// mass; no node-granular split can beat that). The legacy node-count split
// must violate the same bound on the star, which is what gives the
// criterion teeth.
func TestEdgeBalancedBoundsBalance(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(10000)},
		{"gridstar", graph.GridStar(100, 100)},
		{"powerlaw", graph.PowerLaw(10000, 4, 2.5, rand.New(rand.NewSource(11)))},
		{"torus", graph.Torus(100, 100)},
	}
	for _, fam := range families {
		rs := fam.g.CSR().RowStart
		for _, k := range []int{4, 8} {
			s := MeasureShards(rs, EdgeBalancedBounds(rs, k, 0))
			limit := int64(math.Ceil(1.25 * s.Mean))
			if s.MaxNode > limit {
				limit = s.MaxNode
			}
			if s.Max > limit {
				t.Errorf("%s k=%d: max shard mass %d exceeds limit %d (mean %.0f, max node %d)",
					fam.name, k, s.Max, limit, s.Mean, s.MaxNode)
			}
			if fam.name == "torus" && float64(s.Max) > 1.25*s.Mean {
				// Uniform degree leaves no excuse for the floor.
				t.Errorf("torus k=%d: max shard mass %d > 1.25x mean %.0f", k, s.Max, s.Mean)
			}
		}
	}

	// Teeth: the pre-PR-7 uniform node split on the star puts the hub AND a
	// quarter of the leaves on worker 0, beating even the indivisible floor.
	star := graph.Star(10000)
	rs := star.CSR().RowStart
	legacy := MeasureShards(rs, NodeRangeBounds(star.N(), 4))
	if limit := legacy.MaxNode; legacy.Max <= limit {
		t.Errorf("node-range sharding on star: max %d within floor %d — balance test has no teeth", legacy.Max, limit)
	}
	balanced := MeasureShards(rs, EdgeBalancedBounds(rs, 4, 0))
	if balanced.Max >= legacy.Max {
		t.Errorf("edge-balanced max %d not better than node-range max %d on star", balanced.Max, legacy.Max)
	}
}

// TestMeasureShardsRatio pins the metric on a hand-checkable instance: a
// path of 4 nodes has 3 edges = 6 half-edges, and the k=2 split at node 2
// puts exactly 3 half-edges (degrees 1+2) in each shard.
func TestMeasureShardsRatio(t *testing.T) {
	g := graph.Path(4)
	rs := g.CSR().RowStart
	s := MeasureShards(rs, []int32{0, 2, 4})
	if s.Mass[0] != 3 || s.Mass[1] != 3 {
		t.Fatalf("path masses %v, want [3 3]", s.Mass)
	}
	if s.Max != 3 || s.MaxNode != 2 || s.Mean != 3 {
		t.Fatalf("got Max=%d MaxNode=%d Mean=%.1f, want 3/2/3.0", s.Max, s.MaxNode, s.Mean)
	}
	if r := s.Ratio(); r != 1 {
		t.Fatalf("ratio %.3f, want 1", r)
	}
	// Edgeless graph: mean 0, ratio defined as 1.
	empty := MeasureShards([]int32{0, 0, 0}, []int32{0, 1, 2})
	if r := empty.Ratio(); r != 1 {
		t.Fatalf("edgeless ratio %.3f, want 1", r)
	}
}

// TestShardPlanCacheInvalidation pins the plan cache lifecycle: hit on the
// same worker count, recompute on a different one, dropped by SetWorkers
// (only when k changes) and unconditionally by Reset.
func TestShardPlanCacheInvalidation(t *testing.T) {
	net := NewNetwork(graph.Star(64), 1)
	p4 := net.shardPlan(4)
	if net.shardPlan(4) != p4 {
		t.Fatal("same worker count did not hit the cached plan")
	}
	checkBounds(t, p4.step, 4, 64)
	checkBounds(t, p4.slot, 4, 64)

	p8 := net.shardPlan(8)
	if p8 == p4 || p8.workers != 8 {
		t.Fatal("different worker count did not recompute the plan")
	}

	// SetWorkers invalidates on a *change of setting*: repeating the current
	// setting keeps the cache, moving to a new count drops it.
	net.SetWorkers(8)
	net.shardPlan(8)
	net.SetWorkers(8)
	if net.plan == nil {
		t.Fatal("SetWorkers to the unchanged count dropped the plan")
	}
	net.SetWorkers(4)
	if net.plan != nil {
		t.Fatal("SetWorkers to a new count kept a stale plan")
	}

	net.shardPlan(4)
	net.Reset()
	if net.plan != nil {
		t.Fatal("Reset kept a cached plan")
	}
}

// TestShardPlanMatchesWaves checks that a real parallel phase populates the
// cache with the boundaries the waves then run on, for the latched count.
func TestShardPlanMatchesWaves(t *testing.T) {
	g := graph.GridStar(20, 20)
	net := NewNetwork(g, 5)
	proc := NodeProcFunc(func(ctx *Ctx, v int) bool {
		if ctx.Round() == 0 {
			ctx.Broadcast(Message{A: int64(v)})
			return true
		}
		return false
	})
	if _, err := net.RunNodesParallel("shard-plan", proc, 8, 4); err != nil {
		t.Fatal(err)
	}
	if net.plan == nil || net.plan.workers != 4 {
		t.Fatalf("parallel phase left plan %+v, want cached workers=4", net.plan)
	}
	rs := g.CSR().RowStart
	wantStep := EdgeBalancedBounds(rs, 4, 1)
	wantSlot := EdgeBalancedBounds(rs, 4, 0)
	for i := range wantStep {
		if net.plan.step[i] != wantStep[i] || net.plan.slot[i] != wantSlot[i] {
			t.Fatalf("cached plan diverges from EdgeBalancedBounds at %d: step %v slot %v", i, net.plan.step, net.plan.slot)
		}
	}
}
