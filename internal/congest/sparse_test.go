package congest

import (
	"errors"
	"fmt"
	"testing"

	"shortcutpa/internal/graph"
)

// sparse_test.go covers sparse-activity round execution: the frontier-list
// drain and sender-side dirty tracking that make a round cost O(awake +
// delivered) instead of O(n + slots). Every test here compares a default
// (sparse-enabled) run against the same protocol with SetSparseRounds(false)
// — the dense full-range path that reproduces the pre-sparse engine — and
// requires the complete observable outcome to be bit-identical. The teeth
// are ActivityStats: a comparison only counts if the sparse leg actually
// drained frontier rounds (sparseRounds > 0) while the dense leg took none.

// tokenWalk runs a single token down a path graph: node 0 launches it in
// round 0 (the always-dense first round) and each node forwards it to its
// higher neighbor the round it arrives. After round 0 exactly one node is
// scheduled per round — the sparsest protocol the engine can execute, and
// the shape the frontier queues exist for.
func tokenWalk(t *testing.T, n, workers int, sparse bool, spec string) (string, *Network) {
	t.Helper()
	g := graph.Path(n)
	net := NewNetworkWorkers(g, 7, workers)
	net.SetSparseRounds(sparse)
	if spec != "" {
		sc, err := ParseScenario(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.SetScenario(sc); err != nil {
			t.Fatal(err)
		}
	}
	steps := make([]int64, n)
	hops := make([]int64, n)
	proc := NodeProcFunc(func(ctx *Ctx, v int) bool {
		steps[v]++
		got := int64(-1)
		ctx.ForRecv(func(_ int, in Incoming) { got = in.Msg.A })
		if (ctx.Round() == 0 && v == 0) || got >= 0 {
			hops[v] = ctx.Round() + 1
			if v < n-1 {
				ctx.Send(ctx.Degree()-1, Message{A: int64(v + 1)})
			}
		}
		return false
	})
	cost, err := net.RunNodes("walk", proc, int64(n)+8)
	crashed, dead := net.FaultCounts()
	out := fmt.Sprintf("err=%v cost=%+v faults=%d/%d steps=%v hops=%v",
		err, cost, crashed, dead, steps, hops)
	return out, net
}

// TestSparseMatchesDenseTokenWalk pins bit-identity on the sparse extreme:
// dense-forced and sparse runs across both engines must produce the same
// per-node step counts, arrival rounds, and Metrics, while only the sparse
// legs take the frontier path.
func TestSparseMatchesDenseTokenWalk(t *testing.T) {
	const n = 400
	want, wantNet := tokenWalk(t, n, 1, false, "")
	wantStepped, wantSparse := wantNet.ActivityStats()
	if wantSparse != 0 {
		t.Fatalf("dense-forced run drained %d sparse rounds, want 0", wantSparse)
	}
	for _, workers := range []int{1, 4} {
		for _, sparse := range []bool{false, true} {
			got, net := tokenWalk(t, n, workers, sparse, "")
			if got != want {
				t.Fatalf("workers=%d sparse=%v diverged:\n got %s\nwant %s", workers, sparse, got, want)
			}
			stepped, sparseRounds := net.ActivityStats()
			if stepped != wantStepped {
				t.Fatalf("workers=%d sparse=%v stepped %d, want %d", workers, sparse, stepped, wantStepped)
			}
			if !sparse && sparseRounds != 0 {
				t.Fatalf("workers=%d dense-forced run drained %d sparse rounds", workers, sparseRounds)
			}
			if sparse && sparseRounds < int64(n)/2 {
				t.Fatalf("workers=%d sparse run drained only %d/%d rounds from the frontier",
					workers, sparseRounds, n)
			}
		}
	}
	// The walk steps every node once in round 0, then one node per hop plus
	// the quiescence tail — activity linear in n, not n per round.
	if wantStepped > int64(3*n) {
		t.Fatalf("token walk stepped %d nodes total, want O(n)=%d", wantStepped, 3*n)
	}
}

// pulseRun is the mode-transition workload: beacon nodes (every 17th) stay
// persistently active and broadcast every 8th round, waking a cascade that
// echoes for a few rounds and decays. The frontier repeatedly grows past
// the dense-overflow cap and shrinks back under it, so runs cross the
// sparse<->dense boundary both ways — the adaptive switch is the thing
// under test, not either pure mode.
func pulseRun(t *testing.T, workers int, sparse bool, spec string, abortFirst bool) (string, *Network) {
	t.Helper()
	g := graph.Torus(12, 12)
	net := NewNetworkWorkers(g, 9, workers)
	net.SetSparseRounds(sparse)
	if spec != "" {
		sc, err := ParseScenario(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.SetScenario(sc); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 40
	run := func(name string, budget int64) (string, error) {
		digest := make([]int64, g.N())
		proc := NodeProcFunc(func(ctx *Ctx, v int) bool {
			got := 0
			for _, m := range ctx.RecvMsgs() {
				got++
				digest[v] = digest[v]*1000003 + m.A%1009 + ctx.Round()
			}
			r := ctx.Round()
			if r >= rounds {
				return false
			}
			if v%17 == 0 {
				if r%8 == 7 {
					ctx.Broadcast(Message{A: digest[v] + int64(v)})
				}
				return true
			}
			// Ordinary nodes echo only in the first half of each pulse
			// period, so every cascade decays instead of ping-ponging.
			if got > 0 && r%8 < 4 {
				ctx.Broadcast(Message{A: digest[v]})
			}
			return false
		})
		cost, err := net.RunNodes(name, proc, budget)
		crashed, dead := net.FaultCounts()
		return fmt.Sprintf("err=%v cost=%+v faults=%d/%d digest=%v", err, cost, crashed, dead, digest), err
	}
	if abortFirst {
		// Blow the round budget mid-cascade: the abort leaves the frontier
		// lists, dirty counts, and fault cursor mid-flight, and Reset must
		// rewind all of it.
		_, err := run("pulse/abort", 5)
		var be *BudgetExceededError
		if !errors.As(err, &be) {
			t.Fatalf("abort leg: got %v, want BudgetExceededError", err)
		}
		net.Reset()
	}
	out, err := run("pulse", rounds+8)
	if err != nil {
		t.Fatalf("pulse run: %v", err)
	}
	return out, net
}

// TestSparseMatchesDensePulseCascade pins bit-identity across the
// sparse<->dense adaptive transitions, on both engines.
func TestSparseMatchesDensePulseCascade(t *testing.T) {
	want, _ := pulseRun(t, 1, false, "", false)
	for _, workers := range []int{1, 4} {
		got, net := pulseRun(t, workers, true, "", false)
		if got != want {
			t.Fatalf("workers=%d sparse pulse diverged:\n got %s\nwant %s", workers, got, want)
		}
		if _, sparseRounds := net.ActivityStats(); sparseRounds == 0 {
			t.Fatalf("workers=%d pulse run never took the sparse path", workers)
		}
		if dense, _ := pulseRun(t, workers, false, "", false); dense != want {
			t.Fatalf("workers=%d dense pulse diverged:\n got %s\nwant %s", workers, dense, want)
		}
	}
}

// TestSparseCrashEvictsFrontier pins the fault interaction: a node crashed
// at round r is evicted from the frontier that same round — it neither
// steps nor forwards, whether it was woken (token walk) or persistently
// active (pulse beacon) when the crash landed.
func TestSparseCrashEvictsFrontier(t *testing.T) {
	const n = 400
	// crash=150@150: the token wakes node 150 via the round-149 send, and
	// the crash applies at the round-150 boundary — the node is already in
	// the woken list when it dies. The walk must stop there.
	for _, spec := range []string{"crash=150@150", "crash=150@100"} {
		want, wantNet := tokenWalk(t, n, 1, false, spec)
		if cost := wantNet.Total(); cost.Rounds >= int64(n) {
			t.Fatalf("spec %q: walk ran %d rounds, crash did not stop it", spec, cost.Rounds)
		}
		for _, workers := range []int{1, 4} {
			got, net := tokenWalk(t, n, workers, true, spec)
			if got != want {
				t.Fatalf("spec %q workers=%d diverged:\n got %s\nwant %s", spec, workers, got, want)
			}
			if _, sparseRounds := net.ActivityStats(); sparseRounds < int64(n)/4 {
				t.Fatalf("spec %q workers=%d: only %d sparse rounds", spec, workers, sparseRounds)
			}
		}
	}
	// Beacon 34 is in the persistent-active list when it crashes mid-run;
	// edge 3-4 dies while cascades are crossing it.
	const spec = "crash=34@12;drop=3-4@6"
	want, _ := pulseRun(t, 1, false, spec, false)
	for _, workers := range []int{1, 4} {
		if got, _ := pulseRun(t, workers, true, spec, false); got != want {
			t.Fatalf("faulty pulse workers=%d diverged:\n got %s\nwant %s", workers, got, want)
		}
	}
}

// TestSparseResetRewindsFrontierState aborts a faulty pulse run mid-cascade
// — frontier lists populated, dirty counts nonzero, fault cursor advanced —
// then Resets and reruns. The rerun must be bit-identical to a fresh
// network's run on both engines.
func TestSparseResetRewindsFrontierState(t *testing.T) {
	const spec = "crash=40@9;drop=3-4@6"
	for _, workers := range []int{1, 4} {
		fresh, _ := pulseRun(t, workers, true, spec, false)
		reused, _ := pulseRun(t, workers, true, spec, true)
		if reused != fresh {
			t.Fatalf("workers=%d: post-Reset run diverged from fresh:\n got %s\nwant %s",
				workers, reused, fresh)
		}
	}
}

// TestSparseDegenerateSizes runs tiny graphs (including an edgeless
// single node) through both modes and engines: the frontier caps floor at
// m/8+16 but are clamped to m, so these exercise cap == 0.
func TestSparseDegenerateSizes(t *testing.T) {
	builds := []func() *graph.Graph{
		func() *graph.Graph { return graph.Path(1) },
		func() *graph.Graph { return graph.Path(2) },
		func() *graph.Graph { return graph.Cycle(3) },
	}
	for bi, build := range builds {
		run := func(workers int, sparse bool) string {
			g := build()
			net := NewNetworkWorkers(g, 5, workers)
			net.SetSparseRounds(sparse)
			heard := make([]int64, g.N())
			proc := NodeProcFunc(func(ctx *Ctx, v int) bool {
				for _, m := range ctx.RecvMsgs() {
					heard[v] += m.A
				}
				if ctx.Round() < 2 {
					ctx.Broadcast(Message{A: int64(v + 1)})
					return true
				}
				return false
			})
			cost, err := net.RunNodes("tiny", proc, 8)
			return fmt.Sprintf("err=%v cost=%+v heard=%v", err, cost, heard)
		}
		want := run(1, false)
		for _, workers := range []int{1, 2} {
			for _, sparse := range []bool{false, true} {
				if got := run(workers, sparse); got != want {
					t.Fatalf("graph %d workers=%d sparse=%v: got %s, want %s",
						bi, workers, sparse, got, want)
				}
			}
		}
	}
}

// TestSparseRenormInterplay forces stamp renormalization every 48 rounds
// under a 300-round sparse walk: the woken-list dedup rides the wakeNext
// stamps, which renormStamps rebases, and the frontier lists themselves
// hold plain node indices — a renorm boundary mid-drain must be invisible.
func TestSparseRenormInterplay(t *testing.T) {
	old := stampRenormThreshold
	stampRenormThreshold = 48
	defer func() { stampRenormThreshold = old }()
	const n = 300
	want, wantNet := tokenWalk(t, n, 1, false, "")
	wantStepped, _ := wantNet.ActivityStats()
	for _, workers := range []int{1, 4} {
		got, net := tokenWalk(t, n, workers, true, "")
		if got != want {
			t.Fatalf("workers=%d renorm walk diverged:\n got %s\nwant %s", workers, got, want)
		}
		stepped, sparseRounds := net.ActivityStats()
		if stepped != wantStepped || sparseRounds < int64(n)/2 {
			t.Fatalf("workers=%d renorm walk: stepped %d (want %d), sparse rounds %d",
				workers, stepped, wantStepped, sparseRounds)
		}
	}
}

// TestSetSparseRoundsGuards pins the knob's accessor default and the
// mid-phase panic string.
func TestSetSparseRoundsGuards(t *testing.T) {
	net := NewNetwork(graph.Cycle(4), 3)
	if !net.SparseRounds() {
		t.Fatal("sparse execution should default on")
	}
	net.SetSparseRounds(false)
	if net.SparseRounds() {
		t.Fatal("SetSparseRounds(false) did not latch")
	}
	net.SetSparseRounds(true)

	var msg string
	proc := NodeProcFunc(func(ctx *Ctx, v int) bool {
		if ctx.Round() == 0 && v == 0 {
			func() {
				defer func() { msg = Sprint(recover()) }()
				net.SetSparseRounds(false)
			}()
		}
		return false
	})
	if _, err := net.RunNodes("guard", proc, 4); err != nil {
		t.Fatal(err)
	}
	const want = "congest: SetSparseRounds called while a phase is running"
	if msg != want {
		t.Fatalf("mid-phase panic = %q, want %q", msg, want)
	}
	if !net.SparseRounds() {
		t.Fatal("failed mid-phase toggle must not latch")
	}
}
