package congest

import (
	"testing"

	"shortcutpa/internal/graph"
)

// TestRecvRetainedAcrossRoundsIsPoisoned is the executable form of the Recv
// aliasing contract: the returned slice aliases engine-owned storage and is
// invalidated at the next round's buffer flip. A protocol that retains it
// sees reused memory — latent, because the stale contents often look
// plausible. With debugPoisonRecv the engine overwrites expired views with
// a sentinel, so this test retains a slice on purpose and asserts the
// poison is what it observes one round later.
func TestRecvRetainedAcrossRoundsIsPoisoned(t *testing.T) {
	debugPoisonRecv = true
	defer func() { debugPoisonRecv = false }()

	g := graph.Path(2)
	net := NewNetwork(g, 1)
	var retained []Incoming
	checked := false
	procs := []Proc{
		// Node 0 sends to node 1 in rounds 0 and 1.
		ProcFunc(func(ctx *Ctx) bool {
			if ctx.Round() < 2 {
				ctx.Send(0, Message{A: 42 + ctx.Round()})
				return true
			}
			return false
		}),
		// Node 1 illegally retains its round-1 Recv view and inspects it in
		// round 2.
		ProcFunc(func(ctx *Ctx) bool {
			switch ctx.Round() {
			case 1:
				retained = ctx.Recv()
				if len(retained) != 1 || retained[0].Msg.A != 42 {
					t.Errorf("round 1 Recv = %+v, want one message with A=42", retained)
				}
			case 2:
				checked = true
				if retained[0].Msg.Kind != poisonKind || retained[0].Port != -1 {
					t.Errorf("retained Recv slice still reads %+v after the flip; want poison (the aliasing hazard went undetected)", retained[0])
				}
				if fresh := ctx.Recv(); len(fresh) != 1 || fresh[0].Msg.A != 43 {
					t.Errorf("round 2 fresh Recv = %+v, want one message with A=43", fresh)
				}
			}
			return ctx.Round() < 2
		}),
	}
	if _, err := net.Run("alias", procs, 10); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("retention check never ran")
	}
}

// TestRecvMsgsRetainedAcrossRoundsIsPoisoned extends the retention contract
// to RecvMsgs on both of its paths. The full-occupancy path returns an alias
// of the slot buffer itself, which is retired and poisoned wholesale at the
// flip; the sparse path compacts into the lazy msgBuf, which the flip
// poisons like the Recv view buffer. Either way a retained slice must read
// poisonKind one round later.
func TestRecvMsgsRetainedAcrossRoundsIsPoisoned(t *testing.T) {
	debugPoisonRecv = true
	defer func() { debugPoisonRecv = false }()

	// Path(3): node 0 sends to the middle node every round, node 2 stays
	// silent. The middle node's degree-2 range is therefore sparse (1 of 2
	// slots) — the compaction path — while node 0's own degree-1 range is
	// full whenever the middle node replies — the alias path.
	g := graph.Path(3)
	net := NewNetwork(g, 1)
	var aliasView, sparseView []Message
	checked := 0
	procs := []Proc{
		// Node 0: sends rounds 0-1, retains its (full-range, aliased)
		// round-1 view of the middle node's replies.
		ProcFunc(func(ctx *Ctx) bool {
			switch ctx.Round() {
			case 1:
				aliasView = ctx.RecvMsgs()
				if len(aliasView) != 1 || aliasView[0].A != 100 {
					t.Errorf("round 1 node 0 RecvMsgs = %+v, want one message with A=100", aliasView)
				}
			case 2:
				checked++
				if aliasView[0].Kind != poisonKind {
					t.Errorf("retained full-range RecvMsgs alias still reads %+v after the flip; want poison", aliasView[0])
				}
			}
			if ctx.Round() < 2 {
				ctx.Send(0, Message{A: 7})
				return true
			}
			return false
		}),
		// Middle node: replies to node 0, retains its (sparse, compacted)
		// round-1 view of node 0's sends.
		ProcFunc(func(ctx *Ctx) bool {
			switch ctx.Round() {
			case 1:
				sparseView = ctx.RecvMsgs()
				if len(sparseView) != 1 || sparseView[0].A != 7 {
					t.Errorf("round 1 middle RecvMsgs = %+v, want one message with A=7", sparseView)
				}
			case 2:
				checked++
				if sparseView[0].Kind != poisonKind {
					t.Errorf("retained sparse RecvMsgs view still reads %+v after the flip; want poison", sparseView[0])
				}
			}
			if ctx.Round() < 2 {
				ctx.Send(0, Message{A: 100}) // port 0 leads back to node 0
				return true
			}
			return false
		}),
		ProcFunc(func(ctx *Ctx) bool { return false }),
	}
	if _, err := net.Run("msgs-retain", procs, 10); err != nil {
		t.Fatal(err)
	}
	if checked != 2 {
		t.Fatalf("%d of 2 retention checks ran", checked)
	}
	// The sparse path above is what forces the lazy msgBuf into existence;
	// the compacting Recv buffer was never needed.
	if net.buf.msgBuf == nil {
		t.Error("sparse RecvMsgs did not allocate msgBuf")
	}
	if net.buf.recvBuf != nil {
		t.Error("recvBuf allocated though no Recv call ever compacted")
	}
}

// TestLazyViewBufferAllocation pins the allocation schedule of the two lazy
// view buffers, and the MemFootprint numbers that make it observable:
// ForRecv-only and full-broadcast RecvMsgs protocols stay at the 72 B/slot
// SoA floor forever; the first sparse RecvMsgs adds the 32 B/slot message
// scratch; the first compacting Recv adds the 40 B/slot Incoming view.
func TestLazyViewBufferAllocation(t *testing.T) {
	g := graph.Torus(3, 3) // 9 nodes, degree 4, 36 slots
	net := NewNetwork(g, 2)

	// Phase 1: full broadcast storm read via ForRecv — no view buffer.
	storm := NodeProcFunc(func(ctx *Ctx, v int) bool {
		ctx.ForRecv(func(int, Incoming) {})
		if ctx.Round() < 3 {
			ctx.Broadcast(Message{A: int64(v)})
			return true
		}
		return false
	})
	if _, err := net.RunNodes("forrecv", storm, 10); err != nil {
		t.Fatal(err)
	}
	if net.buf.recvBuf != nil || net.buf.msgBuf != nil {
		t.Fatal("ForRecv-only phase allocated a view buffer")
	}
	if got := net.MemFootprint().BytesPerSlot(); got != 72 {
		t.Fatalf("BytesPerSlot = %v after ForRecv-only traffic, want 72", got)
	}

	// Phase 2: the same storm read via RecvMsgs — full occupancy aliases
	// the slot buffer, so still no view buffer.
	aliasStorm := NodeProcFunc(func(ctx *Ctx, v int) bool {
		for range ctx.RecvMsgs() {
		}
		if ctx.Round() < 3 {
			ctx.Broadcast(Message{A: int64(v)})
			return true
		}
		return false
	})
	if _, err := net.RunNodes("msgs-full", aliasStorm, 10); err != nil {
		t.Fatal(err)
	}
	if net.buf.recvBuf != nil || net.buf.msgBuf != nil {
		t.Fatal("full-occupancy RecvMsgs allocated a view buffer")
	}

	// Phase 3: sparse traffic (only node 0 broadcasts) read via RecvMsgs —
	// receivers with degree > 1 compact, forcing msgBuf, and only msgBuf.
	sparse := NodeProcFunc(func(ctx *Ctx, v int) bool {
		for range ctx.RecvMsgs() {
		}
		if v == 0 && ctx.Round() < 2 {
			ctx.Broadcast(Message{A: 1})
			return true
		}
		return false
	})
	if _, err := net.RunNodes("msgs-sparse", sparse, 10); err != nil {
		t.Fatal(err)
	}
	if net.buf.msgBuf == nil {
		t.Fatal("sparse RecvMsgs did not allocate msgBuf")
	}
	if net.buf.recvBuf != nil {
		t.Fatal("sparse RecvMsgs allocated the Recv view buffer")
	}
	if got := net.MemFootprint().BytesPerSlot(); got != 72+32 {
		t.Fatalf("BytesPerSlot = %v after sparse RecvMsgs, want 104", got)
	}

	// Phase 4: a compacting Recv call — the Incoming view appears.
	recv := NodeProcFunc(func(ctx *Ctx, v int) bool {
		for range ctx.Recv() {
		}
		if v == 0 && ctx.Round() < 2 {
			ctx.Broadcast(Message{A: 1})
			return true
		}
		return false
	})
	if _, err := net.RunNodes("recv", recv, 10); err != nil {
		t.Fatal(err)
	}
	if net.buf.recvBuf == nil {
		t.Fatal("compacting Recv did not allocate recvBuf")
	}
	if got := net.MemFootprint().BytesPerSlot(); got != 72+32+40 {
		t.Fatalf("BytesPerSlot = %v after compacting Recv, want 144", got)
	}
	fp := net.MemFootprint()
	if fp.Slots != 36 || fp.Total() <= fp.SlotBytes {
		t.Fatalf("MemFootprint breakdown inconsistent: %+v", fp)
	}
}

// TestRecvCopySurvivesRounds documents the correct pattern: copying the
// Incoming values out of the view keeps them stable across rounds.
func TestRecvCopySurvivesRounds(t *testing.T) {
	debugPoisonRecv = true
	defer func() { debugPoisonRecv = false }()

	g := graph.Path(2)
	net := NewNetwork(g, 1)
	var copied []Incoming
	checked := false
	procs := []Proc{
		ProcFunc(func(ctx *Ctx) bool {
			if ctx.Round() < 2 {
				ctx.Send(0, Message{A: 7})
				return true
			}
			return false
		}),
		ProcFunc(func(ctx *Ctx) bool {
			switch ctx.Round() {
			case 1:
				copied = append([]Incoming(nil), ctx.Recv()...)
			case 2:
				checked = true
				if len(copied) != 1 || copied[0].Msg.A != 7 {
					t.Errorf("copied messages changed across rounds: %+v", copied)
				}
			}
			return ctx.Round() < 2
		}),
	}
	if _, err := net.Run("copy", procs, 10); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("copy check never ran")
	}
}
