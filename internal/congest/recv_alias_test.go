package congest

import (
	"testing"

	"shortcutpa/internal/graph"
)

// TestRecvRetainedAcrossRoundsIsPoisoned is the executable form of the Recv
// aliasing contract: the returned slice aliases engine-owned storage and is
// invalidated at the next round's buffer flip. A protocol that retains it
// sees reused memory — latent, because the stale contents often look
// plausible. With debugPoisonRecv the engine overwrites expired views with
// a sentinel, so this test retains a slice on purpose and asserts the
// poison is what it observes one round later.
func TestRecvRetainedAcrossRoundsIsPoisoned(t *testing.T) {
	debugPoisonRecv = true
	defer func() { debugPoisonRecv = false }()

	g := graph.Path(2)
	net := NewNetwork(g, 1)
	var retained []Incoming
	checked := false
	procs := []Proc{
		// Node 0 sends to node 1 in rounds 0 and 1.
		ProcFunc(func(ctx *Ctx) bool {
			if ctx.Round() < 2 {
				ctx.Send(0, Message{A: 42 + ctx.Round()})
				return true
			}
			return false
		}),
		// Node 1 illegally retains its round-1 Recv view and inspects it in
		// round 2.
		ProcFunc(func(ctx *Ctx) bool {
			switch ctx.Round() {
			case 1:
				retained = ctx.Recv()
				if len(retained) != 1 || retained[0].Msg.A != 42 {
					t.Errorf("round 1 Recv = %+v, want one message with A=42", retained)
				}
			case 2:
				checked = true
				if retained[0].Msg.Kind != poisonKind || retained[0].Port != -1 {
					t.Errorf("retained Recv slice still reads %+v after the flip; want poison (the aliasing hazard went undetected)", retained[0])
				}
				if fresh := ctx.Recv(); len(fresh) != 1 || fresh[0].Msg.A != 43 {
					t.Errorf("round 2 fresh Recv = %+v, want one message with A=43", fresh)
				}
			}
			return ctx.Round() < 2
		}),
	}
	if _, err := net.Run("alias", procs, 10); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("retention check never ran")
	}
}

// TestRecvCopySurvivesRounds documents the correct pattern: copying the
// Incoming values out of the view keeps them stable across rounds.
func TestRecvCopySurvivesRounds(t *testing.T) {
	debugPoisonRecv = true
	defer func() { debugPoisonRecv = false }()

	g := graph.Path(2)
	net := NewNetwork(g, 1)
	var copied []Incoming
	checked := false
	procs := []Proc{
		ProcFunc(func(ctx *Ctx) bool {
			if ctx.Round() < 2 {
				ctx.Send(0, Message{A: 7})
				return true
			}
			return false
		}),
		ProcFunc(func(ctx *Ctx) bool {
			switch ctx.Round() {
			case 1:
				copied = append([]Incoming(nil), ctx.Recv()...)
			case 2:
				checked = true
				if len(copied) != 1 || copied[0].Msg.A != 7 {
					t.Errorf("copied messages changed across rounds: %+v", copied)
				}
			}
			return ctx.Round() < 2
		}),
	}
	if _, err := net.Run("copy", procs, 10); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("copy check never ran")
	}
}
