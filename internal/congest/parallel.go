package congest

import "slices"

// The parallel engine executes the same round structure as the sequential
// one, but shards node stepping across a persistent worker pool.
// Determinism is preserved by construction:
//
//   - each node is stepped by exactly one worker, so per-node state,
//     per-node PRNG streams, and the node's Recv view are touched by a
//     single goroutine;
//   - Send writes straight into the receiver-side edge slot. Every slot is
//     owned by exactly one (sender, port) pair, so workers write disjoint
//     memory and the old per-sender outbox + sender-index merge pass does
//     not exist: delivery order is reconstructed structurally by Recv's
//     neighbor-ordered slot walk, on either engine;
//   - the wake stamps a sequential Send writes inline need a single writer
//     per receiver; with concurrent senders they are derived instead in a
//     second barrier phase after stepping: every worker scans the freshly
//     stamped slots of its own receiver shard and stamps those receivers.
//     Writes stay disjoint (each worker stamps only its shard), reads see
//     every worker's sends (the coordinator's done/start handoffs order
//     them), and the coordinator keeps no O(n+2m) serial section — its
//     per-round serial work is O(workers) channel operations.
//
// The result is bit-identical to the sequential engine: same outputs, same
// Rounds/Messages, same PRNG streams.
//
// The pool itself is job-generic: a wave hands every worker the same
// func(i) and barriers on their reports. The round loop runs its two waves
// (step, wake scan) through it, and NewNetwork reuses the identical
// machinery to shard the one-time slot-geometry fill (fillGeometryParallel)
// instead of growing a second pool implementation.

// job is one wave's work for worker i: process shard i, report counters.
// Waves barrier on all workers, so a job must touch only shard-i state (or
// read-only shared state) — the same discipline the round waves follow.
type job func(i int) shardDone

// shardDone is one worker's end-of-wave report: how many messages its
// nodes sent, how many of them stepped active, how many stepped at all
// (the awake% counter), whether the shard's frontier recording overflowed
// its cap (forcing the next round dense), and a recovered protocol panic
// if any. Waves that only mutate shard state report zeroes.
type shardDone struct {
	sent    int64
	active  int64
	stepped int64
	over    bool
	rec     any
}

// pool is a worker pool of parked goroutines: workers park between waves
// on their start channel rather than being respawned (phases run for
// thousands of rounds). The start/done channel handoffs also establish the
// happens-before edges between a wave's shard writes and the next wave's
// reads — the ordering both the wake scan and the geometry fill's
// count → prefix → place pipeline rely on.
type pool struct {
	start []chan job
	done  chan shardDone // one report per worker per wave
}

// newPool starts k parked workers. Every job runs under a recover so a
// panic inside a shard (a protocol model violation) is reported, not lost
// to a dead goroutine; wave re-raises it on the coordinator.
func newPool(k int) *pool {
	p := &pool{done: make(chan shardDone, k)}
	for i := 0; i < k; i++ {
		ch := make(chan job, 1)
		p.start = append(p.start, ch)
		go func(i int) {
			for j := range ch {
				p.done <- runShard(j, i)
			}
		}(i)
	}
	return p
}

// runShard runs one worker's share of a wave, converting a panic into a
// report the coordinator re-raises.
func runShard(j job, i int) (res shardDone) {
	defer func() {
		if r := recover(); r != nil {
			res.rec = r
		}
	}()
	return j(i)
}

// wave runs one job on every worker and blocks until all report,
// accumulating the reports (counters summed, overflow flags ORed). The
// first recovered panic is re-raised on the caller's goroutine, after the
// barrier, exactly as the sequential engine would surface it.
func (p *pool) wave(j job) (sum shardDone) {
	for _, ch := range p.start {
		ch <- j
	}
	for range p.start {
		res := <-p.done
		sum.sent += res.sent
		sum.active += res.active
		sum.stepped += res.stepped
		sum.over = sum.over || res.over
		if res.rec != nil && sum.rec == nil {
			sum.rec = res.rec
		}
	}
	if sum.rec != nil {
		panic(sum.rec)
	}
	return sum
}

// close releases the pool's workers.
func (p *pool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}

// RunPool runs fn(w) for w = 0..k-1 on the job-generic worker pool and
// blocks until every worker returns. It is the exported face of the same
// machinery the round waves and the parallel geometry fill run on, for
// callers that want to drain their own work queue over pooled goroutines
// (the internal/bench job runner shards a multi-run serving queue this
// way). A panic inside any fn is re-raised on the caller's goroutine after
// the barrier, exactly as a protocol panic inside a round wave would be.
// k <= 1 calls fn(0) inline — no goroutines, same contract.
func RunPool(k int, fn func(worker int)) {
	if k <= 1 {
		fn(0)
		return
	}
	p := newPool(k)
	defer p.close()
	p.wave(func(i int) shardDone {
		fn(i)
		return shardDone{}
	})
}

// shardBlock returns worker i's contiguous block [lo, hi) of a uniform
// node-count split of n items into k shards. The split is floor division
// (lo = i*n/k), so blocks are contiguous, cover [0, n) exactly, and their
// sizes differ by at most one node — the remainder n mod k is spread one
// node apiece over the blocks, not piled on the last; with k > n exactly
// n blocks hold one node and the rest are empty, and n = 0 yields k empty
// blocks (shard_test.go pins this contract). Contiguity makes every
// per-node array (active, recvLen, wakeNext, ...) write in disjoint
// cache-line ranges per worker.
//
// The engine's waves no longer shard on this uniform split — equal node
// counts serialize a worker on any hub-heavy family — but it remains the
// baseline the shard-balance metric compares against (NodeRangeBounds)
// and the item split for weightless work.
func shardBlock(i, k, n int) (lo, hi int) {
	return i * n / k, (i + 1) * n / k
}

// shardCtx is one worker's phase-lifetime Ctx, message counter, and
// frontier-list lengths. Each is a separate heap object, padded past a
// cache line, so two workers' ctx.v and sent stores (written on every node
// step) never share a line. The list lengths follow the same ownership as
// the lists they measure: nActCur/nActNext and nDirty are written only by
// the owning worker during a wave, nWokeCur/nWokeNext only by the
// coordinator between waves (the merge), with the wave barrier ordering
// the handoffs.
type shardCtx struct {
	ctx       Ctx
	sent      int64
	nActCur   int32 // entries in this shard's current active-frontier segment
	nActNext  int32 // entries appended to the next segment this round
	nWokeCur  int32 // entries in this shard's current woken-frontier segment
	nWokeNext int32 // entries the coordinator merge appended for next round
	nDirty    int32 // receivers recorded in this worker's dirty segment (counts past the cap on overflow)
	_         [96]byte
}

func (st *runState) ensurePool() {
	if st.pool != nil {
		return
	}
	st.pool = newPool(st.workers)
	// Edge-balanced shard boundaries, one binary-search pass per phase at
	// most (the network caches the plan per worker count; see shard.go).
	plan := st.net.shardPlan(st.workers)
	st.stepBounds, st.slotBounds = plan.step, plan.slot
	// The sender-side dirty buffer: one int32 per slot, segmented below by
	// each worker's half-edge span (a worker's sends never exceed its
	// span, so a segment can never be short — only its frontierCap prefix
	// is recorded, the rest is declared overflow). Allocated on the first
	// parallel phase of the network's life and reused forever; sequential
	// networks never pay it. The atomic flag publishes the slice header
	// for MemFootprint, which may read concurrently with a phase.
	b := st.engineBuffers
	if b.dirty == nil {
		b.dirty = make([]int32, b.slots)
		b.dirtyReady.Store(true)
	}
	// Per-worker Ctxs, hoisted to phase setup: a per-wave Ctx (and its
	// escaping sent counter) would cost two allocations per worker per
	// round — the parallel engine's last per-round allocations.
	rs := st.net.csr.RowStart
	st.shardCtxs = make([]*shardCtx, st.workers)
	for i := range st.shardCtxs {
		sc := &shardCtx{}
		base := int(rs[st.stepBounds[i]])
		span := int(rs[st.stepBounds[i+1]]) - base
		seg := b.dirty[base : base+frontierCap(span, st.denseOnly)]
		sc.ctx = Ctx{st: st, sent: &sc.sent, dirty: seg, nd: &sc.nDirty}
		st.shardCtxs[i] = sc
	}
	// The two round waves are hoisted closures: allocating them per round
	// would put the coordinator back on the per-round allocation budget the
	// flat engine is designed to keep at zero.
	st.stepJob = st.stepShard
	st.scanJob = func(i int) shardDone {
		st.scanShard(i)
		return shardDone{}
	}
}

// close releases the pool's workers; runs are resumable afterwards only via
// a new runState.
func (st *runState) close() {
	if st.pool == nil {
		return
	}
	st.pool.close()
	st.pool = nil
}

// stepShard steps worker i's nodes and reports its message, active, and
// stepped counts. Its block comes from the sender-weighted edge-balanced
// boundaries (mass = 1 + deg), so a hub's send work does not serialize a
// worker that also owns an equal count of other nodes. Dense rounds scan
// the whole block; sparse rounds drain the shard's segment of the frontier
// lists (sorting the woken segment first — it was appended by the
// coordinator merge in wakeNext-stamp order, and the drain needs ascending
// node order). Either way the shard's next active segment is appended and
// its length published for the next round.
func (st *runState) stepShard(i int) (res shardDone) {
	lo, hi := int(st.stepBounds[i]), int(st.stepBounds[i+1])
	sc := st.shardCtxs[i]
	sc.sent = 0
	actNext := st.factNext[lo : lo+frontierCap(hi-lo, st.denseOnly)]
	if st.dense {
		res.active, res.stepped = st.stepRange(&sc.ctx, lo, hi, actNext)
	} else {
		woke := st.fwokeCur[lo : lo+int(sc.nWokeCur)]
		slices.Sort(woke)
		act := st.factCur[lo : lo+int(sc.nActCur)]
		res.active, res.stepped = st.stepFrontier(&sc.ctx, act, woke, actNext)
	}
	sc.nActNext = int32(min(res.active, int64(len(actNext))))
	res.over = res.active > int64(len(actNext))
	res.sent = sc.sent
	return res
}

// mergeDirty is the sparse wake derivation: the coordinator walks every
// worker's dirty segment (the receivers of this round's slot writes, in
// send order), stamps each first-seen receiver's wakeNext — exactly the
// stamp the scan wave would derive, deduplicated by the stamp itself — and
// appends it to the receiver shard's woken-frontier segment for next
// round's drain. Runs between waves, so it is the single wakeNext writer;
// cost is O(delivered), the whole point. Returns whether any woken segment
// overflowed its cap (the entry is dropped but still stamped, and the next
// round falls back dense, so nothing is lost).
//
// Callers must ensure no dirty segment itself overflowed (nDirty past the
// segment length) before merging: an overflowed segment is missing
// receivers, and the scan wave is the fallback that derives their stamps.
func (st *runState) mergeDirty() (overflow bool) {
	b := st.engineBuffers
	snow := st.snow
	sb := st.stepBounds
	rs := st.net.csr.RowStart
	k := len(st.shardCtxs)
	for w := 0; w < k; w++ {
		sc := st.shardCtxs[w]
		nd := int(sc.nDirty)
		if nd == 0 {
			continue
		}
		seg := b.dirty[rs[sb[w]]:]
		for _, to := range seg[:nd] {
			if b.wakeNext[to] != snow {
				b.wakeNext[to] = snow
				// Receiver to's shard: the unique i with sb[i] <= to < sb[i+1].
				// Hand-rolled binary search — a sort.Search closure here would
				// put an allocation back in the steady-state round loop.
				lo, hi := 0, k-1
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if sb[mid+1] > to {
						hi = mid
					} else {
						lo = mid + 1
					}
				}
				tc := st.shardCtxs[lo]
				slo, shi := int(sb[lo]), int(sb[lo+1])
				if int(tc.nWokeNext) < frontierCap(shi-slo, st.denseOnly) {
					st.fwokeNext[slo+int(tc.nWokeNext)] = to
				} else {
					overflow = true
				}
				tc.nWokeNext++
			}
		}
	}
	return overflow
}

// scanShard is the second barrier phase of a parallel round: worker i
// stamps each node of its own shard that received a delivery this round, by
// scanning the node's freshly written slot stamps. Receiver-sharded, so the
// wakeNext writes are disjoint across workers; the stamps read were written
// by all workers during the step phase, ordered by the coordinator's
// barrier in between.
// Receiver-slot-weighted boundaries: the scan's cost is the slots walked,
// so blocks hold equal slot mass, not equal node counts.
func (st *runState) scanShard(i int) {
	lo, hi := int(st.slotBounds[i]), int(st.slotBounds[i+1])
	rs := st.net.csr.RowStart
	snow := st.snow
	for v := lo; v < hi; v++ {
		for h := rs[v]; h < rs[v+1]; h++ {
			if st.nextStamp[h] == snow {
				st.wakeNext[v] = snow
				break
			}
		}
	}
}

// stepParallel runs one synchronous round on the worker pool and returns
// the number of messages sent.
func (st *runState) stepParallel() int64 {
	st.started = true
	// Stamp-epoch renormalization and fault application both run on the
	// coordinator before the step wave starts — the identical boundary the
	// sequential engine uses — so every worker observes the same stamps
	// and crashed/dead state for the whole round and the in-flight
	// deliveries a fault destroys are gone on both engines.
	if st.snow >= stampRenormThreshold {
		st.renormStamps()
	}
	st.applyFaults()
	st.ensurePool()
	if !st.dense {
		st.net.sparseRounds++
	}
	res := st.pool.wave(st.stepJob)
	st.activeCount = res.active
	st.net.stepped += res.stepped
	overflow := res.over
	// Wake derivation. The sequential engine writes no wake stamps when
	// nothing was sent, so skipping everything on sent == 0 is exact (the
	// empty woken lists are then complete, not stale). Otherwise: if every
	// worker's dirty segment held all its receivers, the coordinator merge
	// stamps and enqueues them in O(delivered); if any segment overflowed
	// its cap, fall back to the classic slot-scan wave — it derives the
	// same stamps from the slots themselves, but builds no woken lists, so
	// the next round is dense. The caps make that fallback cheap to reach:
	// a worker stops appending after ~span/8 entries, so a storm round
	// pays O(cap) recording on top of the scan it was already doing.
	if res.sent > 0 {
		dirtyOver := false
		rs := st.net.csr.RowStart
		for w, sc := range st.shardCtxs {
			span := int(rs[st.stepBounds[w+1]]) - int(rs[st.stepBounds[w]])
			if int(sc.nDirty) > frontierCap(span, st.denseOnly) {
				dirtyOver = true
				break
			}
		}
		if dirtyOver {
			st.pool.wave(st.scanJob)
			overflow = true
		} else if st.mergeDirty() {
			overflow = true
		}
	}
	// Retire this round's recording state: dirty counters restart, each
	// shard's next-lists become its current lists. With the active count
	// summed per shard above and quiescence read off it, the coordinator's
	// serial work this round was O(workers + delivered) — no per-node or
	// per-slot serial pass anywhere.
	for _, sc := range st.shardCtxs {
		sc.nDirty = 0
		sc.nActCur, sc.nActNext = sc.nActNext, 0
		sc.nWokeCur, sc.nWokeNext = sc.nWokeNext, 0
	}
	st.flip()
	st.dense = st.denseOnly || overflow
	st.inFlight = res.sent
	st.round++
	st.snow++
	return res.sent
}

// minParallelFillNodes gates the sharded geometry fill: below this the
// whole fill costs less than spinning up a pool.
const minParallelFillNodes = 1 << 14

// fillGeometryParallel is the sharded slot-geometry fill: the same
// destSlot/portSlot tables the sequential pass in fillGeometry produces,
// computed in three waves on a temporary pool. The sequential pass is a
// running-counter scan (slot of half-edge u→v is RowStart[v] + how many
// half-edges into v precede it in ascending sender order), which
// parallelizes by splitting that count per sender shard:
//
//	count:  worker w counts, per receiver v, the half-edges into v from
//	        its own sender block — cnt[w][v], disjoint by w.
//	prefix: worker w, now sharded by receiver, converts each of its
//	        receivers' count columns to exclusive prefix sums — cnt[w][v]
//	        becomes the fill offset where sender block w starts in v's
//	        slot range. Disjoint by v.
//	place:  worker w rescans its sender block in ascending order, placing
//	        half-edge u→v at RowStart[v] + cnt[w][v]++ — per-shard fill
//	        counters, advanced exactly as the sequential scan would.
//
// Every slot value equals the sequential pass's: sender blocks are
// ascending and contiguous, so block-w-start + within-block-rank is the
// global ascending-sender rank. Writes are disjoint (destSlot by sender
// half-edge, portSlot by the receiver half-edge paired to it — a
// bijection), and the wave barriers order count → prefix → place.
//
// All three waves shard on the receiver-slot-weighted edge-balanced
// boundaries (shard.go): every wave's cost is the half-edges it touches,
// so the same hub that would serialize a step worker would serialize the
// fill's count and place waves under a uniform node split. The slot-value
// argument above needs only contiguous ascending sender blocks, which any
// boundary array provides; the prefix wave may use any receiver partition
// and reuses the same one.
func (n *Network) fillGeometryParallel(workers int) {
	nodes := n.N()
	rs := n.csr.RowStart
	bounds := n.shardPlan(workers).slot
	cnt := make([]int32, workers*nodes) // cnt[w*nodes+v]
	p := newPool(workers)
	defer p.close()
	p.wave(func(w int) shardDone {
		row := cnt[w*nodes : (w+1)*nodes]
		lo, hi := int(bounds[w]), int(bounds[w+1])
		for h := rs[lo]; h < rs[hi]; h++ {
			row[n.csr.PortTo[h]]++
		}
		return shardDone{}
	})
	p.wave(func(w int) shardDone {
		lo, hi := int(bounds[w]), int(bounds[w+1])
		for v := lo; v < hi; v++ {
			var off int32
			for w2 := 0; w2 < workers; w2++ {
				c := cnt[w2*nodes+v]
				cnt[w2*nodes+v] = off
				off += c
			}
		}
		return shardDone{}
	})
	p.wave(func(w int) shardDone {
		row := cnt[w*nodes : (w+1)*nodes]
		lo, hi := int(bounds[w]), int(bounds[w+1])
		for u := lo; u < hi; u++ {
			for h := rs[u]; h < rs[u+1]; h++ {
				v := n.csr.PortTo[h]
				slot := rs[v] + row[v]
				row[v]++
				n.destSlot[h] = slot
				n.portSlot[rs[v]+n.csr.PortRev[h]] = slot
				n.slotPort[slot] = n.csr.PortRev[h]
			}
		}
		return shardDone{}
	})
}
