package congest

// The parallel engine executes the same round structure as the sequential
// one, but shards node stepping across a persistent worker pool.
// Determinism is preserved by construction:
//
//   - each node is stepped by exactly one worker, so per-node state,
//     per-node PRNG streams, and the node's Recv view are touched by a
//     single goroutine;
//   - Send writes straight into the receiver-side edge slot. Every slot is
//     owned by exactly one (sender, port) pair, so workers write disjoint
//     memory and the old per-sender outbox + sender-index merge pass does
//     not exist: delivery order is reconstructed structurally by Recv's
//     neighbor-ordered slot walk, on either engine;
//   - after all workers reach the end-of-round barrier, the coordinator
//     scans the freshly stamped slots once to mark which nodes have
//     deliveries (the wake stamps a sequential Send writes inline — with
//     concurrent senders they need a single writer).
//
// The result is bit-identical to the sequential engine: same outputs, same
// Rounds/Messages, same PRNG streams.

// shardDone is one worker's end-of-round report: how many messages its
// nodes sent, and a recovered protocol panic if any.
type shardDone struct {
	sent int64
	rec  any
}

// pool is a phase-lifetime worker pool: workers park between rounds on
// their start channel rather than being respawned every round (phases run
// for thousands of rounds). The start/done channel handoffs also establish
// the happens-before edges between worker stepping and the coordinator's
// wake scan and buffer flip.
type pool struct {
	start []chan struct{}
	done  chan shardDone // one report per worker per round
}

func (st *runState) ensurePool() {
	if st.pool != nil {
		return
	}
	p := &pool{done: make(chan shardDone, st.workers)}
	for i := 0; i < st.workers; i++ {
		ch := make(chan struct{}, 1)
		p.start = append(p.start, ch)
		go func(i int) {
			for range ch {
				p.done <- st.stepShard(i)
			}
		}(i)
	}
	st.pool = p
}

// close releases the pool's workers; runs are resumable afterwards only via
// a new runState.
func (st *runState) close() {
	if st.pool == nil {
		return
	}
	for _, ch := range st.pool.start {
		close(ch)
	}
	st.pool = nil
}

// stepShard steps worker i's nodes and reports its message count plus the
// recovered panic value, if any. The shard is a contiguous block: workers
// then write disjoint cache-line ranges of the per-node arrays (active,
// recvLen, recvRound), at the price of possible imbalance when active
// nodes cluster — acceptable because the engine targets rounds where most
// nodes do work.
func (st *runState) stepShard(i int) (res shardDone) {
	defer func() { res.rec = recover() }()
	n := st.net.N()
	lo, hi := i*n/st.workers, (i+1)*n/st.workers
	var sent int64
	ctx := Ctx{st: st, sent: &sent}
	for v := lo; v < hi; v++ {
		if !st.scheduled(v) {
			continue
		}
		ctx.v = v
		st.active[v] = st.procs[v].Step(&ctx)
	}
	res.sent = sent
	return res
}

// stepParallel runs one synchronous round on the worker pool and returns
// the number of messages sent.
func (st *runState) stepParallel() int64 {
	st.started = true
	st.ensurePool()
	for _, ch := range st.pool.start {
		ch <- struct{}{}
	}
	var sent int64
	var protocolPanic any
	for range st.pool.start {
		res := <-st.pool.done
		sent += res.sent
		if res.rec != nil && protocolPanic == nil {
			protocolPanic = res.rec
		}
	}
	if protocolPanic != nil {
		// A model violation (e.g. double send) inside a worker: re-raise on
		// the caller's goroutine, as the sequential engine would.
		panic(protocolPanic)
	}
	// Wake scan: stamp each node that received a delivery this round. This
	// single pass over the slot stamps is the coordinator's only serial
	// work — the sender-index merge pass of the old [][]Incoming engine is
	// gone because slots are disjoint by construction.
	rs := st.net.csr.RowStart
	n := st.net.N()
	for v := 0; v < n; v++ {
		for h := rs[v]; h < rs[v+1]; h++ {
			if st.nextStamp[h] == st.round {
				st.wakeNext[v] = st.round
				break
			}
		}
	}
	st.flip()
	st.inFlight = sent
	st.round++
	return sent
}
