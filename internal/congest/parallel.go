package congest

// The parallel engine executes the same round structure as the sequential
// one, but shards node stepping across a persistent worker pool.
// Determinism is preserved by construction:
//
//   - each node is stepped by exactly one worker, so per-node state,
//     per-node PRNG streams, and the node's Recv view are touched by a
//     single goroutine;
//   - Send writes straight into the receiver-side edge slot. Every slot is
//     owned by exactly one (sender, port) pair, so workers write disjoint
//     memory and the old per-sender outbox + sender-index merge pass does
//     not exist: delivery order is reconstructed structurally by Recv's
//     neighbor-ordered slot walk, on either engine;
//   - the wake stamps a sequential Send writes inline need a single writer
//     per receiver; with concurrent senders they are derived instead in a
//     second barrier phase after stepping: every worker scans the freshly
//     stamped slots of its own receiver shard and stamps those receivers.
//     Writes stay disjoint (each worker stamps only its shard), reads see
//     every worker's sends (the coordinator's done/start handoffs order
//     them), and the coordinator keeps no O(n+2m) serial section — its
//     per-round serial work is O(workers) channel operations.
//
// The result is bit-identical to the sequential engine: same outputs, same
// Rounds/Messages, same PRNG streams.

// poolPhase selects what a parked worker does when woken.
type poolPhase uint8

const (
	phaseStep poolPhase = iota // step the shard's scheduled nodes
	phaseScan                  // derive the shard's wake stamps
)

// shardDone is one worker's end-of-round report: how many messages its
// nodes sent, how many of them stepped active, and a recovered protocol
// panic if any.
type shardDone struct {
	sent   int64
	active int64
	rec    any
}

// pool is a phase-lifetime worker pool: workers park between rounds on
// their start channel rather than being respawned every round (phases run
// for thousands of rounds). The start/done channel handoffs also establish
// the happens-before edges between worker stepping, the sharded wake scan,
// and the coordinator's buffer flip.
type pool struct {
	start []chan poolPhase
	done  chan shardDone // one report per worker per wave
}

func (st *runState) ensurePool() {
	if st.pool != nil {
		return
	}
	p := &pool{done: make(chan shardDone, st.workers)}
	for i := 0; i < st.workers; i++ {
		ch := make(chan poolPhase, 1)
		p.start = append(p.start, ch)
		go func(i int) {
			for ph := range ch {
				if ph == phaseScan {
					st.scanShard(i)
					p.done <- shardDone{}
					continue
				}
				p.done <- st.stepShard(i)
			}
		}(i)
	}
	st.pool = p
}

// close releases the pool's workers; runs are resumable afterwards only via
// a new runState.
func (st *runState) close() {
	if st.pool == nil {
		return
	}
	for _, ch := range st.pool.start {
		close(ch)
	}
	st.pool = nil
}

// shardRange returns worker i's contiguous node block [lo, hi). Contiguity
// makes every per-node array (active, recvLen, wakeNext, ...) write in
// disjoint cache-line ranges per worker, at the price of possible imbalance
// when active nodes cluster — acceptable because the engine targets rounds
// where most nodes do work.
func (st *runState) shardRange(i int) (lo, hi int) {
	n := st.net.N()
	return i * n / st.workers, (i + 1) * n / st.workers
}

// stepShard steps worker i's nodes and reports its message count plus the
// recovered panic value, if any.
func (st *runState) stepShard(i int) (res shardDone) {
	defer func() { res.rec = recover() }()
	lo, hi := st.shardRange(i)
	var sent int64
	ctx := Ctx{st: st, sent: &sent}
	res.active = st.stepRange(&ctx, lo, hi)
	res.sent = sent
	return res
}

// scanShard is the second barrier phase of a parallel round: worker i
// stamps each node of its own shard that received a delivery this round, by
// scanning the node's freshly written slot stamps. Receiver-sharded, so the
// wakeNext writes are disjoint across workers; the stamps read were written
// by all workers during the step phase, ordered by the coordinator's
// barrier in between.
func (st *runState) scanShard(i int) {
	lo, hi := st.shardRange(i)
	rs := st.net.csr.RowStart
	round := st.round
	for v := lo; v < hi; v++ {
		for h := rs[v]; h < rs[v+1]; h++ {
			if st.nextStamp[h] == round {
				st.wakeNext[v] = round
				break
			}
		}
	}
}

// wave runs one pool phase on every worker and blocks until all report,
// accumulating the reports.
func (st *runState) wave(ph poolPhase) (sent, active int64, rec any) {
	for _, ch := range st.pool.start {
		ch <- ph
	}
	for range st.pool.start {
		res := <-st.pool.done
		sent += res.sent
		active += res.active
		if res.rec != nil && rec == nil {
			rec = res.rec
		}
	}
	return sent, active, rec
}

// stepParallel runs one synchronous round on the worker pool and returns
// the number of messages sent.
func (st *runState) stepParallel() int64 {
	st.started = true
	st.ensurePool()
	sent, active, protocolPanic := st.wave(phaseStep)
	if protocolPanic != nil {
		// A model violation (e.g. double send) inside a worker: re-raise on
		// the caller's goroutine, as the sequential engine would.
		panic(protocolPanic)
	}
	st.activeCount = active
	// Wake scan, sharded across the same workers (second barrier phase).
	// The sequential engine writes no wake stamps when nothing was sent, so
	// skipping the wave on sent == 0 is exact, not an approximation.
	if sent > 0 {
		st.wave(phaseScan)
	}
	// With the active count summed per shard above and quiescence read off
	// it, the coordinator's serial work this round was O(workers) channel
	// operations — no per-node or per-slot serial pass anywhere.
	st.flip()
	st.inFlight = sent
	st.round++
	return sent
}
