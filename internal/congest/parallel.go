package congest

// The parallel engine executes the same round structure as the sequential
// one, but shards node stepping across a persistent worker pool.
// Determinism is preserved by construction:
//
//   - each node is stepped by exactly one worker, so per-node state,
//     per-node PRNG streams, and per-(node,port) send bookkeeping are
//     touched by a single goroutine;
//   - sends are buffered in the sender's private outbox instead of being
//     appended to the receiver's inbox directly;
//   - after all workers reach the end-of-round barrier, outboxes are merged
//     into inboxes in sender-index order (and, within one sender, in send
//     order), which is exactly the delivery order the sequential engine's
//     index-order loop produces.
//
// The result is bit-identical to the sequential engine: same outputs, same
// Rounds/Messages, same PRNG streams.

// routed is a sent message annotated with its destination, buffered in the
// sender's private outbox until the end-of-round merge.
type routed struct {
	to  int
	inc Incoming
}

// pool is a phase-lifetime worker pool: workers park between rounds on
// their start channel rather than being respawned every round (phases run
// for thousands of rounds). The start/done channel handoffs also establish
// the happens-before edges between worker stepping and the coordinator's
// merge.
type pool struct {
	start []chan struct{}
	done  chan any // one recovered panic (or nil) per worker per round
}

func (st *runState) ensurePool() {
	if st.pool != nil {
		return
	}
	p := &pool{done: make(chan any, st.workers)}
	for i := 0; i < st.workers; i++ {
		ch := make(chan struct{}, 1)
		p.start = append(p.start, ch)
		go func(i int) {
			for range ch {
				p.done <- st.stepShard(i)
			}
		}(i)
	}
	st.pool = p
}

// close releases the pool's workers; runs are resumable afterwards only via
// a new runState.
func (st *runState) close() {
	if st.pool == nil {
		return
	}
	for _, ch := range st.pool.start {
		close(ch)
	}
	st.pool = nil
}

// stepShard steps worker i's nodes and returns the recovered panic value,
// if any. The shard is a contiguous block: workers then write disjoint
// cache-line ranges of the per-node arrays (active, outbox), at the price
// of possible imbalance when active nodes cluster — acceptable because the
// engine targets rounds where most nodes do work.
func (st *runState) stepShard(i int) (rec any) {
	defer func() { rec = recover() }()
	n := st.net.N()
	lo, hi := i*n/st.workers, (i+1)*n/st.workers
	ctx := Ctx{st: st}
	for v := lo; v < hi; v++ {
		if !st.active[v] && len(st.inbox[v]) == 0 && st.round > 0 {
			continue
		}
		ctx.v = v
		st.active[v] = st.procs[v].Step(&ctx)
	}
	return nil
}

// stepParallel runs one synchronous round on the worker pool and returns
// the number of messages sent.
func (st *runState) stepParallel() int64 {
	st.started = true
	st.ensurePool()
	for _, ch := range st.pool.start {
		ch <- struct{}{}
	}
	var protocolPanic any
	for range st.pool.start {
		if r := <-st.pool.done; r != nil && protocolPanic == nil {
			protocolPanic = r
		}
	}
	if protocolPanic != nil {
		// A model violation (e.g. double send) inside a worker: re-raise on
		// the caller's goroutine, as the sequential engine would.
		panic(protocolPanic)
	}
	// Deterministic merge: drain outboxes into inboxes in sender-index
	// order. This serial pass is the engine's only ordering point; it also
	// doubles as the round's message count.
	n := st.net.N()
	var sent int64
	for v := 0; v < n; v++ {
		st.inbox[v] = st.inbox[v][:0]
	}
	for v := 0; v < n; v++ {
		for _, r := range st.outbox[v] {
			st.inbox[r.to] = append(st.inbox[r.to], r.inc)
		}
		sent += int64(len(st.outbox[v]))
		st.outbox[v] = st.outbox[v][:0]
	}
	st.inFlight = sent
	st.round++
	return sent
}
