package congest

import "sort"

// shard.go is the skew-aware shard boundary machinery. The parallel
// engine's waves split work by contiguous node ranges (parallel.go), and
// until PR 7 those ranges held equal node *counts* (shardBlock). That
// balances uniform-degree families (tori, grids) but dies on skewed ones:
// in a star, gridstar, or power-law graph one hub node carries a constant
// fraction of all incident edges, so the worker that owns it serializes
// nearly the whole wave while the rest idle.
//
// The fix is boundaries derived from the CSR row offsets: RowStart is the
// prefix-sum of node degrees, so a binary search over it splits the nodes
// into contiguous blocks of roughly equal incident-edge mass in
// O(workers * log n) — no per-node pass, no new arrays. Each wave weighs
// the work it actually does:
//
//   - the step wave visits every node of its shard (a scheduling check)
//     and steps the scheduled ones, whose dominant cost is sending over
//     their ports: mass(v) = 1 + deg(v), the sender-weighted boundary;
//   - the scan wave and the geometry-fill waves walk edge slots with only
//     an O(1) loop shell per node: mass(v) = deg(v), the receiver-slot-
//     weighted boundary. (In this engine's symmetric CSR a node's sender
//     half-edges and receiver slots occupy the same row [RowStart[v],
//     RowStart[v+1]), so the two weightings differ only in the per-node
//     constant; the per-wave choice is kept explicit so an asymmetric
//     layout — e.g. directed delivery — slots in without touching the
//     waves.)
//
// Boundaries only change *which worker* executes a node, never the order-
// visible state: blocks stay contiguous, ascending, and disjoint, which is
// all the waves' disjoint-write and ascending-sender-rank arguments need
// (see parallel.go). The equivalence harness proves the executions stay
// bit-identical at every worker count.
//
// The fourth consumer of the pool, the RunPool job drain (internal/bench
// jobs), needs no boundary array at all: its work items are whole
// simulation runs of unknown cost, so it balances dynamically off an
// atomic queue cursor instead of a static split — same pool, different
// balancing regime.

// shardPlan caches one worker count's boundary arrays on the Network.
// Computed on first parallel wave for a count, reused by every later phase
// at that count, invalidated by SetWorkers and Reset. The topology (and so
// RowStart) is immutable for a network's lifetime, so a plan can only go
// stale by its worker count changing.
type shardPlan struct {
	workers int
	step    []int32 // step-wave boundaries: mass(v) = 1 + deg(v)
	slot    []int32 // scan-/fill-wave boundaries: mass(v) = deg(v)
}

// shardPlan returns the cached boundary arrays for k workers, computing
// them on a miss. Called only from the coordinator goroutine (phase start,
// construction), never from inside a wave.
func (n *Network) shardPlan(k int) *shardPlan {
	if p := n.plan; p != nil && p.workers == k {
		return p
	}
	p := &shardPlan{
		workers: k,
		step:    EdgeBalancedBounds(n.csr.RowStart, k, 1),
		slot:    EdgeBalancedBounds(n.csr.RowStart, k, 0),
	}
	n.plan = p
	return p
}

// EdgeBalancedBounds returns k+1 shard boundaries over the n nodes of a
// CSR row-offset array: shard w is the contiguous node block
// [bounds[w], bounds[w+1]), and the blocks carry roughly equal mass, where
// mass(v) = deg(v) + nodeCost. Boundaries are chosen greedily — each next
// boundary targets the remaining mass divided by the remaining shards — so
// a hub node heavier than a whole fair share consumes its own shard and
// the surplus is re-spread over the workers still to come, instead of
// leaving them the empty ranges a fixed-target split would.
//
// A shard never ends better than node granularity: a single node's mass is
// indivisible (a node is stepped by exactly one worker), so on a star the
// hub's shard still holds ~half the total mass. max(shard mass) <=
// max(ceil(total/k) + heaviest node, heaviest node) always holds; when no
// node exceeds a fair share the bound is within one node of perfect.
//
// bounds[0] = 0 and bounds[k] = n always; k < 1 is treated as 1. Empty
// shards (repeated boundaries) are legal and occur when k exceeds the
// mass available.
func EdgeBalancedBounds(rowStart []int32, k int, nodeCost int64) []int32 {
	n := len(rowStart) - 1
	if k < 1 {
		k = 1
	}
	mass := func(v int) int64 { return int64(rowStart[v]) + int64(v)*nodeCost }
	total := mass(n)
	bounds := make([]int32, k+1)
	bounds[k] = int32(n)
	prev := 0
	for w := 1; w < k; w++ {
		left := int64(k - w + 1)
		want := (total - mass(prev) + left - 1) / left // ceil(remaining / shards left)
		target := mass(prev) + want
		// Smallest cut in (prev, n] reaching the target mass; candidates
		// prev+1 .. n-1 via the search, n if none suffices.
		cur := prev + 1
		if cur < n {
			cur += sort.Search(n-cur, func(i int) bool { return mass(prev+1+i) >= target })
		}
		if cur > n {
			cur = n
		}
		bounds[w] = int32(cur)
		prev = cur
	}
	return bounds
}

// NodeRangeBounds returns the uniform node-count boundaries the engine
// used before edge balancing (shardBlock's splits, as one array): boundary
// w is w*n/k. Kept as the comparison baseline for the shard-balance
// metric; the engine's waves no longer run on it.
func NodeRangeBounds(n, k int) []int32 {
	if k < 1 {
		k = 1
	}
	bounds := make([]int32, k+1)
	for w := 0; w <= k; w++ {
		lo, _ := shardBlock(w, k, n)
		bounds[w] = int32(lo)
	}
	return bounds
}

// ShardMass is the balance report of one boundary array: how much
// incident-edge mass (half-edges, i.e. degree sum) each shard owns. This
// is the observability face of the sharding machinery — pabench -sweep
// prints it and BenchmarkEngine snapshots the ratio into BENCH_<pr>.json,
// so shard imbalance is a recorded number, not an anecdote.
type ShardMass struct {
	Bounds  []int32 // the measured boundaries, len shards+1
	Mass    []int64 // per-shard half-edge mass
	Max     int64   // heaviest shard
	MaxNode int64   // heaviest single node: the indivisible floor on Max
	Mean    float64 // total mass / shards
}

// MeasureShards computes the ShardMass of bounds over a CSR row-offset
// array.
func MeasureShards(rowStart []int32, bounds []int32) ShardMass {
	n := len(rowStart) - 1
	k := len(bounds) - 1
	s := ShardMass{Bounds: bounds, Mass: make([]int64, k)}
	for w := 0; w < k; w++ {
		m := int64(rowStart[bounds[w+1]] - rowStart[bounds[w]])
		s.Mass[w] = m
		if m > s.Max {
			s.Max = m
		}
	}
	for v := 0; v < n; v++ {
		if d := int64(rowStart[v+1] - rowStart[v]); d > s.MaxNode {
			s.MaxNode = d
		}
	}
	if k > 0 {
		s.Mean = float64(rowStart[n]) / float64(k)
	}
	return s
}

// Ratio is Max/Mean — 1.0 is perfect balance. A zero-mass (edgeless)
// instance reports 1.0: nothing to balance.
func (s ShardMass) Ratio() float64 {
	if s.Mean == 0 {
		return 1
	}
	return float64(s.Max) / s.Mean
}
