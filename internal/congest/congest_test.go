package congest

import (
	"errors"
	"testing"

	"shortcutpa/internal/graph"
)

// floodProc floods a token through the network: node 0 starts with the
// token; every node that has it broadcasts once.
type floodProc struct {
	has  bool
	sent bool
}

func (f *floodProc) Step(ctx *Ctx) bool {
	if ctx.Round() == 0 && ctx.Node() == 0 {
		f.has = true
	}
	if len(ctx.Recv()) > 0 {
		f.has = true
	}
	if f.has && !f.sent {
		ctx.Broadcast(Message{Kind: 1})
		f.sent = true
	}
	return false
}

func newFlood(n int) ([]Proc, []*floodProc) {
	procs := make([]Proc, n)
	impls := make([]*floodProc, n)
	for i := range procs {
		impls[i] = &floodProc{}
		procs[i] = impls[i]
	}
	return procs, impls
}

func TestFloodReachesEveryoneInDiameterRounds(t *testing.T) {
	g := graph.Path(10)
	net := NewNetwork(g, 1)
	procs, impls := newFlood(g.N())
	cost, err := net.Run("flood", procs, 100)
	if err != nil {
		t.Fatal(err)
	}
	for v, f := range impls {
		if !f.has {
			t.Fatalf("node %d never got the token", v)
		}
	}
	// Node 0 sends at round 0; token reaches node 9 at round 9; node 9
	// broadcasts at round 9; quiescence detected after round 10.
	if cost.Rounds < 10 || cost.Rounds > 12 {
		t.Fatalf("flood on P10 took %d rounds, want about 10", cost.Rounds)
	}
	// Each node broadcasts exactly once: sum of degrees = 2m messages.
	if want := int64(2 * g.M()); cost.Messages != want {
		t.Fatalf("flood sent %d messages, want %d", cost.Messages, want)
	}
}

func TestRunBudgetExceeded(t *testing.T) {
	g := graph.Path(4)
	net := NewNetwork(g, 1)
	// A proc that ping-pongs forever between nodes 0 and 1.
	procs := make([]Proc, g.N())
	for v := 0; v < g.N(); v++ {
		v := v
		procs[v] = ProcFunc(func(ctx *Ctx) bool {
			if ctx.Round() == 0 && v == 0 {
				ctx.Send(0, Message{})
				return false
			}
			for _, in := range ctx.Recv() {
				ctx.Send(in.Port, Message{})
			}
			return false
		})
	}
	_, err := net.Run("pingpong", procs, 50)
	var bee *BudgetExceededError
	if !errors.As(err, &bee) {
		t.Fatalf("err = %v, want BudgetExceededError", err)
	}
	if bee.Budget != 50 {
		t.Fatalf("budget = %d, want 50", bee.Budget)
	}
}

func TestDoubleSendPanics(t *testing.T) {
	g := graph.Path(2)
	net := NewNetwork(g, 1)
	procs := []Proc{
		ProcFunc(func(ctx *Ctx) bool {
			defer func() {
				if recover() == nil {
					t.Error("second send on a port did not panic")
				}
			}()
			ctx.Send(0, Message{})
			ctx.Send(0, Message{})
			return false
		}),
		ProcFunc(func(*Ctx) bool { return false }),
	}
	if _, err := net.Run("dup", procs, 10); err != nil {
		t.Fatal(err)
	}
}

func TestCanSend(t *testing.T) {
	g := graph.Path(2)
	net := NewNetwork(g, 1)
	procs := []Proc{
		ProcFunc(func(ctx *Ctx) bool {
			if !ctx.CanSend(0) {
				t.Error("CanSend false before sending")
			}
			ctx.Send(0, Message{})
			if ctx.CanSend(0) {
				t.Error("CanSend true after sending")
			}
			return false
		}),
		ProcFunc(func(*Ctx) bool { return false }),
	}
	if _, err := net.Run("cansend", procs, 10); err != nil {
		t.Fatal(err)
	}
}

func TestIDsAreUniqueAndInvertible(t *testing.T) {
	g := graph.Grid(8, 8)
	net := NewNetwork(g, 42)
	seen := make(map[int64]bool, g.N())
	for v := 0; v < g.N(); v++ {
		id := net.ID(v)
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
		if net.NodeByID(id) != v {
			t.Fatalf("NodeByID(ID(%d)) = %d", v, net.NodeByID(id))
		}
	}
	if net.NodeByID(-7) != -1 {
		t.Fatal("NodeByID of unknown ID should be -1")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (Metrics, []int64) {
		g := graph.Grid(5, 5)
		net := NewNetwork(g, 7)
		// Random gossip: each node sends its ID on a random port for 5 rounds;
		// nodes track the min ID heard.
		minHeard := make([]int64, g.N())
		procs := make([]Proc, g.N())
		for v := 0; v < g.N(); v++ {
			v := v
			minHeard[v] = net.ID(v)
			procs[v] = ProcFunc(func(ctx *Ctx) bool {
				for _, in := range ctx.Recv() {
					if in.Msg.A < minHeard[v] {
						minHeard[v] = in.Msg.A
					}
				}
				if ctx.Round() < 5 {
					ctx.Send(ctx.Rand().Intn(ctx.Degree()), Message{A: minHeard[v]})
					return true
				}
				return false
			})
		}
		cost, err := net.Run("gossip", procs, 100)
		if err != nil {
			t.Fatal(err)
		}
		return cost, minHeard
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 {
		t.Fatalf("metrics differ across identical runs: %+v vs %+v", c1, c2)
	}
	for v := range m1 {
		if m1[v] != m2[v] {
			t.Fatalf("node %d state differs across identical runs", v)
		}
	}
}

func TestMetricsAccumulateAcrossPhases(t *testing.T) {
	g := graph.Path(6)
	net := NewNetwork(g, 3)
	for i := 0; i < 3; i++ {
		procs, _ := newFlood(g.N())
		if _, err := net.Run("flood", procs, 100); err != nil {
			t.Fatal(err)
		}
	}
	phases := net.Phases()
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(phases))
	}
	var sum Metrics
	for _, ph := range phases {
		sum = sum.Add(ph.Cost)
	}
	if sum != net.Total() {
		t.Fatalf("phase sum %+v != total %+v", sum, net.Total())
	}
	net.ResetMetrics()
	if net.Total() != (Metrics{}) || len(net.Phases()) != 0 {
		t.Fatal("ResetMetrics did not clear accounting")
	}
}

func TestProcCountMismatch(t *testing.T) {
	net := NewNetwork(graph.Path(3), 1)
	if _, err := net.Run("bad", make([]Proc, 2), 10); err == nil {
		t.Fatal("Run accepted wrong proc count")
	}
}

func TestIdleNodesAreNotStepped(t *testing.T) {
	// A node that returns false and never receives messages must be stepped
	// exactly once (round 0).
	g := graph.Path(3)
	net := NewNetwork(g, 1)
	steps := make([]int, g.N())
	procs := make([]Proc, g.N())
	for v := 0; v < g.N(); v++ {
		v := v
		procs[v] = ProcFunc(func(ctx *Ctx) bool {
			steps[v]++
			// Node 0 keeps itself active for 4 rounds but sends nothing.
			return v == 0 && ctx.Round() < 4
		})
	}
	if _, err := net.Run("idle", procs, 100); err != nil {
		t.Fatal(err)
	}
	if steps[1] != 1 || steps[2] != 1 {
		t.Fatalf("idle nodes stepped %v times, want once each", steps[1:])
	}
	if steps[0] != 5 {
		t.Fatalf("active node stepped %d times, want 5", steps[0])
	}
}
