package congest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// scenario.go is the fault-injection layer: a Scenario scripts node crashes
// and edge drops — scheduled at exact rounds or drawn from a seeded
// per-round fault rate — and the engine applies them at round boundaries,
// before that round's deliveries are read. The semantics are fail-stop with
// boundary message loss:
//
//   - a crashed node stops stepping from its crash round on: its Step is
//     never invoked again, it sends nothing, and it draws no further PRNG
//     values, so the streams of surviving nodes are untouched;
//   - a dead edge (dropped directly, or incident to a crashed node) delivers
//     nothing: messages in flight across it at the fault boundary are
//     destroyed, and every later Send into it is counted in Metrics.Messages
//     and then dropped — the sender pays the model cost but the receiver
//     never sees the message. CanSend stays true on a dead port (the port
//     accepts sends; they vanish), and the one-message-per-port rule is not
//     enforced on dead ports, since no slot write exists to detect a double
//     send against;
//   - surviving nodes observe faults only through silence and through
//     Ctx.PortDown(p), which reports whether port p's edge is dead. A node
//     whose only pending delivery was destroyed at the boundary may still be
//     scheduled that round (its wake stamp was written before the fault) and
//     sees an empty Recv — the same on both engines.
//
// Determinism: faults are applied by the coordinator between rounds, never
// inside a worker wave, and scheduled events are totally ordered by
// (round, declaration order). Seeded-random faults draw from one PRNG owned
// by the fault state, again coordinator-only. The whole construction is
// therefore bit-identical across the sequential and parallel engines and
// across Reset reuse — the scenario-equivalence harness leg
// (internal/equivalence) proves it.
//
// Scenario rounds count executed rounds across the network's whole lifetime
// since construction or Reset, not per phase: round 0 is the first round the
// first phase runs, and the clock keeps counting through every later phase.
// That makes "crash node 17 at round 100" reproducible for a protocol made
// of many phases, independent of how the rounds divide into them.

// NodeCrash schedules node Node to crash at scenario round Round: the node
// executes rounds 0..Round-1 and is dead from Round on.
type NodeCrash struct {
	Node  int
	Round int64
}

// EdgeDrop schedules the edge between U and V to die at scenario round
// Round: messages in flight across it at that boundary are destroyed, and
// no later message crosses it in either direction.
type EdgeDrop struct {
	U, V  int
	Round int64
}

// Scenario scripts the faults of one simulation. The zero value (and nil)
// is the fault-free scenario. Scheduled Crashes and Drops apply at exact
// rounds; Rate adds seeded-random faults on top: each round boundary draws
// twice from the fault PRNG, crashing one uniformly random node with
// probability Rate and dropping one uniformly random edge with probability
// Rate (a draw that lands on an already-dead target is a no-op, so the
// drawn stream — and therefore every later draw — is independent of how
// many faults already landed).
//
// FaultSeed seeds the fault PRNG; 0 derives it from the network's master
// seed, so the same (graph, seed, scenario) triple always replays the same
// execution.
type Scenario struct {
	Crashes   []NodeCrash
	Drops     []EdgeDrop
	Rate      float64
	FaultSeed int64
}

// IsZero reports whether s scripts no faults at all.
func (s *Scenario) IsZero() bool {
	return s == nil || (len(s.Crashes) == 0 && len(s.Drops) == 0 && s.Rate == 0)
}

// String renders the scenario in the canonical spec-grammar form
// ParseScenario accepts, e.g. "crash=17@100;drop=3-9@50;seed-faults=0.01".
// ParseScenario(s.String()) reproduces s exactly (the fuzz target pins the
// round trip).
func (s *Scenario) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	if len(s.Crashes) > 0 {
		items := make([]string, len(s.Crashes))
		for i, c := range s.Crashes {
			items[i] = fmt.Sprintf("%d@%d", c.Node, c.Round)
		}
		parts = append(parts, "crash="+strings.Join(items, ","))
	}
	if len(s.Drops) > 0 {
		items := make([]string, len(s.Drops))
		for i, d := range s.Drops {
			items[i] = fmt.Sprintf("%d-%d@%d", d.U, d.V, d.Round)
		}
		parts = append(parts, "drop="+strings.Join(items, ","))
	}
	if s.Rate != 0 {
		parts = append(parts, "seed-faults="+strconv.FormatFloat(s.Rate, 'g', -1, 64))
	}
	if s.FaultSeed != 0 {
		parts = append(parts, "fault-seed="+strconv.FormatInt(s.FaultSeed, 10))
	}
	return strings.Join(parts, ";")
}

// ParseScenario parses the scenario spec grammar: clauses separated by ';'
// (or '+', so a spec can be embedded as one value inside the jobs grammar,
// whose own separator is ';'):
//
//	crash=<node>@<round>[,<node>@<round>...]   scheduled node crashes
//	drop=<u>-<v>@<round>[,...]                 scheduled edge drops
//	seed-faults=<rate>                         per-round random fault rate in [0,1]
//	fault-seed=<seed>                          fault PRNG seed (0/absent: derive
//	                                           from the network master seed)
//
// Example: "crash=17@100;drop=3-9@50;seed-faults=0.01". The empty string is
// the fault-free scenario. Node and edge references are validated against a
// concrete topology by SetScenario, not here — the grammar is
// graph-independent.
func ParseScenario(s string) (*Scenario, error) {
	sc := &Scenario{}
	for _, clause := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == '+' }) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("congest: scenario clause %q is not key=value", clause)
		}
		switch key {
		case "crash":
			for _, item := range strings.Split(val, ",") {
				node, round, err := parseAtRound(item)
				if err != nil {
					return nil, fmt.Errorf("congest: scenario crash %q: %w", item, err)
				}
				sc.Crashes = append(sc.Crashes, NodeCrash{Node: int(node), Round: round})
			}
		case "drop":
			for _, item := range strings.Split(val, ",") {
				pair, at, ok := strings.Cut(item, "@")
				if !ok {
					return nil, fmt.Errorf("congest: scenario drop %q is not u-v@round", item)
				}
				us, vs, ok := strings.Cut(pair, "-")
				if !ok {
					return nil, fmt.Errorf("congest: scenario drop %q is not u-v@round", item)
				}
				u, err := parseIndex(us)
				if err != nil {
					return nil, fmt.Errorf("congest: scenario drop %q: %w", item, err)
				}
				v, err := parseIndex(vs)
				if err != nil {
					return nil, fmt.Errorf("congest: scenario drop %q: %w", item, err)
				}
				round, err := parseRound(at)
				if err != nil {
					return nil, fmt.Errorf("congest: scenario drop %q: %w", item, err)
				}
				sc.Drops = append(sc.Drops, EdgeDrop{U: int(u), V: int(v), Round: round})
			}
		case "seed-faults":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("congest: scenario seed-faults %q: %v", val, err)
			}
			if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("congest: scenario seed-faults %q: rate must be in [0,1]", val)
			}
			sc.Rate = rate
		case "fault-seed":
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("congest: scenario fault-seed %q: %v", val, err)
			}
			sc.FaultSeed = seed
		default:
			return nil, fmt.Errorf("congest: unknown scenario key %q (have: crash, drop, seed-faults, fault-seed)", key)
		}
	}
	return sc, nil
}

// parseAtRound parses "<index>@<round>".
func parseAtRound(item string) (int64, int64, error) {
	idx, at, ok := strings.Cut(item, "@")
	if !ok {
		return 0, 0, fmt.Errorf("missing @round")
	}
	i, err := parseIndex(idx)
	if err != nil {
		return 0, 0, err
	}
	round, err := parseRound(at)
	if err != nil {
		return 0, 0, err
	}
	return i, round, nil
}

// parseIndex parses a non-negative node index. The int32 ceiling matches
// the engine's CSR index range, so a grammar-valid index always fits the
// arrays SetScenario sizes it against.
func parseIndex(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad index %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative index %d", v)
	}
	return v, nil
}

// parseRound parses a non-negative scenario round.
func parseRound(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad round %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative round %d", v)
	}
	return v, nil
}

// faultEvent is one compiled scheduled fault: a node crash (node >= 0) or
// an edge drop (node < 0, half naming one half-edge of the dead edge).
type faultEvent struct {
	round int64
	node  int32
	half  int32
}

// faultState is a scenario compiled against one network: the event
// schedule, the per-node and per-half-edge death flags the engine consults,
// and the scenario clock. It lives on the Network (faults accumulate across
// phases) and is rewound — never reallocated — by Reset, so a served run
// replays its scenario bit-exactly.
type faultState struct {
	events   []faultEvent
	rate     float64
	seed     int64 // fault PRNG origin; rewind re-seeds from it
	edgeHalf []int32

	// Mutable run state, reset by rewind.
	cursor    int
	srun      int64 // scenario round clock: executed rounds since construction/Reset
	rng       *rand.Rand
	crashed   []bool
	portDead  []bool
	downNodes int
	deadEdges int
}

// rewind returns the fault state to scenario round 0: schedule cursor at
// the start, fault PRNG back at its seed origin, every node alive and every
// edge intact. O(n + 2m) — the death flags are cleared, not reallocated.
func (f *faultState) rewind() {
	f.cursor = 0
	f.srun = 0
	f.rng = nil
	if f.rate > 0 {
		f.rng = rand.New(rand.NewSource(f.seed))
	}
	clear(f.crashed)
	clear(f.portDead)
	f.downNodes = 0
	f.deadEdges = 0
}

// SetScenario attaches a fault scenario to the network, validated against
// its topology: crash nodes must exist, dropped edges must join adjacent
// nodes. A nil or zero scenario detaches (fault-free). On error nothing is
// attached — the network is left fault-free, never half-scripted.
//
// The scenario arms at scenario round 0, which is the next round any phase
// executes; Reset rewinds the attached scenario to that same origin instead
// of detaching it, so a reused network replays the identical fault sequence
// (the serving contract). Like SetWorkers and Reset, calling SetScenario
// while a phase is running panics.
func (n *Network) SetScenario(s *Scenario) error {
	if n.running {
		panic("congest: SetScenario called while a phase is running")
	}
	n.scenario = nil
	n.fault = nil
	if s.IsZero() {
		return nil
	}
	if math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) || s.Rate < 0 || s.Rate > 1 {
		return fmt.Errorf("congest: scenario fault rate %v outside [0,1]", s.Rate)
	}
	nodes := n.N()
	f := &faultState{
		rate:     s.Rate,
		seed:     s.FaultSeed,
		crashed:  make([]bool, nodes),
		portDead: make([]bool, len(n.csr.PortTo)),
	}
	if f.seed == 0 {
		// Derive from the master seed so (graph, seed, scenario) fully
		// determines the fault stream; the xor constant keeps it off the
		// node-PRNG seed family.
		f.seed = n.seed ^ 0x5ce0a11a5
	}
	for _, c := range s.Crashes {
		if c.Node < 0 || c.Node >= nodes {
			return fmt.Errorf("congest: scenario crashes node %d, network has %d nodes", c.Node, nodes)
		}
		if c.Round < 0 {
			return fmt.Errorf("congest: scenario crash of node %d at negative round %d", c.Node, c.Round)
		}
		f.events = append(f.events, faultEvent{round: c.Round, node: int32(c.Node)})
	}
	for _, d := range s.Drops {
		if d.U < 0 || d.U >= nodes || d.V < 0 || d.V >= nodes {
			return fmt.Errorf("congest: scenario drops edge %d-%d, network has %d nodes", d.U, d.V, nodes)
		}
		if d.Round < 0 {
			return fmt.Errorf("congest: scenario drop of edge %d-%d at negative round %d", d.U, d.V, d.Round)
		}
		p := n.g.PortTo(d.U, d.V)
		if p < 0 {
			return fmt.Errorf("congest: scenario drops %d-%d, which is not an edge", d.U, d.V)
		}
		f.events = append(f.events, faultEvent{round: d.Round, node: -1, half: n.csr.RowStart[d.U] + int32(p)})
	}
	// Stable by round: within a boundary, faults apply in declaration order
	// (crashes before drops) — the order is part of the deterministic
	// contract, though marking dead state is idempotent enough that only
	// pathological scenarios could observe it.
	sort.SliceStable(f.events, func(i, j int) bool { return f.events[i].round < f.events[j].round })
	if f.rate > 0 {
		// Random drops pick a uniform edge index; map each edge to one of
		// its half-edges once (killEdge marks both directions regardless of
		// which half names the edge).
		f.edgeHalf = make([]int32, n.g.M())
		pe := n.csr.PortEdge
		for h := range pe {
			f.edgeHalf[pe[h]] = int32(h)
		}
	}
	f.rewind()
	n.scenario = s
	n.fault = f
	return nil
}

// Scenario returns the attached fault scenario, or nil when the network is
// fault-free.
func (n *Network) Scenario() *Scenario { return n.scenario }

// FaultCounts reports how many nodes have crashed and how many edges have
// died so far (an edge incident to a crashed node counts as dead). Both are
// zero on a fault-free network and return to zero on Reset.
func (n *Network) FaultCounts() (crashedNodes, deadEdges int) {
	if n.fault == nil {
		return 0, 0
	}
	return n.fault.downNodes, n.fault.deadEdges
}

// applyFaults advances the scenario clock by one round boundary: scheduled
// events due at the current scenario round fire, then the seeded-random
// draws happen. Runs on the coordinator between rounds — before the round's
// step wave, after the previous round's flip — so destroying an in-flight
// delivery is a plain write to curStamp with no wave running.
func (st *runState) applyFaults() {
	f := st.fault
	if f == nil {
		return
	}
	for f.cursor < len(f.events) && f.events[f.cursor].round <= f.srun {
		ev := f.events[f.cursor]
		f.cursor++
		if ev.node >= 0 {
			st.crashNode(int(ev.node))
		} else {
			st.killEdge(ev.half)
		}
	}
	if f.rate > 0 {
		// Two draws per boundary, always consumed in the same order, so the
		// fault stream is a pure function of (seed, round) — independent of
		// which earlier draws landed on already-dead targets.
		if n := st.net.N(); n > 0 && f.rng.Float64() < f.rate {
			st.crashNode(f.rng.Intn(n))
		}
		if m := len(f.edgeHalf); m > 0 && f.rng.Float64() < f.rate {
			st.killEdge(f.edgeHalf[f.rng.Intn(m)])
		}
	}
	f.srun++
}

// crashNode marks v crashed and kills every incident edge, destroying
// deliveries in flight to and from v. Idempotent.
func (st *runState) crashNode(v int) {
	f := st.fault
	if f.crashed[v] {
		return
	}
	f.crashed[v] = true
	f.downNodes++
	rs := st.net.csr.RowStart
	for h := rs[v]; h < rs[v+1]; h++ {
		st.killEdge(h)
	}
}

// killEdge marks the edge of half-edge h dead in both directions and
// destroys any delivery in flight across it: zeroing the two slots' current
// stamps makes them stale to every occupancy test (the clock starts at
// clockBase >= 2, so 0 never matches a real round). Idempotent.
func (st *runState) killEdge(h int32) {
	f := st.fault
	if f.portDead[h] {
		return
	}
	csr := &st.net.csr
	rh := csr.RowStart[csr.PortTo[h]] + csr.PortRev[h]
	f.portDead[h] = true
	f.portDead[rh] = true
	f.deadEdges++
	st.curStamp[st.net.destSlot[h]] = 0
	st.curStamp[st.net.destSlot[rh]] = 0
}

// stepRangeFaulty is stepRange with the fault checks: crashed nodes are
// never stepped (their stale active flags are unreadable behind the crash
// check), everything else is the shared scheduling contract — including the
// active-frontier recording, so a crashed node is dropped from the lists
// the same round applyFaults marks it (it is skipped here and therefore
// never re-appended; the sparse drain applies the identical crash check to
// entries appended before the crash landed). Kept separate so the
// fault-free hot loops in stepRange stay branch-free.
func (st *runState) stepRangeFaulty(ctx *Ctx, lo, hi int, actNext []int32, f *faultState) (active, stepped int64) {
	if t := st.table; t != nil {
		for v := lo; v < hi; v++ {
			if !f.crashed[v] && st.scheduled(v) {
				ctx.v = v
				stepped++
				if st.active[v] = t[v].Step(ctx); st.active[v] {
					if active < int64(len(actNext)) {
						actNext[active] = int32(v)
					}
					active++
				}
			}
		}
		return active, stepped
	}
	for v := lo; v < hi; v++ {
		if !f.crashed[v] && st.scheduled(v) {
			ctx.v = v
			stepped++
			if st.active[v] = st.proc.Step(ctx, v); st.active[v] {
				if active < int64(len(actNext)) {
					actNext[active] = int32(v)
				}
				active++
			}
		}
	}
	return active, stepped
}
