package congest

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"shortcutpa/internal/graph"
)

// scenario_test.go covers the fault-injection layer: the scenario spec
// grammar, SetScenario's topology validation, the observable fail-stop
// semantics (crashed nodes stop stepping, dead ports deliver nothing,
// sends into them are counted-then-dropped, PortDown reports the death),
// and the determinism contract — sequential == parallel, and Reset replays
// the identical fault sequence.

func TestParseScenarioGrammar(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scenario
	}{
		{"", Scenario{}},
		{"crash=17@100", Scenario{Crashes: []NodeCrash{{17, 100}}}},
		{"crash=17@100,4@2", Scenario{Crashes: []NodeCrash{{17, 100}, {4, 2}}}},
		{"drop=3-9@50", Scenario{Drops: []EdgeDrop{{3, 9, 50}}}},
		{"seed-faults=0.01", Scenario{Rate: 0.01}},
		{"fault-seed=7", Scenario{FaultSeed: 7}},
		{
			"crash=17@100;drop=3-9@50;seed-faults=0.01",
			Scenario{Crashes: []NodeCrash{{17, 100}}, Drops: []EdgeDrop{{3, 9, 50}}, Rate: 0.01},
		},
		{
			// '+' is an accepted clause separator so a whole scenario can
			// ride inside one jobs-grammar value.
			"crash=1@5+drop=0-1@2+fault-seed=3",
			Scenario{Crashes: []NodeCrash{{1, 5}}, Drops: []EdgeDrop{{0, 1, 2}}, FaultSeed: 3},
		},
		{"crash=1@5; ;drop=0-1@2", Scenario{Crashes: []NodeCrash{{1, 5}}, Drops: []EdgeDrop{{0, 1, 2}}}},
	} {
		got, err := ParseScenario(tc.in)
		if err != nil {
			t.Errorf("ParseScenario(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(*got, tc.want) {
			t.Errorf("ParseScenario(%q) = %+v, want %+v", tc.in, *got, tc.want)
		}
	}
}

func TestParseScenarioErrors(t *testing.T) {
	for _, in := range []string{
		"crash",               // no key=value
		"crash=17",            // missing @round
		"crash=17@",           // empty round
		"crash=x@3",           // bad index
		"crash=-2@3",          // negative node
		"crash=1@-3",          // negative round
		"crash=99999999999@1", // index over the int32 CSR ceiling
		"drop=3@50",           // missing u-v
		"drop=3-@50",          // empty v — atoi failure
		"drop=3-9",            // missing @round
		"seed-faults=2",       // rate > 1
		"seed-faults=-0.5",    // rate < 0
		"seed-faults=NaN",     // non-finite
		"seed-faults=+Inf",
		"seed-faults=x",
		"fault-seed=abc",
		"churn=0.5@9", // unknown key
	} {
		if _, err := ParseScenario(in); err == nil {
			t.Errorf("ParseScenario(%q) succeeded, want error", in)
		}
	}
}

func TestScenarioStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"",
		"crash=17@100",
		"crash=17@100,4@2;drop=3-9@50,0-1@2;seed-faults=0.015625;fault-seed=-9",
		"seed-faults=0.01",
	} {
		sc, err := ParseScenario(in)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", in, err)
		}
		again, err := ParseScenario(sc.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", sc.String(), in, err)
		}
		if !reflect.DeepEqual(sc, again) {
			t.Errorf("round trip of %q: %+v -> %q -> %+v", in, sc, sc.String(), again)
		}
	}
	if s := (*Scenario)(nil).String(); s != "" {
		t.Errorf("nil scenario String() = %q, want empty", s)
	}
}

func TestSetScenarioValidation(t *testing.T) {
	net := NewNetwork(graph.Path(4), 1) // edges 0-1, 1-2, 2-3
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		{"crash-node-out-of-range", Scenario{Crashes: []NodeCrash{{Node: 4, Round: 1}}}},
		{"crash-negative-node", Scenario{Crashes: []NodeCrash{{Node: -1, Round: 1}}}},
		{"crash-negative-round", Scenario{Crashes: []NodeCrash{{Node: 1, Round: -1}}}},
		{"drop-not-an-edge", Scenario{Drops: []EdgeDrop{{U: 0, V: 2, Round: 1}}}},
		{"drop-node-out-of-range", Scenario{Drops: []EdgeDrop{{U: 0, V: 9, Round: 1}}}},
		{"drop-negative-round", Scenario{Drops: []EdgeDrop{{U: 0, V: 1, Round: -1}}}},
		{"rate-out-of-range", Scenario{Rate: 1.5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := net.SetScenario(&tc.sc); err == nil {
				t.Fatal("SetScenario accepted an invalid scenario")
			}
			// A rejected scenario must leave the network fault-free.
			if net.Scenario() != nil {
				t.Fatal("rejected scenario left state attached")
			}
		})
	}
	// A valid scenario attaches; SetScenario(nil) detaches.
	if err := net.SetScenario(&Scenario{Crashes: []NodeCrash{{Node: 1, Round: 2}}}); err != nil {
		t.Fatal(err)
	}
	if net.Scenario() == nil {
		t.Fatal("valid scenario did not attach")
	}
	if err := net.SetScenario(nil); err != nil {
		t.Fatal(err)
	}
	if net.Scenario() != nil {
		t.Fatal("SetScenario(nil) did not detach")
	}
}

// broadcastLog runs a deterministic broadcast protocol for sendRounds
// rounds on net: every live node broadcasts its index each round and logs
// every reception as "r<round>p<port>:<sender>", plus each round's PortDown
// view. The log is the complete observable execution for the semantics
// tests below.
func broadcastLog(t *testing.T, net *Network, sendRounds int64) ([]string, Metrics) {
	t.Helper()
	logs := make([]string, net.N())
	cost, err := net.RunNodes("scenario/broadcast", NodeProcFunc(func(ctx *Ctx, v int) bool {
		ctx.ForRecv(func(rank int, in Incoming) {
			logs[v] += fmt.Sprintf("r%dp%d:%d ", ctx.Round(), in.Port, in.Msg.A)
		})
		for p := 0; p < ctx.Degree(); p++ {
			if ctx.PortDown(p) {
				logs[v] += fmt.Sprintf("r%ddown%d ", ctx.Round(), p)
			}
		}
		if ctx.Round() < sendRounds {
			ctx.Broadcast(Message{A: int64(v)})
			return true
		}
		return false
	}), 64)
	if err != nil {
		t.Fatal(err)
	}
	return logs, cost
}

// TestCrashSemantics: a crashed node stops stepping at its crash round, its
// in-flight messages are destroyed at the boundary, and its neighbors see
// the shared ports go down. Path(3) topology: 0-1-2, crash node 2 at round 3.
func TestCrashSemantics(t *testing.T) {
	net := NewNetwork(graph.Path(3), 1)
	sc, err := ParseScenario("crash=2@3")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetScenario(sc); err != nil {
		t.Fatal(err)
	}
	logs, cost := broadcastLog(t, net, 6)

	// Node 1 hears node 2 (on port 1) at rounds 1 and 2 only: the message 2
	// sent in round 2 is destroyed at round 3's boundary, and 2 never sends
	// again. Port 1 reads down from round 3 on.
	if strings.Contains(logs[1], "r3p1:2") || strings.Contains(logs[1], "r4p1:2") {
		t.Errorf("node 1 heard the crashed node after the crash boundary:\n%s", logs[1])
	}
	for _, want := range []string{"r1p1:2", "r2p1:2", "r3down1", "r4down1"} {
		if !strings.Contains(logs[1], want) {
			t.Errorf("node 1 log missing %q:\n%s", want, logs[1])
		}
	}
	// Node 2 steps in rounds 0..2 and never after: its last possible log
	// entries are from round 2.
	if strings.Contains(logs[2], "r3") || strings.Contains(logs[2], "r4") {
		t.Errorf("crashed node 2 was stepped after its crash round:\n%s", logs[2])
	}
	// Node 0 is two hops from the crash: its port never goes down.
	if strings.Contains(logs[0], "down") {
		t.Errorf("node 0 observed a dead port:\n%s", logs[0])
	}

	// Message accounting: rounds 0-2 all three nodes broadcast (deg 1+2+1 =
	// 4 msgs); rounds 3-5 node 2 is dead, nodes 0 and 1 broadcast (3 msgs,
	// including 1's counted-then-dropped send into dead port 1).
	if want := int64(3*4 + 3*3); cost.Messages != want {
		t.Errorf("Messages = %d, want %d (dead-port sends must be counted)", cost.Messages, want)
	}

	if crashed, dead := net.FaultCounts(); crashed != 1 || dead != 1 {
		t.Errorf("FaultCounts = (%d, %d), want (1, 1)", crashed, dead)
	}
}

// TestEdgeDropSemantics: a dropped edge destroys the delivery in flight
// across it and goes silent in both directions, while both endpoints keep
// running. Path(3), drop edge 0-1 at round 2.
func TestEdgeDropSemantics(t *testing.T) {
	net := NewNetwork(graph.Path(3), 1)
	sc, err := ParseScenario("drop=0-1@2")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetScenario(sc); err != nil {
		t.Fatal(err)
	}
	logs, _ := broadcastLog(t, net, 6)

	// Node 1 hears node 0 at round 1 only; the round-1 send dies at the
	// round-2 boundary. Both endpoints observe the dead port from round 2.
	if !strings.Contains(logs[1], "r1p0:0") {
		t.Errorf("node 1 missed the pre-drop delivery:\n%s", logs[1])
	}
	for r := 2; r <= 6; r++ {
		if strings.Contains(logs[1], fmt.Sprintf("r%dp0:0", r)) {
			t.Errorf("node 1 heard across the dropped edge at round %d:\n%s", r, logs[1])
		}
	}
	for _, tc := range []struct {
		v    int
		want string
	}{{0, "r2down0"}, {1, "r2down0"}} {
		if !strings.Contains(logs[tc.v], tc.want) {
			t.Errorf("node %d log missing %q:\n%s", tc.v, tc.want, logs[tc.v])
		}
	}
	// The unaffected edge 1-2 keeps delivering to the end.
	if !strings.Contains(logs[2], "r6p0:1") {
		t.Errorf("node 2 lost deliveries on the live edge:\n%s", logs[2])
	}
	// Both endpoints of the dropped edge are alive: node 0 still steps and
	// logs its dead port in round 6.
	if !strings.Contains(logs[0], "r6down0") {
		t.Errorf("node 0 stopped stepping after the edge drop:\n%s", logs[0])
	}
	if crashed, dead := net.FaultCounts(); crashed != 0 || dead != 1 {
		t.Errorf("FaultCounts = (%d, %d), want (0, 1)", crashed, dead)
	}
}

// TestCrashAtRoundZero: a node crashed at round 0 never steps at all, even
// though the phase's first round otherwise schedules every node.
func TestCrashAtRoundZero(t *testing.T) {
	net := NewNetwork(graph.Path(3), 1)
	if err := net.SetScenario(&Scenario{Crashes: []NodeCrash{{Node: 0, Round: 0}}}); err != nil {
		t.Fatal(err)
	}
	logs, _ := broadcastLog(t, net, 3)
	if logs[0] != "" {
		t.Errorf("node 0 crashed at round 0 but produced log:\n%s", logs[0])
	}
	if !strings.Contains(logs[1], "r0down0") {
		t.Errorf("node 1 did not see port 0 down at round 0:\n%s", logs[1])
	}
}

// TestRecvOnAndCanSendOnDeadPort pins the dead-port query semantics: RecvOn
// reports nothing, CanSend stays true (the port accepts sends; they
// vanish), and a repeated Send on a dead port does not trip the double-send
// panic — there is no slot write to detect it against.
func TestRecvOnAndCanSendOnDeadPort(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	if err := net.SetScenario(&Scenario{Drops: []EdgeDrop{{U: 0, V: 1, Round: 0}}}); err != nil {
		t.Fatal(err)
	}
	cost, err := net.RunNodes("scenario/deadport", NodeProcFunc(func(ctx *Ctx, v int) bool {
		if !ctx.PortDown(0) {
			t.Errorf("node %d round %d: PortDown(0) = false on the dropped edge", v, ctx.Round())
		}
		if _, ok := ctx.RecvOn(0); ok {
			t.Errorf("node %d round %d: RecvOn delivered across a dead edge", v, ctx.Round())
		}
		if !ctx.CanSend(0) {
			t.Errorf("node %d round %d: CanSend(0) = false on a dead port", v, ctx.Round())
		}
		ctx.Send(0, Message{A: 1})
		ctx.Send(0, Message{A: 2}) // no double-send panic on a dead port
		return ctx.Round() < 2
	}), 16)
	if err != nil {
		t.Fatal(err)
	}
	// 2 nodes x 2 sends x 3 rounds, all counted-then-dropped.
	if want := int64(12); cost.Messages != want {
		t.Errorf("Messages = %d, want %d", cost.Messages, want)
	}
}

// scenarioRun executes the randomized gossip fixture under a scenario and
// returns its observable execution (per-node digests + cost).
func scenarioRun(t *testing.T, net *Network) ([]int64, Metrics) {
	t.Helper()
	return randomizedRun(t, net)
}

// TestScenarioParallelMatchesSequential: the same scenario on the same
// graph and seed is bit-identical on the sequential and parallel engines —
// scheduled faults and seeded-random faults both.
func TestScenarioParallelMatchesSequential(t *testing.T) {
	const seed = 11
	g := graph.Torus(5, 5)
	for _, spec := range []string{
		"crash=7@2;crash=12@4",
		"drop=0-1@1;crash=3@3",
		"seed-faults=0.3",
		"seed-faults=0.2;fault-seed=99;crash=5@1",
	} {
		t.Run(spec, func(t *testing.T) {
			sc, err := ParseScenario(spec)
			if err != nil {
				t.Fatal(err)
			}
			seqNet := NewNetwork(g, seed)
			if err := seqNet.SetScenario(sc); err != nil {
				t.Fatal(err)
			}
			seq, seqCost := scenarioRun(t, seqNet)
			for _, workers := range []int{2, 4, 8} {
				parNet := NewNetworkWorkers(g, seed, workers)
				if err := parNet.SetScenario(sc); err != nil {
					t.Fatal(err)
				}
				par, parCost := scenarioRun(t, parNet)
				if parCost != seqCost {
					t.Errorf("workers=%d cost %+v, sequential %+v", workers, parCost, seqCost)
				}
				for v := range seq {
					if par[v] != seq[v] {
						t.Fatalf("workers=%d node %d digest diverged under scenario", workers, v)
					}
				}
				sc1, d1 := seqNet.FaultCounts()
				sc2, d2 := parNet.FaultCounts()
				if sc1 != sc2 || d1 != d2 {
					t.Errorf("workers=%d fault counts (%d,%d), sequential (%d,%d)", workers, sc2, d2, sc1, d1)
				}
			}
		})
	}
}

// TestScenarioReplaysAcrossReset is the serving contract for faults: Reset
// rewinds the scenario — cursor, clock, fault PRNG, death flags — so a
// reused network replays the identical faulty execution. Without Reset the
// second run demonstrably diverges (the scenario clock has moved on), which
// proves the fixture has teeth.
func TestScenarioReplaysAcrossReset(t *testing.T) {
	const seed = 21
	g := graph.Torus(5, 5)
	sc, err := ParseScenario("crash=7@2;seed-faults=0.25")
	if err != nil {
		t.Fatal(err)
	}

	freshNet := NewNetwork(g, seed)
	if err := freshNet.SetScenario(sc); err != nil {
		t.Fatal(err)
	}
	fresh, freshCost := scenarioRun(t, freshNet)

	// No Reset: the crash already happened and the fault clock keeps
	// counting, so the rerun must diverge.
	dirty := NewNetwork(g, seed)
	if err := dirty.SetScenario(sc); err != nil {
		t.Fatal(err)
	}
	scenarioRun(t, dirty)
	diverged, _ := scenarioRun(t, dirty)
	same := true
	for v := range fresh {
		if fresh[v] != diverged[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("fixture too weak: rerun without Reset did not diverge under the scenario")
	}

	// Reset between runs: bit-identical replay, including the fault counts.
	reused := NewNetwork(g, seed)
	if err := reused.SetScenario(sc); err != nil {
		t.Fatal(err)
	}
	scenarioRun(t, reused)
	reused.Reset()
	got, gotCost := scenarioRun(t, reused)
	if gotCost != freshCost {
		t.Errorf("replayed cost %+v, fresh %+v", gotCost, freshCost)
	}
	for v := range fresh {
		if got[v] != fresh[v] {
			t.Fatalf("node %d digest diverged on the Reset replay", v)
		}
	}
	c1, d1 := freshNet.FaultCounts()
	c2, d2 := reused.FaultCounts()
	if c1 != c2 || d1 != d2 {
		t.Errorf("replay fault counts (%d,%d), fresh (%d,%d)", c2, d2, c1, d1)
	}
	if c1 == 0 {
		t.Error("scenario crashed nobody — fixture too weak")
	}
}

// TestScenarioAcrossPhases: the scenario clock counts executed rounds
// across phases, not per phase — a crash scheduled past the first phase's
// rounds fires mid-way through the second.
func TestScenarioAcrossPhases(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	if err := net.SetScenario(&Scenario{Crashes: []NodeCrash{{Node: 1, Round: 5}}}); err != nil {
		t.Fatal(err)
	}
	stepped := [][]int64{make([]int64, 2), make([]int64, 2)}
	for phase := 0; phase < 2; phase++ {
		phase := phase
		if _, err := net.RunNodes(fmt.Sprintf("phase%d", phase), NodeProcFunc(func(ctx *Ctx, v int) bool {
			stepped[phase][v]++
			return ctx.Round() < 3
		}), 16); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 0 runs rounds 0..3 (scenario rounds 0-3): both nodes step 4x.
	// Phase 1 starts at scenario round 4; node 1 dies at scenario round 5,
	// i.e. after one more step.
	if stepped[0][0] != 4 || stepped[0][1] != 4 {
		t.Errorf("phase 0 steps = %v, want [4 4]", stepped[0])
	}
	if stepped[1][0] != 4 || stepped[1][1] != 1 {
		t.Errorf("phase 1 steps = %v, want [4 1] (crash at scenario round 5)", stepped[1])
	}
}

// TestSetScenarioMidPhasePanics pins the exact contract panic, alongside
// the SetWorkers/Reset messages in reset_test.go.
func TestSetScenarioMidPhasePanics(t *testing.T) {
	net := NewNetwork(graph.Path(4), 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SetScenario mid-phase did not panic")
		}
		const want = "congest: SetScenario called while a phase is running"
		if Sprint(r) != want {
			t.Fatalf("panic = %q, want %q", Sprint(r), want)
		}
	}()
	net.RunNodes("midphase/setscenario", NodeProcFunc(func(ctx *Ctx, v int) bool {
		net.SetScenario(&Scenario{Rate: 0.1})
		return false
	}), 4)
}

// TestScenarioOnEmptyAndTinyNetworks: degenerate topologies run (and
// quiesce) under scenarios without tripping engine invariants.
func TestScenarioOnEmptyAndTinyNetworks(t *testing.T) {
	empty := NewNetwork(graph.MustNew(0, nil), 1)
	if err := empty.SetScenario(&Scenario{Rate: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := empty.RunNodes("empty", NodeProcFunc(func(ctx *Ctx, v int) bool { return false }), 4); err != nil {
		t.Fatal(err)
	}

	single := NewNetwork(graph.MustNew(1, nil), 1)
	if err := single.SetScenario(&Scenario{Crashes: []NodeCrash{{Node: 0, Round: 0}}}); err != nil {
		t.Fatal(err)
	}
	steps := 0
	if _, err := single.RunNodes("single", NodeProcFunc(func(ctx *Ctx, v int) bool {
		steps++
		return true
	}), 8); err != nil {
		t.Fatal(err)
	}
	if steps != 0 {
		t.Errorf("node crashed at round 0 stepped %d times", steps)
	}
}
