package congest

import (
	"testing"

	"shortcutpa/internal/graph"
)

// gossipProcs builds the randomized-gossip protocol from
// TestDeterminismAcrossRuns on net: each node tracks the min ID heard and,
// for `rounds` rounds, sends it on a random port (per-node PRNG traffic).
func gossipProcs(net *Network, rounds int64) ([]Proc, []int64) {
	n := net.N()
	minHeard := make([]int64, n)
	procs := make([]Proc, n)
	for v := 0; v < n; v++ {
		v := v
		minHeard[v] = net.ID(v)
		procs[v] = ProcFunc(func(ctx *Ctx) bool {
			for _, in := range ctx.Recv() {
				if in.Msg.A < minHeard[v] {
					minHeard[v] = in.Msg.A
				}
			}
			if ctx.Round() < rounds {
				ctx.Send(ctx.Rand().Intn(ctx.Degree()), Message{A: minHeard[v]})
				return true
			}
			return false
		})
	}
	return procs, minHeard
}

// gossipRun executes the gossip protocol on a fresh network with the given
// worker count and returns the phase cost and final per-node state.
func gossipRun(t *testing.T, g *graph.Graph, seed int64, rounds int64, workers int) (Metrics, []int64) {
	t.Helper()
	net := NewNetwork(g, seed)
	procs, minHeard := gossipProcs(net, rounds)
	cost, err := net.RunParallel("gossip", procs, 1000, workers)
	if err != nil {
		t.Fatal(err)
	}
	return cost, minHeard
}

// TestParallelMatchesSequentialGossip checks bit-identical behaviour of the
// parallel engine on a protocol that exercises per-node randomness, message
// ordering, and the active/idle scheduler, across several worker counts
// (including counts that do not divide n and counts exceeding n).
func TestParallelMatchesSequentialGossip(t *testing.T) {
	g := graph.Grid(7, 9)
	for _, seed := range []int64{1, 7, 99} {
		wantCost, wantState := gossipRun(t, g, seed, 8, 1)
		for _, workers := range []int{2, 3, 4, 8, 1000} {
			cost, state := gossipRun(t, g, seed, 8, workers)
			if cost != wantCost {
				t.Fatalf("seed %d workers %d: cost %+v, sequential %+v", seed, workers, cost, wantCost)
			}
			for v := range state {
				if state[v] != wantState[v] {
					t.Fatalf("seed %d workers %d: node %d state %d, sequential %d",
						seed, workers, v, state[v], wantState[v])
				}
			}
		}
	}
}

// TestParallelInboxOrderMatchesSequential pins down the delivery-order
// guarantee directly: every node records the exact (port, payload) sequence
// it receives from a broadcast storm, and the transcript must match the
// sequential engine's sender-index delivery order entry for entry.
func TestParallelInboxOrderMatchesSequential(t *testing.T) {
	g := graph.Torus(5, 5)
	run := func(workers int) [][]Incoming {
		net := NewNetwork(g, 3)
		transcript := make([][]Incoming, g.N())
		procs := make([]Proc, g.N())
		for v := 0; v < g.N(); v++ {
			v := v
			procs[v] = ProcFunc(func(ctx *Ctx) bool {
				transcript[v] = append(transcript[v], ctx.Recv()...)
				if ctx.Round() < 3 {
					ctx.Broadcast(Message{A: ctx.ID(), B: ctx.Round()})
					return true
				}
				return false
			})
		}
		if _, err := net.RunParallel("storm", procs, 100, workers); err != nil {
			t.Fatal(err)
		}
		return transcript
	}
	want := run(1)
	for _, workers := range []int{2, 5, 13} {
		got := run(workers)
		for v := range want {
			if len(got[v]) != len(want[v]) {
				t.Fatalf("workers %d: node %d received %d messages, sequential %d",
					workers, v, len(got[v]), len(want[v]))
			}
			for i := range want[v] {
				if got[v][i] != want[v][i] {
					t.Fatalf("workers %d: node %d message %d = %+v, sequential %+v",
						workers, v, i, got[v][i], want[v][i])
				}
			}
		}
	}
}

// TestParallelIdleNodesAreNotStepped mirrors TestIdleNodesAreNotStepped on
// the parallel engine: the scheduler contract (step on round 0, on incoming
// messages, and after an active return) is engine-independent.
func TestParallelIdleNodesAreNotStepped(t *testing.T) {
	g := graph.Path(3)
	net := NewNetwork(g, 1)
	steps := make([]int, g.N())
	procs := make([]Proc, g.N())
	for v := 0; v < g.N(); v++ {
		v := v
		procs[v] = ProcFunc(func(ctx *Ctx) bool {
			steps[v]++
			return v == 0 && ctx.Round() < 4
		})
	}
	if _, err := net.RunParallel("idle", procs, 100, 3); err != nil {
		t.Fatal(err)
	}
	if steps[1] != 1 || steps[2] != 1 {
		t.Fatalf("idle nodes stepped %v times, want once each", steps[1:])
	}
	if steps[0] != 5 {
		t.Fatalf("active node stepped %d times, want 5", steps[0])
	}
}

// TestParallelDoubleSendPanics checks that a model violation inside a worker
// goroutine still surfaces as a panic on the caller's goroutine.
func TestParallelDoubleSendPanics(t *testing.T) {
	g := graph.Path(4)
	net := NewNetwork(g, 1)
	procs := make([]Proc, g.N())
	for v := 0; v < g.N(); v++ {
		v := v
		procs[v] = ProcFunc(func(ctx *Ctx) bool {
			if v == 2 {
				ctx.Send(0, Message{})
				ctx.Send(0, Message{})
			}
			return false
		})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double send on the parallel engine did not panic")
		}
	}()
	_, _ = net.RunParallel("dup", procs, 10, 2)
}

// TestSetWorkersThreadsThroughRun checks the Network-level option: Run on a
// network configured with SetWorkers must match an explicit sequential run.
func TestSetWorkersThreadsThroughRun(t *testing.T) {
	g := graph.Grid(6, 6)
	seqCost, seqState := gossipRun(t, g, 5, 6, 1)

	net := NewNetwork(g, 5)
	net.SetWorkers(4)
	if net.Workers() != 4 {
		t.Fatalf("Workers() = %d after SetWorkers(4)", net.Workers())
	}
	procs, minHeard := gossipProcs(net, 6)
	cost, err := net.Run("gossip", procs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cost != seqCost {
		t.Fatalf("SetWorkers(4) Run cost %+v, sequential %+v", cost, seqCost)
	}
	for v := range minHeard {
		if minHeard[v] != seqState[v] {
			t.Fatalf("node %d state %d, sequential %d", v, minHeard[v], seqState[v])
		}
	}
}

// benchProcs builds a message-heavy aggregation protocol (every node
// broadcasts its running min-ID every round for `rounds` rounds) on a
// large graph, the workload the parallel engine is for.
func benchProcs(net *Network, n int, rounds int64) []Proc {
	minHeard := make([]int64, n)
	procs := make([]Proc, n)
	for v := 0; v < n; v++ {
		v := v
		minHeard[v] = net.ID(v)
		procs[v] = ProcFunc(func(ctx *Ctx) bool {
			// Port-free aggregation: RecvMsgs is the fit primitive (under
			// full broadcast load it aliases the slot range outright).
			for _, m := range ctx.RecvMsgs() {
				if m.A < minHeard[v] {
					minHeard[v] = m.A
				}
			}
			if ctx.Round() < rounds {
				ctx.Broadcast(Message{A: minHeard[v]})
				return true
			}
			return false
		})
	}
	return procs
}

// BenchmarkEngine lives in engine_bench_test.go (graph-family × worker-count
// matrix over the same benchProcs storm).
