package congest

import (
	"reflect"
	"testing"
)

// FuzzParseScenario fuzzes the scenario spec grammar: no input may panic
// the parser, and every accepted input must survive a parse-print-parse
// round trip — String() is defined as the canonical form ParseScenario
// reproduces exactly.
func FuzzParseScenario(f *testing.F) {
	for _, seed := range []string{
		"",
		"crash=17@100",
		"crash=17@100;drop=3-9@50;seed-faults=0.01",
		"crash=1@5+drop=0-1@2+fault-seed=3",
		"crash=17@100,4@2",
		"seed-faults=0.0005",
		"fault-seed=-9",
		"crash=;drop=--@",
		"seed-faults=+Inf",
		"crash=99999999999@1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseScenario(s)
		if err != nil {
			return
		}
		printed := sc.String()
		again, err := ParseScenario(printed)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) does not re-parse: %v", printed, s, err)
		}
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("round trip of %q changed the scenario: %+v -> %q -> %+v", s, sc, printed, again)
		}
		if printed != again.String() {
			t.Fatalf("canonical form of %q is not a fixed point: %q -> %q", s, printed, again.String())
		}
	})
}
