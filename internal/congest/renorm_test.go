package congest

import (
	"testing"

	"shortcutpa/internal/graph"
)

// renorm_test.go covers the stamp-epoch renormalization pass: the engine's
// buffer stamps are int32 offsets from Network.epoch, and when the
// epoch-relative round reaches stampRenormThreshold the coordinator rebases
// every live stamp back toward clockBase (renormStamps). The threshold is a
// package variable precisely so this test can force the boundary on a tiny
// network instead of simulating 2^31 rounds.

// renormGossip runs a fixed multi-phase mixed-primitive protocol and
// returns everything observable about it: final per-node states, total
// metrics, and the network's stamp epoch afterward.
func renormGossip(t *testing.T, workers int) ([]int64, Metrics, int64) {
	t.Helper()
	g := graph.Torus(4, 4)
	net := NewNetworkWorkers(g, 11, workers)
	n := g.N()
	minHeard := make([]int64, n)
	for v := 0; v < n; v++ {
		minHeard[v] = net.ID(v)
	}
	// Three phases so renormalization also has to survive phase boundaries
	// (the clock skips +2 between phases and stale stamps must stay stale).
	// The protocol mixes every read primitive so each stamp family —
	// delivery, wake, and Recv-view round tags — crosses the boundary live.
	for phase := 0; phase < 3; phase++ {
		const rounds = 40
		proc := NodeProcFunc(func(ctx *Ctx, v int) bool {
			for _, m := range ctx.RecvMsgs() {
				if m.A < minHeard[v] {
					minHeard[v] = m.A
				}
			}
			for _, in := range ctx.Recv() { // exercises recvRound rebasing
				if in.Msg.A < minHeard[v] {
					minHeard[v] = in.Msg.A
				}
			}
			if ctx.Round() < rounds {
				// Sparse on odd rounds: only half the nodes broadcast, so
				// compacted views and partially stale slot stamps exist on
				// both sides of a renormalization.
				if ctx.Round()%2 == 0 || v%2 == 0 {
					ctx.Broadcast(Message{A: minHeard[v] + int64(phase)})
					return true
				}
				return true
			}
			return false
		})
		if _, err := net.RunNodes("renorm", proc, rounds+4); err != nil {
			t.Fatal(err)
		}
	}
	return minHeard, net.Total(), net.epoch
}

// TestStampEpochRenormalization forces the int32 stamp boundary every ~48
// epoch-relative rounds and asserts the run is bit-identical to one that
// never renormalizes, on both engines. This is the whole correctness claim
// of the int32 narrowing: renormStamps preserves every occupancy test, so a
// protocol cannot tell whether (or how often) the pass ran.
func TestStampEpochRenormalization(t *testing.T) {
	defaultThreshold := stampRenormThreshold
	wantState, wantCost, epoch0 := renormGossip(t, 1)
	if epoch0 != 0 {
		t.Fatalf("default threshold run advanced the epoch to %d; the control is broken", epoch0)
	}

	stampRenormThreshold = 48
	defer func() { stampRenormThreshold = defaultThreshold }()
	for _, workers := range []int{1, 4} {
		state, cost, epoch := renormGossip(t, workers)
		if epoch == 0 {
			t.Fatalf("workers=%d: threshold 48 never triggered renormalization (epoch still 0)", workers)
		}
		if cost != wantCost {
			t.Fatalf("workers=%d: cost %+v with renormalization, %+v without", workers, cost, wantCost)
		}
		for v := range state {
			if state[v] != wantState[v] {
				t.Fatalf("workers=%d: node %d state %d with renormalization, %d without", workers, v, state[v], wantState[v])
			}
		}
	}
}

// TestRenormClampsStaleStamps unit-tests rebaseStamps directly: live stamps
// shift by delta, already-stale stamps (including the permanent 0 sentinel)
// clamp to 0 and can never be resurrected into a future occupancy match.
func TestRenormClampsStaleStamps(t *testing.T) {
	delta := int32(100)
	in := []int32{0, 1, 50, 100, 101, 150}
	want := []int32{0, 0, 0, 0, 1, 50}
	got := append([]int32(nil), in...)
	rebaseStamps(got, delta)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rebaseStamps(%d, delta=%d) = %d, want %d", in[i], delta, got[i], want[i])
		}
	}
}
