package congest

// Scratch is a small arena of reusable protocol-side buffers, one per
// network. Steady-state engine rounds are allocation-free (see README.md),
// which leaves phase setup as the protocol layer's dominant allocation
// source: every net.Run needs a []Proc, and many phases want a per-node or
// per-port flag array that dies with the phase. Scratch recycles those.
//
// Every getter returns a buffer cleared to zero values, exactly as make()
// would hand it out, so swapping make for Scratch cannot change protocol
// outputs. What changes is ownership: each getter recycles ONE buffer, and
// the returned slice is valid only until the next call to the same getter
// on the same network. That contract fits the phase-setup pattern the
// arena exists for — fill the buffer, pass it to Run, let go when Run
// returns — and the engine runs one phase at a time (phases share the
// network's clock and delivery buffers), so two live procs arrays cannot
// overlap. Do NOT use Scratch for state that outlives a phase or is
// returned to a caller.
type Scratch struct {
	net    *Network
	procs  []Proc
	bools  []bool
	int64s []int64
	ports  []bool
}

// Scratch returns the network's buffer arena (allocated on first use).
func (n *Network) Scratch() *Scratch {
	if n.scratch == nil {
		n.scratch = &Scratch{net: n}
	}
	return n.scratch
}

// Procs returns a cleared []Proc of length n, reusing the arena's buffer.
// Valid until the next Procs call on this network; pass it to Run and let
// it go.
func (s *Scratch) Procs(n int) []Proc {
	if cap(s.procs) < n {
		s.procs = make([]Proc, n)
	}
	p := s.procs[:n]
	for i := range p {
		p[i] = nil
	}
	return p
}

// Bools returns a cleared []bool of length n (per-node flags for one phase).
// Valid until the next Bools call on this network.
func (s *Scratch) Bools(n int) []bool {
	if cap(s.bools) < n {
		s.bools = make([]bool, n)
	}
	b := s.bools[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// Int64s returns a cleared []int64 of length n. Valid until the next Int64s
// call on this network.
func (s *Scratch) Int64s(n int) []int64 {
	if cap(s.int64s) < n {
		s.int64s = make([]int64, n)
	}
	b := s.int64s[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// PortBools returns a cleared []bool over the network's 2m half-edges,
// indexed by CSR port offset (RowStart[v]+p) — the flat shape SamePart-style
// per-port flags flatten onto. Valid until the next PortBools call on this
// network.
func (s *Scratch) PortBools() []bool {
	n := len(s.net.csr.PortTo)
	if cap(s.ports) < n {
		s.ports = make([]bool, n)
	}
	b := s.ports[:n]
	for i := range b {
		b[i] = false
	}
	return b
}
