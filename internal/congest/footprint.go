package congest

import "unsafe"

// MemFootprint is a byte-accurate breakdown of a network's resident engine
// memory, grouped by what the bytes buy. It exists so layout claims are
// measured, not estimated: the bench sweep records BytesPerSlot per graph
// family, and BENCH snapshots pin it against regressions. All numbers are
// computed from live slice lengths — a lazy buffer that was never allocated
// contributes exactly 0.
type MemFootprint struct {
	// Slots is the number of rank-indexed edge slots (2m half-edges).
	Slots int
	// SlotBytes is the flipping delivery core: both Message buffers plus
	// both int32 stamp buffers — the arrays every delivered message moves
	// through. 72 B per slot (2 x 32 B message + 2 x 4 B stamp).
	SlotBytes int64
	// RecvViewBytes is the lazily allocated compacted-Recv view buffer
	// (40 B/slot of Incoming). Zero until a protocol's first compacting
	// Recv call; stays zero forever under ForRecv/RecvOn/RecvMsgs.
	RecvViewBytes int64
	// MsgViewBytes is the lazily allocated RecvMsgs compaction scratch
	// (32 B/slot of Message). Zero until the first *sparse* RecvMsgs call —
	// full-occupancy calls alias the slot buffer and allocate nothing.
	MsgViewBytes int64
	// GeometryBytes is the static slot geometry built at NewNetwork:
	// destSlot, portSlot, and slotPort (3 x 4 B per slot), plus the CSR
	// adjacency the network aliases is counted by its owner, not here.
	GeometryBytes int64
	// NodeBytes is the per-node engine state: wake stamps, Recv view
	// bookkeeping, and the active flags (17 B per node).
	NodeBytes int64
	// FrontierBytes is the sparse-execution frontier state: the four
	// double-buffered active/woken node lists (16 B per node). Per-node
	// scheduling state, not slot memory, so it is excluded from
	// BytesPerSlot like NodeBytes.
	FrontierBytes int64
	// DirtyBytes is the parallel engine's sender-side dirty buffer
	// (4 B/slot), lazily allocated by the first parallel phase — zero on a
	// network that has only ever run sequentially. Excluded from
	// BytesPerSlot: it is wake-scheduling scratch, not part of the
	// flipping delivery core the metric tracks.
	DirtyBytes int64
	// IDBytes is the identifier layer: node IDs plus the sorted mapless
	// NodeByID index (20 B per node).
	IDBytes int64
}

// Total sums every component.
func (f MemFootprint) Total() int64 {
	return f.SlotBytes + f.RecvViewBytes + f.MsgViewBytes + f.GeometryBytes + f.NodeBytes + f.FrontierBytes + f.DirtyBytes + f.IDBytes
}

// BytesPerSlot is the resident slot-array bytes per edge slot: the flipping
// delivery core plus whichever lazy view buffers this network's protocols
// forced into existence, divided by the slot count. 72 for a
// compaction-free network (the PR 8 layout's 120 was three 40 B Incoming
// arrays per slot plus 16 B of int64 stamps — always, for every protocol).
func (f MemFootprint) BytesPerSlot() float64 {
	if f.Slots == 0 {
		return 0
	}
	return float64(f.SlotBytes+f.RecvViewBytes+f.MsgViewBytes) / float64(f.Slots)
}

// MemFootprint reports the network's current engine memory breakdown. Cheap
// (a handful of len reads); callable at any point in the network's life —
// before the first Run the flipping buffers do not exist yet and SlotBytes
// is 0, so benchmarks should sample after warmup.
func (n *Network) MemFootprint() MemFootprint {
	const (
		msgSize  = int64(unsafe.Sizeof(Message{}))
		incSize  = int64(unsafe.Sizeof(Incoming{}))
		i32Size  = int64(unsafe.Sizeof(int32(0)))
		i64Size  = int64(unsafe.Sizeof(int64(0)))
		boolSize = int64(unsafe.Sizeof(false))
	)
	f := MemFootprint{
		Slots: len(n.csr.PortTo),
		GeometryBytes: i32Size *
			int64(len(n.destSlot)+len(n.portSlot)+len(n.slotPort)),
		IDBytes: i64Size*int64(len(n.ids)+len(n.idSorted)) +
			i32Size*int64(len(n.idNode)),
	}
	b := n.buf
	if b == nil {
		return f
	}
	f.SlotBytes = msgSize*int64(len(b.curMsg)+len(b.nextMsg)) +
		i32Size*int64(len(b.curStamp)+len(b.nextStamp))
	// The lazy view buffers are published by an atomic flag (recvView /
	// msgView); reading their lengths behind a Load keeps MemFootprint
	// callable while a parallel phase is stepping.
	if b.recvBufReady.Load() {
		f.RecvViewBytes = incSize * int64(len(b.recvBuf))
	}
	if b.msgBufReady.Load() {
		f.MsgViewBytes = msgSize * int64(len(b.msgBuf))
	}
	f.NodeBytes = i32Size*int64(len(b.wakeCur)+len(b.wakeNext)+len(b.recvLen)+len(b.recvRound)) +
		boolSize*int64(len(b.active))
	f.FrontierBytes = i32Size * int64(len(b.frontA)+len(b.frontB)+len(b.wokeA)+len(b.wokeB))
	if b.dirtyReady.Load() {
		f.DirtyBytes = i32Size * int64(len(b.dirty))
	}
	return f
}
