package congest

import (
	"strings"
	"testing"

	"shortcutpa/internal/graph"
)

// reset_test.go covers the network-reuse contract behind multi-run serving:
// Reset restores a constructed network to its as-new protocol-visible state
// (PRNG streams, metrics, phase history), the SetWorkers/Reset mid-phase
// guards, and the exported RunPool job machinery.

// randomizedRun executes the randomized gossip proc on net and returns the
// per-node digest transcript plus the phase cost. The proc draws from every
// node's PRNG each round, so any mid-stream PRNG state shows up in both the
// digest (message contents route through Rand-chosen ports) and the costs.
func randomizedRun(t *testing.T, net *Network) ([]int64, Metrics) {
	t.Helper()
	n := net.N()
	minHeard := make([]int64, n)
	digest := make([]int64, n)
	for v := 0; v < n; v++ {
		minHeard[v] = net.ID(v)
	}
	cost, err := net.RunNodes("reset/gossip", NodeProcFunc(func(ctx *Ctx, v int) bool {
		return gossipStep(ctx, v, minHeard, digest)
	}), 64)
	if err != nil {
		t.Fatal(err)
	}
	return digest, cost
}

// TestResetRestartsPRNGStreams is the determinism bugfix regression: a
// second randomized run on a Reset network must be bit-identical to the
// same run on a freshly constructed network, because Reset drops the lazily
// created per-node PRNGs and their streams restart from the (seed, v)
// origin. Without the drop, the reused network draws mid-stream and
// diverges — the test first proves that divergence is real (so the fixture
// has teeth), then proves Reset removes it.
func TestResetRestartsPRNGStreams(t *testing.T) {
	const seed = 77
	g := graph.Torus(5, 5)

	fresh, freshCost := randomizedRun(t, NewNetwork(g, seed))

	// Same network, no Reset: the PRNGs continue mid-stream, so the second
	// run must diverge from the fresh execution (if it did not, the fixture
	// would be too weak to detect the bug at all).
	dirty := NewNetwork(g, seed)
	randomizedRun(t, dirty)
	diverged, _ := randomizedRun(t, dirty)
	same := true
	for v := range fresh {
		if fresh[v] != diverged[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("fixture too weak: second run without Reset did not diverge from a fresh run")
	}

	// Same network, Reset between runs: bit-identical to fresh.
	reused := NewNetwork(g, seed)
	randomizedRun(t, reused)
	reused.Reset()
	got, gotCost := randomizedRun(t, reused)
	if gotCost != freshCost {
		t.Errorf("reused cost %+v, fresh %+v", gotCost, freshCost)
	}
	for v := range fresh {
		if got[v] != fresh[v] {
			t.Fatalf("node %d digest diverged on the Reset network: %d != fresh %d", v, got[v], fresh[v])
		}
	}
}

// TestResetReuseIdenticalOnParallelEngine runs the same reuse bit-identity
// check with the reused network on the parallel engine: Reset composes with
// SetWorkers, and the reused run stays identical to a sequential fresh run.
func TestResetReuseIdenticalOnParallelEngine(t *testing.T) {
	const seed = 78
	g := graph.Torus(5, 5)
	fresh, freshCost := randomizedRun(t, NewNetwork(g, seed))

	reused := NewNetworkWorkers(g, seed, 4)
	randomizedRun(t, reused)
	reused.Reset()
	got, gotCost := randomizedRun(t, reused)
	if gotCost != freshCost {
		t.Errorf("reused parallel cost %+v, fresh sequential %+v", gotCost, freshCost)
	}
	for v := range fresh {
		if got[v] != fresh[v] {
			t.Fatalf("node %d digest diverged (parallel reused vs sequential fresh)", v)
		}
	}
}

// TestResetClearsMetricsAndPhaseHistory: Reset zeroes the totals and drops
// the per-phase history, and a serve-many loop keeps the history bounded at
// one run's phases instead of growing across runs.
func TestResetClearsMetricsAndPhaseHistory(t *testing.T) {
	net := NewNetwork(graph.Torus(4, 4), 5)
	randomizedRun(t, net)
	if net.Total() == (Metrics{}) || len(net.Phases()) == 0 {
		t.Fatal("run recorded no cost — fixture broken")
	}
	net.Reset()
	if net.Total() != (Metrics{}) {
		t.Errorf("Total after Reset = %+v, want zero", net.Total())
	}
	if got := net.Phases(); len(got) != 0 {
		t.Errorf("Phases after Reset has %d entries, want 0", len(got))
	}
	// Served-run loop: the history must stay at exactly the per-run phase
	// count (1 here), not accumulate one entry per served run.
	for i := 0; i < 40; i++ {
		net.Reset()
		randomizedRun(t, net)
		if got := len(net.Phases()); got != 1 {
			t.Fatalf("after served run %d: phase history has %d entries, want 1", i, got)
		}
	}
}

// TestSetWorkersClampsNegative: k < 0 is clamped to 0 (sequential), per the
// documented contract — the job runner passes configured ints through.
func TestSetWorkersClampsNegative(t *testing.T) {
	net := NewNetwork(graph.Path(4), 1)
	net.SetWorkers(-3)
	if got := net.Workers(); got != 0 {
		t.Errorf("Workers() = %d after SetWorkers(-3), want 0", got)
	}
	net.SetWorkers(4)
	if got := net.Workers(); got != 4 {
		t.Errorf("Workers() = %d after SetWorkers(4), want 4", got)
	}
	// The clamped network must still run (sequential engine).
	if _, err := net.RunNodes("clamp/run", NodeProcFunc(func(ctx *Ctx, v int) bool { return false }), 4); err != nil {
		t.Fatal(err)
	}
}

// TestSetWorkersMidPhasePanics: the worker count is latched at phase start;
// changing it from inside a Step is a protocol bug and panics.
func TestSetWorkersMidPhasePanics(t *testing.T) {
	net := NewNetwork(graph.Path(4), 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SetWorkers mid-phase did not panic")
		}
		// The exact message is part of the contract: serving harnesses match
		// on it to distinguish a mid-phase misuse from a protocol panic.
		const want = "congest: SetWorkers called while a phase is running"
		if Sprint(r) != want {
			t.Fatalf("panic = %q, want %q", Sprint(r), want)
		}
	}()
	net.RunNodes("midphase/setworkers", NodeProcFunc(func(ctx *Ctx, v int) bool {
		net.SetWorkers(2)
		return false
	}), 4)
}

// TestResetMidPhasePanics: Reset while a phase is running is equally a bug.
func TestResetMidPhasePanics(t *testing.T) {
	net := NewNetwork(graph.Path(4), 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Reset mid-phase did not panic")
		}
		const want = "congest: Reset called while a phase is running"
		if Sprint(r) != want {
			t.Fatalf("panic = %q, want %q", Sprint(r), want)
		}
	}()
	net.RunNodes("midphase/reset", NodeProcFunc(func(ctx *Ctx, v int) bool {
		net.Reset()
		return false
	}), 4)
}

// TestNestedRunRejected: starting a phase while another phase is running on
// the same network is reported as an error, not silent corruption.
func TestNestedRunRejected(t *testing.T) {
	net := NewNetwork(graph.Path(4), 1)
	var nestedErr error
	if _, err := net.RunNodes("outer", NodeProcFunc(func(ctx *Ctx, v int) bool {
		if v == 0 && nestedErr == nil {
			_, nestedErr = net.RunNodes("inner", NodeProcFunc(func(ctx *Ctx, v int) bool { return false }), 4)
			if nestedErr == nil {
				nestedErr = errNoNestedFailure
			}
		}
		return false
	}), 4); err != nil {
		t.Fatalf("outer phase failed: %v", err)
	}
	if nestedErr == errNoNestedFailure {
		t.Fatal("nested Run on the same network was not rejected")
	}
	if nestedErr == nil || !strings.Contains(nestedErr.Error(), "another phase") {
		t.Fatalf("nested Run error = %v, want the running-phase rejection", nestedErr)
	}
}

var errNoNestedFailure = &BudgetExceededError{Phase: "sentinel"}

// Sprint stringifies a recovered panic value for substring checks.
func Sprint(r any) string {
	if s, ok := r.(string); ok {
		return s
	}
	if e, ok := r.(error); ok {
		return e.Error()
	}
	return ""
}

// TestRunPool: every worker index runs exactly once, the inline k<=1 path
// works, and a worker panic is re-raised on the caller.
func TestRunPool(t *testing.T) {
	for _, k := range []int{1, 2, 4, 7} {
		ran := make([]int, max(k, 1))
		RunPool(k, func(w int) { ran[w]++ })
		for w, c := range ran {
			if c != 1 {
				t.Errorf("k=%d: worker %d ran %d times, want 1", k, w, c)
			}
		}
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("RunPool did not re-raise the worker panic")
		}
	}()
	RunPool(3, func(w int) {
		if w == 1 {
			panic("boom")
		}
	})
}
