package congest

import (
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the aggregation function algebra
// the whole system leans on: Definition 1.1 requires f commutative and
// associative; these properties are what make the router's arbitrary
// adoption-tree evaluation order sound.

func TestQuickCombinersCommutative(t *testing.T) {
	combiners := map[string]Combine{
		"MinPair": MinPair,
		"MaxPair": MaxPair,
		"SumPair": SumPair,
		"OrPair":  OrPair,
	}
	for name, f := range combiners {
		f := f
		t.Run(name, func(t *testing.T) {
			prop := func(a1, a2, b1, b2 int32) bool {
				x := Val{A: int64(a1), B: int64(b1)}
				y := Val{A: int64(a2), B: int64(b2)}
				return f(x, y) == f(y, x)
			}
			if err := quick.Check(prop, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestQuickCombinersAssociative(t *testing.T) {
	combiners := map[string]Combine{
		"MinPair": MinPair,
		"MaxPair": MaxPair,
		"SumPair": SumPair,
		"OrPair":  OrPair,
	}
	for name, f := range combiners {
		f := f
		t.Run(name, func(t *testing.T) {
			prop := func(a1, a2, a3, b1, b2, b3 int32) bool {
				x := Val{A: int64(a1), B: int64(b1)}
				y := Val{A: int64(a2), B: int64(b2)}
				z := Val{A: int64(a3), B: int64(b3)}
				return f(f(x, y), z) == f(x, f(y, z))
			}
			if err := quick.Check(prop, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestQuickMinMaxIdempotentAndOrdered(t *testing.T) {
	prop := func(a1, a2, b1, b2 int32) bool {
		x := Val{A: int64(a1), B: int64(b1)}
		y := Val{A: int64(a2), B: int64(b2)}
		lo, hi := MinPair(x, y), MaxPair(x, y)
		// Idempotence and min/max duality: {lo, hi} == {x, y}.
		if MinPair(x, x) != x || MaxPair(y, y) != y {
			return false
		}
		return (lo == x && hi == y) || (lo == y && hi == x)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMetricsAddAssociative(t *testing.T) {
	prop := func(r1, r2, r3, m1, m2, m3 int32) bool {
		a := Metrics{Rounds: int64(r1), Messages: int64(m1)}
		b := Metrics{Rounds: int64(r2), Messages: int64(m2)}
		c := Metrics{Rounds: int64(r3), Messages: int64(m3)}
		return a.Add(b).Add(c) == a.Add(b.Add(c))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
