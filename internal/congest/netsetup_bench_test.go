package congest

import (
	"fmt"
	"testing"

	"shortcutpa/internal/graph"
)

// BenchmarkNetworkSetup measures the construction pipeline end to end —
// graph build (generator streaming into the CSR Builder), NewNetwork (ID
// index + slot geometry), and the engine-buffer allocation — on a size
// ladder of square tori from n=10^4 to n=10^6. This is the regression gate
// for the ROADMAP's "setup turns superlinear" bottleneck: sec/op should
// scale ~linearly with n down the ladder (`make bench-compare` prints the
// trajectory). Unlike the storm benchmarks, nothing here is warmed: setup
// cost is precisely the cost of cold, per-instance work.
func BenchmarkNetworkSetup(b *testing.B) {
	for _, side := range []int{100, 320, 1000} {
		n := side * side
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := graph.Torus(side, side)
				net := NewNetwork(g, 42)
				net.buf = newEngineBuffers(net)
				if net.N() != n {
					b.Fatal("unexpected node count")
				}
			}
		})
	}
}
