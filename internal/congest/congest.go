package congest

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"shortcutpa/internal/graph"
)

// envWorkers reads the CONGEST_WORKERS environment override once: a CI/ops
// knob that makes every new network default to that engine parallelism
// (SetWorkers still overrides per network). Results are bit-identical at
// any setting, so the knob only changes which engine executes; the
// race-short CI matrix uses it to drive the whole suite through the
// parallel engine's pool and sharded wake scan.
var envWorkers = sync.OnceValue(func() int {
	k, err := strconv.Atoi(os.Getenv("CONGEST_WORKERS"))
	if err != nil || k < 0 {
		return 0
	}
	return k
})

// Message is one O(log n)-bit CONGEST message: a protocol-defined kind tag
// and up to three machine words of payload (a constant number of O(log n)-bit
// fields, as the model allows).
type Message struct {
	Kind    int32
	A, B, C int64
}

// Incoming is a message as seen by its receiver, tagged with the local port
// it arrived on.
type Incoming struct {
	Port int
	Msg  Message
}

// Metrics accumulates the two cost measures of the paper.
type Metrics struct {
	Rounds   int64
	Messages int64
}

// Add returns the component-wise sum of m and o.
func (m Metrics) Add(o Metrics) Metrics {
	return Metrics{Rounds: m.Rounds + o.Rounds, Messages: m.Messages + o.Messages}
}

// Phase records the cost of one named protocol phase.
type Phase struct {
	Name string
	Cost Metrics
}

// Proc is a node's protocol state machine. Step is invoked once per round in
// which the node is scheduled: round 0, any round with incoming messages,
// and any round following a Step that returned true (active). Returning
// false parks the node until a message wakes it.
//
// Proc is the per-node form: Run takes one value per node. The paper's
// protocols are uniform — every node runs the same state machine over
// per-node state — so production protocols use the shared form, NodeProc,
// which avoids materializing n closures or proc objects per phase.
type Proc interface {
	Step(ctx *Ctx) (active bool)
}

// ProcFunc adapts a function to the Proc interface.
type ProcFunc func(ctx *Ctx) bool

// Step implements Proc.
func (f ProcFunc) Step(ctx *Ctx) bool { return f(ctx) }

// NodeProc is a phase's state machine shared by every node: one value whose
// Step is invoked with the node index v whenever v is scheduled (same
// schedule as Proc.Step — round 0, deliveries, or active). Per-node state
// lives in flat protocol-owned arrays indexed by v, not in the NodeProc
// value, so one phase costs O(1) allocations regardless of n.
//
// The engine itself runs only NodeProcs; Run adapts a []Proc table through
// one. Both forms produce bit-identical executions — the scheduler, the
// delivery buffers, and the cost accounting are shared.
//
// Concurrency contract (workers > 1): Step(ctx, v) may be invoked for
// different v concurrently from several goroutines, exactly as distinct
// Procs may. State indexed by v (or by v's CSR port offsets) is safe;
// writes to state shared across nodes require the same discipline per-node
// Procs already needed (in practice: none — protocol state is per-node).
type NodeProc interface {
	Step(ctx *Ctx, v int) (active bool)
}

// NodeProcFunc adapts a function to the NodeProc interface.
type NodeProcFunc func(ctx *Ctx, v int) bool

// Step implements NodeProc.
func (f NodeProcFunc) Step(ctx *Ctx, v int) bool { return f(ctx, v) }

// procTable adapts the per-node []Proc form onto the shared-proc engine
// path: stepping node v dispatches to the v-th table entry.
type procTable []Proc

// Step implements NodeProc.
func (t procTable) Step(ctx *Ctx, v int) bool { return t[v].Step(ctx) }

// Network binds a graph to the simulator: node IDs, per-node PRNGs, and
// accumulated cost accounting across protocol phases. The flat delivery
// buffers are allocated once per network and reused by every phase.
type Network struct {
	g        *graph.Graph
	csr      graph.CSR
	destSlot []int32 // per sender half-edge: the rank-indexed receiver slot it delivers into
	portSlot []int32 // per receiver half-edge RowStart[v]+p: the slot holding the message arriving on port p
	slotPort []int32 // per slot: the receiver-side arrival port (inverse of portSlot within each row) — slots store no ports, readers derive them here
	scratch  *Scratch
	seed     int64
	ids      []int64
	idSorted []int64 // node IDs in ascending order: the mapless NodeByID index
	idNode   []int32 // idNode[k] is the node whose ID is idSorted[k]
	rngs     []*rand.Rand
	total    Metrics
	phases   []Phase
	workers  int
	plan     *shardPlan // cached edge-balanced shard boundaries (shard.go); nil until first parallel wave, dropped by SetWorkers/Reset
	running  bool       // a phase is executing; guards Reset/SetWorkers/SetScenario mid-phase
	denseOnly bool      // SetSparseRounds(false): every round takes the dense full-range path
	stepped      int64 // Step invocations across all rounds since construction/ResetMetrics (awake%: stepped / (n * Rounds))
	sparseRounds int64 // rounds drained from the frontier lists rather than the full node range
	clock    int64      // global round counter across phases; stamps never repeat
	epoch    int64      // stamp epoch base: the int32 buffer stamps encode clock-epoch (see renormStamps)
	scenario *Scenario  // attached fault scenario (scenario.go); nil = fault-free
	fault    *faultState
	buf      *engineBuffers
	rs       *runState // recycled per-phase state: one allocation for the network's lifetime, rewritten by every RunNodesParallel
}

// NewNetwork wraps g for simulation. The seed determines node IDs and all
// node randomness, making every execution reproducible. Construction is
// O(n + m) with no hash maps; the network's default worker count
// (CONGEST_WORKERS) also shards the slot-geometry fill — see
// NewNetworkWorkers for an explicit setting.
func NewNetwork(g *graph.Graph, seed int64) *Network {
	return NewNetworkWorkers(g, seed, envWorkers())
}

// NewNetworkWorkers is NewNetwork with an explicit engine parallelism,
// applied both to construction (the O(m) slot-geometry fill shards across
// a worker pool when workers > 1) and, like SetWorkers, to every
// subsequent phase. The built network is bit-identical at any setting.
func NewNetworkWorkers(g *graph.Graph, seed int64, workers int) *Network {
	n := g.N()
	net := &Network{
		g:        g,
		csr:      g.CSR(),
		seed:     seed,
		ids:      make([]int64, n),
		idSorted: make([]int64, n),
		idNode:   make([]int32, n),
		rngs:     make([]*rand.Rand, n),
		workers:  workers,
	}
	// Arbitrary unique IDs: an injective affine map of a seeded permutation,
	// so IDs are unique, O(log n)-bit scale, and in random order (the KT0
	// "arbitrary ID" assumption; see DESIGN.md on leader-election messages).
	// The map is strictly increasing in perm[v], so the sorted ID index
	// behind NodeByID needs no sort — and no map: scattering by perm rank
	// builds the ascending (id, node) arrays in the same O(n) pass.
	// Per-node PRNGs are created lazily (see rng): a math/rand source is
	// ~5 KB, so eager creation would dominate the network's footprint at
	// n = 10^6 while most protocols never draw randomness at most nodes.
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	for v := 0; v < n; v++ {
		k := perm[v]
		id := int64(k)*2654435761 + 12345
		net.ids[v] = id
		net.idSorted[k] = id
		net.idNode[k] = int32(v)
	}
	// The global round clock starts at clockBase, not 0, so the engine
	// buffers' zero values can serve as their "never written" sentinels:
	// every occupancy test compares a stamp against round or round-1, both
	// >= 1 from the first round on, so an untouched (all-zero) slot or wake
	// stamp can never read as occupied and the buffers need no
	// initialization pass at all — at n = 10^6 that pass was the single
	// largest setup cost (hundreds of MB of first-touch writes).
	net.clock = clockBase
	net.fillGeometry()
	return net
}

// clockBase is the first global round number. Must be >= 2: stamps compare
// against round and round-1, and both must stay above the zero value that
// freshly allocated (never-written) buffer entries carry.
const clockBase = 2

// fillGeometry builds the edge-slot geometry. Delivery slots are
// rank-indexed: slot RowStart[v]+k holds the message from v's k-th neighbor
// in ascending node order, so a linear scan of a node's slot range IS the
// sequential engine's sender-index delivery order — no reordering at Recv
// time.
//
// The fill is one O(m) pass: iterating senders u in ascending order and
// bumping each receiver's fill counter assigns every half-edge its
// receiver-side rank slot. destSlot gives each sender half-edge that slot
// directly — Send is one table lookup, and slots are disjoint across all
// (sender, port) pairs by construction. portSlot maps the receiver's ports
// to the same slots: for receiver v, portSlot[RowStart[v]+p] is the slot
// holding the message that arrives on port p — the O(1) lookup behind
// RecvOn. slotPort is its inverse within each row: slotPort[s] is the
// arrival port of slot s. Slots themselves store only the 32-byte Message
// (no per-round port copy); every read path that reports a port derives it
// from this static table instead.
//
// With workers > 1 the fill shards across a temporary worker pool (see
// fillGeometryParallel); the sequential pass below is the reference the
// parallel one must match slot for slot.
func (n *Network) fillGeometry() {
	nodes := n.N()
	rs := n.csr.RowStart
	n.destSlot = make([]int32, len(n.csr.PortTo))
	n.portSlot = make([]int32, len(n.csr.PortTo))
	n.slotPort = make([]int32, len(n.csr.PortTo))
	if n.workers > 1 && nodes >= minParallelFillNodes {
		// The fill's transient counters are O(workers * n), and shards
		// beyond the CPU count add only that scratch (the result is
		// bit-identical at any count), so clamp to real parallelism — with
		// a floor of 8 so the sharded path stays exercisable on small
		// hosts and in tests regardless of the machine.
		n.fillGeometryParallel(min(n.workers, nodes, max(runtime.GOMAXPROCS(0), 8)))
		return
	}
	fill := make([]int32, nodes)
	for u := 0; u < nodes; u++ {
		for h := rs[u]; h < rs[u+1]; h++ {
			v := n.csr.PortTo[h]
			slot := rs[v] + fill[v]
			n.destSlot[h] = slot
			n.portSlot[rs[v]+n.csr.PortRev[h]] = slot
			n.slotPort[slot] = n.csr.PortRev[h]
			fill[v]++
		}
	}
}

// Graph returns the underlying graph.
func (n *Network) Graph() *graph.Graph { return n.g }

// N returns the number of nodes.
func (n *Network) N() int { return n.g.N() }

// ID returns node v's unique O(log n)-bit identifier.
func (n *Network) ID(v int) int64 { return n.ids[v] }

// NodeByID returns the node index with the given ID, or -1. The lookup is
// a binary search of the sorted (id, node) index built in NewNetwork — at
// n = 10^6 the old map's inserts dominated construction, while the sorted
// pair of flat arrays costs 12 bytes/node and one O(n) scatter pass.
func (n *Network) NodeByID(id int64) int {
	k := sort.Search(len(n.idSorted), func(i int) bool { return n.idSorted[i] >= id })
	if k < len(n.idSorted) && n.idSorted[k] == id {
		return int(n.idNode[k])
	}
	return -1
}

// Seed returns the master seed.
func (n *Network) Seed() int64 { return n.seed }

// rng returns node v's private PRNG, creating it on first use. The stream
// depends only on (seed, v), so lazy creation is invisible to protocols and
// identical across engines. Under workers > 1 each node is stepped by
// exactly one goroutine, so the slot write is single-writer.
func (n *Network) rng(v int) *rand.Rand {
	if r := n.rngs[v]; r != nil {
		return r
	}
	r := rand.New(rand.NewSource(n.seed ^ (int64(v+1) * 0x9E3779B9)))
	n.rngs[v] = r
	return r
}

// Workers returns the configured engine parallelism (0 or 1 = sequential).
func (n *Network) Workers() int { return n.workers }

// SetWorkers configures how many workers Run uses for every subsequent
// phase: k <= 1 selects the sequential engine, k > 1 shards each round
// across k goroutines. The choice affects wall-clock time only — results,
// metrics, and per-node PRNG streams are bit-identical either way.
//
// Contract: k < 0 is clamped to 0 (sequential — 0 and 1 are equivalent, 0
// being "unset"). The worker count is latched when a phase starts, so it can
// never change mid-phase; calling SetWorkers while a phase is running (from
// inside a Step) panics — that is a protocol bug, like sending twice on one
// port, not a runtime condition.
func (n *Network) SetWorkers(k int) {
	if n.running {
		panic("congest: SetWorkers called while a phase is running")
	}
	if k < 0 {
		k = 0
	}
	if k != n.workers {
		// The cached shard boundaries are per worker count; drop them so
		// the next parallel phase recomputes for the new k. (shardPlan also
		// rejects a stale count by key, so this is for memory hygiene as
		// much as correctness: no boundary array outlives its setting.)
		n.plan = nil
	}
	n.workers = k
}

// SetSparseRounds toggles sparse-activity round execution (default on):
// when on, a round whose frontier — the nodes active last round plus the
// nodes woken by a delivery — fit under the engine's frontier caps is
// drained from per-shard frontier lists in ascending node order instead of
// scanning the whole node range, so quiet rounds cost O(awake + delivered)
// rather than O(n + slots). Off forces the classic dense scan every round.
//
// The setting affects wall-clock time only: the stepped-node set, its
// order, every PRNG stream, and all metrics are bit-identical either way
// (the equivalence harness pins this). Exists for benchmarks and the
// dense-vs-sparse equivalence leg; production callers leave it on. Like
// SetWorkers, the setting is latched when a phase starts, and calling it
// while a phase is running panics.
func (n *Network) SetSparseRounds(on bool) {
	if n.running {
		panic("congest: SetSparseRounds called while a phase is running")
	}
	n.denseOnly = !on
}

// SparseRounds reports whether sparse-activity round execution is enabled.
func (n *Network) SparseRounds() bool { return !n.denseOnly }

// ActivityStats reports the execution-activity counters accumulated since
// construction or the last ResetMetrics: how many node Steps ran in total
// (the mean awake fraction is stepped / (n * Total().Rounds)) and how many
// rounds were drained from the frontier lists instead of the full node
// range. Purely observational — the counters never influence execution.
func (n *Network) ActivityStats() (stepped, sparseRounds int64) {
	return n.stepped, n.sparseRounds
}

// Total returns the cost accumulated over all phases run so far.
func (n *Network) Total() Metrics { return n.total }

// Phases returns the per-phase cost log.
func (n *Network) Phases() []Phase {
	out := make([]Phase, len(n.phases))
	copy(out, n.phases)
	return out
}

// ResetMetrics clears accumulated metrics (e.g. to exclude setup phases from
// an experiment's accounting). The per-phase history is cleared, then
// truncated: clear drops every per-run phase-name string (a bare truncation
// would keep them reachable across thousands of served runs), while keeping
// the backing array lets the next phase's record append without allocating —
// the array's footprint stays bounded by the longest single run's phase
// count, entries zeroed.
func (n *Network) ResetMetrics() {
	n.total = Metrics{}
	n.stepped = 0
	n.sparseRounds = 0
	clear(n.phases)
	n.phases = n.phases[:0]
}

// Reset returns a constructed network to its as-new protocol-visible state,
// so the next protocol run on it is bit-identical — same outputs, same
// Rounds/Messages, same PRNG streams — to a run on a freshly built
// NewNetwork(g, seed). This is the reuse contract behind multi-run serving
// (internal/bench job runner): topology, IDs, slot geometry, and the
// ~O(n+2m) engine buffers are all seed- or graph-determined and stay as
// built, so Reset is O(n) and never reallocates.
//
// What Reset actually does:
//
//   - drops every per-node PRNG, so each stream restarts from its (seed, v)
//     origin on next use. Without this a reused network draws from
//     mid-stream state and randomized protocols silently diverge from the
//     fresh-network execution;
//   - clears the cost accounting (ResetMetrics): totals and the per-phase
//     history, which would otherwise grow without bound across served runs;
//   - rewinds the attached fault scenario (if any) to scenario round 0:
//     every node revives, every edge heals, the scheduled-event cursor and
//     the fault PRNG return to their origins, so a served run replays the
//     identical fault sequence. The scenario stays attached — detaching is
//     SetScenario(nil)'s job, not Reset's. With a scenario attached the
//     rewind makes Reset O(n + 2m) (the death flags are cleared in place);
//     fault-free networks keep the O(n) bound below;
//   - leaves the global round clock alone. The clock only ever rolls
//     forward, which is precisely what makes the delivery buffers reusable
//     without clearing: stale slot and wake stamps are strictly older than
//     any round the next phase can test for. Protocols never see the
//     absolute clock (Ctx.Round is phase-relative), so a fresh network and
//     a reset one are indistinguishable from inside a Step.
//
// The engine's per-node scheduling flags need no attention: a phase's first
// round steps every node and rewrites active[], and the recv-view and wake
// stamps are round-tagged, so a monotone clock makes stale entries inert
// even after a phase aborted on BudgetExceededError.
//
// Reset must not be called while a phase is running (it panics), and it
// does not change the SetWorkers setting: engine parallelism is the
// caller's serving-side knob, not protocol-visible state.
func (n *Network) Reset() {
	if n.running {
		panic("congest: Reset called while a phase is running")
	}
	for v := range n.rngs {
		n.rngs[v] = nil
	}
	// Shard boundaries are topology-determined, so a cached plan would stay
	// valid across Reset — but as-new means as-new: a reset network holds no
	// derived scheduling state, and recomputing is O(workers log n).
	n.plan = nil
	if n.fault != nil {
		n.fault.rewind()
	}
	n.ResetMetrics()
}

// MergeCosts folds another accounting total into this network's, for
// algorithms that run auxiliary simulations (e.g. MSTs under reweighted
// copies of the same topology).
func (n *Network) MergeCosts(m Metrics) {
	n.total = n.total.Add(m)
	n.phases = append(n.phases, Phase{Name: "merged", Cost: m})
}

// BudgetExceededError reports that a protocol did not quiesce within its
// round budget.
type BudgetExceededError struct {
	Phase  string
	Budget int64
}

// Error implements the error interface.
func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("congest: phase %q exceeded round budget %d", e.Phase, e.Budget)
}

// Run executes one protocol phase: procs[v] is node v's state machine. The
// phase ends at global quiescence (no active node, no message in flight) or
// fails with BudgetExceededError after maxRounds. The phase cost is recorded
// under name and added to the network totals.
//
// Run is a thin adapter over RunNodes (a procTable dispatches to the per-node
// entries), kept for tests and ad-hoc protocols; production protocols use
// RunNodes directly to avoid building n proc values per phase.
func (n *Network) Run(name string, procs []Proc, maxRounds int64) (Metrics, error) {
	return n.RunParallel(name, procs, maxRounds, n.workers)
}

// RunParallel is Run with an explicit worker count for this phase,
// overriding the network-level SetWorkers setting. workers <= 1 runs the
// sequential engine; workers > 1 shards each round across that many
// goroutines; the edge-slot delivery buffers make the two bit-identical.
func (n *Network) RunParallel(name string, procs []Proc, maxRounds int64, workers int) (Metrics, error) {
	if len(procs) != n.N() {
		return Metrics{}, fmt.Errorf("congest: phase %q has %d procs for %d nodes", name, len(procs), n.N())
	}
	// The table rides in its own parameter rather than boxed as a NodeProc:
	// interface-boxing a slice header heap-allocates, and this is a per-phase
	// path (one of the two allocations a served phase used to make).
	return n.runPhase(name, nil, procs, maxRounds, workers)
}

// RunNodes executes one protocol phase driven by a single shared state
// machine: p.Step(ctx, v) is invoked for every scheduled node v. Scheduling,
// quiescence, budget failure, and cost recording are identical to Run — the
// two entry points differ only in how the node's Step is found.
func (n *Network) RunNodes(name string, p NodeProc, maxRounds int64) (Metrics, error) {
	return n.RunNodesParallel(name, p, maxRounds, n.workers)
}

// RunNodesParallel is RunNodes with an explicit worker count for this phase,
// overriding the network-level SetWorkers setting.
func (n *Network) RunNodesParallel(name string, p NodeProc, maxRounds int64, workers int) (Metrics, error) {
	if p == nil && n.N() > 0 {
		return Metrics{}, fmt.Errorf("congest: phase %q has a nil NodeProc for %d nodes", name, n.N())
	}
	return n.runPhase(name, p, nil, maxRounds, workers)
}

// runPhase is the engine's one true phase driver; every Run* entry point
// funnels here. Exactly one of p and table is set: table is the []Proc form
// passed unboxed (see RunParallel).
func (n *Network) runPhase(name string, p NodeProc, table procTable, maxRounds int64, workers int) (Metrics, error) {
	if n.running {
		return Metrics{}, fmt.Errorf("congest: phase %q started while another phase is running on this network", name)
	}
	n.running = true
	defer func() { n.running = false }()
	st := newRunState(n, p, table, workers)
	defer st.close()
	// Advance the network clock past every stamp this phase can have
	// written, even on a budget failure or a protocol panic: the next
	// phase's rounds must not alias slots stamped by an aborted one.
	defer func() { n.clock = st.round + 2 }()
	var cost Metrics
	for !st.quiescent() {
		if cost.Rounds >= maxRounds {
			n.record(name, cost)
			return cost, &BudgetExceededError{Phase: name, Budget: maxRounds}
		}
		cost.Messages += st.step()
		cost.Rounds++
	}
	n.record(name, cost)
	return cost, nil
}

func (n *Network) record(name string, cost Metrics) {
	n.total = n.total.Add(cost)
	n.phases = append(n.phases, Phase{Name: name, Cost: cost})
}

// engineBuffers is the network-lifetime flat storage of the engine: the
// flipping 2m-slot delivery buffers plus the per-node scheduling and Recv
// state, laid out structure-of-arrays. Allocated once (first Run) and
// reused by every subsequent phase — the global round clock guarantees
// stale stamps can never match, so phases need no clearing. Construction is
// allocation only, no initialization pass: the clock starts at clockBase,
// so the zero value every fresh array carries already means "never written"
// to each occupancy test. At n = 10^6 the old init loops (static Port
// prefill + stamp sentinels) were hundreds of MB of first-touch writes —
// the dominant setup cost; now a page is faulted in by the first round that
// actually uses it. See README.md "Memory layout".
//
// The slot arrays cost 72 B per slot resident (2 x 32 B Message + 2 x 4 B
// stamp); the arrival port is not stored per slot per round — it is a
// static property of the slot geometry (Network.slotPort), derived by the
// read paths that report it. The compacted Recv view (40 B/slot) is lazy:
// protocols on the zero-copy primitives (ForRecv/RecvOn) never allocate it.
type engineBuffers struct {
	// Rank-indexed delivery slots (see NewNetwork): slot s in node v's CSR
	// range holds the message from v's (s-RowStart[v])-th smallest-index
	// neighbor. cur* is what receives read this round; next* is what Send
	// writes. A slot is occupied iff its stamp equals the epoch-relative
	// round it was sent in: curStamp[s] == snow-1 (sent last round),
	// nextStamp[s] == snow, where snow = round - epoch fits int32 by the
	// renormStamps pass (see runState.renormStamps).
	curMsg    []Message
	nextMsg   []Message
	curStamp  []int32
	nextStamp []int32
	// wake*[v] stamps the last epoch-relative round in which some sender
	// targeted v; the scheduler's "has incoming messages" test is
	// wakeCur[v] == snow-1.
	wakeCur  []int32
	wakeNext []int32
	// recvBuf holds compacted Recv views (per-node CSR ranges): the
	// synthesized Incoming{Port, Msg} values for the slots occupied this
	// round. recvLen[v] is the view length and recvRound[v] tags the
	// epoch-relative round the view is valid for. The buffer is allocated
	// on the first Recv call that needs it (recvView), never up front:
	// protocols on ForRecv/RecvOn — all of them since PR 3 — keep it nil
	// and never pay its 40 B/slot.
	recvBufReady atomic.Bool
	recvBufMu    sync.Mutex
	recvBuf      []Incoming
	recvLen      []int32
	recvRound    []int32
	// msgBuf is RecvMsgs' counterpart to recvBuf: per-node ranges of bare
	// compacted messages, for the sparse case only — a fully occupied range
	// is returned as an alias of the curMsg slots themselves, zero copies.
	// Same lazy discipline: nil until the first sparse RecvMsgs call, so
	// full-broadcast protocols never allocate it (32 B/slot when they do).
	msgBufReady atomic.Bool
	msgBufMu    sync.Mutex
	msgBuf      []Message
	active      []bool
	slots       int
	// Frontier lists (sparse-activity round execution): two double-buffered
	// node-index lists per round — the nodes whose last Step returned active
	// (front*) and the nodes woken by a delivery (woke*). A round whose
	// frontier fit under frontierCap is drained from these lists in ascending
	// node order instead of scanning the full node range, making round cost
	// O(awake), not O(n); dense rounds keep building them so the engine can
	// drop back to sparse the moment activity does. Like every other engine
	// buffer: allocation only, no init (lengths live in the run state and
	// start at 0), reused by every phase.
	frontA, frontB []int32
	wokeA, wokeB   []int32
	// dirty is the parallel engine's sender-side delivery tracking: during
	// the step wave each worker appends the receiver of every slot write to
	// its own segment (segmented by the shard's half-edge span, so capacity
	// can never be exceeded — a worker sends at most its span). The
	// coordinator merges the segments into next round's woken lists, making
	// wake derivation O(delivered) instead of the O(slots) scan wave.
	// Lazily allocated by the first parallel phase (ensurePool): sequential
	// networks never pay its 4 B/slot. Published by an atomic flag so
	// MemFootprint stays callable while a phase is stepping.
	dirtyReady atomic.Bool
	dirty      []int32
}

func newEngineBuffers(n *Network) *engineBuffers {
	nodes, slots := n.N(), len(n.csr.PortTo)
	// No initialization: zero stamps and zero recvRound entries can never
	// equal a real round (the clock starts at clockBase >= 2), and slot
	// contents are only read behind a matching stamp.
	return &engineBuffers{
		curMsg:    make([]Message, slots),
		nextMsg:   make([]Message, slots),
		curStamp:  make([]int32, slots),
		nextStamp: make([]int32, slots),
		wakeCur:   make([]int32, nodes),
		wakeNext:  make([]int32, nodes),
		recvLen:   make([]int32, nodes),
		recvRound: make([]int32, nodes),
		active:    make([]bool, nodes),
		slots:     slots,
		frontA:    make([]int32, nodes),
		frontB:    make([]int32, nodes),
		wokeA:     make([]int32, nodes),
		wokeB:     make([]int32, nodes),
	}
}

// recvView returns the compacted-Recv backing buffer, allocating it on
// first use. A hand-rolled sync.Once (flag + mutex) rather than the real
// one so the allocated fast path is a single atomic load with no closure:
// concurrent first calls from parallel workers are safe (each worker then
// writes only its own nodes' disjoint CSR ranges, like every other
// per-node buffer), and the atomic store/load pair publishes the slice
// header to later readers.
func (b *engineBuffers) recvView() []Incoming {
	if b.recvBufReady.Load() {
		return b.recvBuf
	}
	b.recvBufMu.Lock()
	defer b.recvBufMu.Unlock()
	if !b.recvBufReady.Load() {
		b.recvBuf = make([]Incoming, b.slots)
		b.recvBufReady.Store(true)
	}
	return b.recvBuf
}

// msgView returns the compacted-RecvMsgs backing buffer, allocating it on
// first use, with the same hand-rolled once recvView uses and for the same
// reasons (single atomic load on the hot path, no closure, disjoint
// per-node ranges after publication).
func (b *engineBuffers) msgView() []Message {
	if b.msgBufReady.Load() {
		return b.msgBuf
	}
	b.msgBufMu.Lock()
	defer b.msgBufMu.Unlock()
	if !b.msgBufReady.Load() {
		b.msgBuf = make([]Message, b.slots)
		b.msgBufReady.Store(true)
	}
	return b.msgBuf
}

// debugPoisonRecv, when set by a test, poisons the expired side of the SoA
// delivery state at every round flip: the whole Recv view buffer (if it was
// ever allocated — the lazy recvBuf stays nil, and therefore unpoisonable
// and unretainable, until a compacting Recv call exists), every message in
// the retired slot buffer, and the retired slot stamps (zeroed — 0 is the
// permanent "never written" sentinel, so a stamp bug that skips an
// occupancy test reads poisoned messages instead of plausible stale ones).
// A protocol that illegally retains a Recv slice across rounds then
// observes Port == -1 / Kind == poisonKind instead of silently stale data.
// Too costly to leave on outside tests.
var debugPoisonRecv = false

// poisonKind marks a poisoned Recv entry (debugPoisonRecv).
const poisonKind int32 = -0x7011

// runState is the per-phase simulation state: a window of the network's
// persistent engine buffers plus this phase's round counters and pool. The
// struct itself is recycled across phases (Network.rs) — rewritten
// wholesale at phase start — so starting a phase allocates nothing but what
// the phase's engine needs (a pool and per-worker Ctxs, parallel only).
type runState struct {
	net         *Network
	proc        NodeProc
	table       procTable // non-nil when proc is the []Proc adapter: unwrapped once so the legacy form pays one dynamic dispatch per node, not two
	base        int64     // network clock at phase start; the protocol-visible round is round-base
	round       int64     // global round number, monotone across phases
	snow        int32     // epoch-relative round: int32(round - net.epoch), the value every buffer stamp encodes; renormStamps keeps it < stampRenormThreshold
	started     bool
	inFlight    int64
	activeCount int64 // nodes whose last Step returned active (summed per shard)
	workers     int         // goroutines stepping nodes; <= 1 means sequential
	fault       *faultState // the network's compiled scenario at phase start; nil = fault-free
	pool        *pool       // persistent worker pool; nil until first parallel step
	stepJob     job         // hoisted step-wave closure (no per-round allocation)
	scanJob     job         // hoisted wake-scan-wave closure
	stepBounds  []int32     // sender-weighted edge-balanced shard boundaries (shard.go)
	slotBounds  []int32     // receiver-slot-weighted boundaries for the wake scan
	shardCtxs   []*shardCtx // per-worker Ctx + send counter, built once per parallel phase (ensurePool)
	seqSent     int64       // the sequential engine's per-round message counter (hoisted: a per-round local escapes through the Ctx)
	seqCtx      Ctx         // the sequential engine's one Ctx, reused every round of the phase

	// Sparse-activity execution state (see frontierCap for the policy).
	// dense is latched per round: the phase's first round always scans the
	// full range (round == base steps everyone), and any round whose
	// frontier recording overflowed its caps forces the next round dense.
	dense     bool // this round drains the full node range
	denseOnly bool // network knob (SetSparseRounds(false)): never drain sparse
	seqCap    int  // the sequential engine's frontier-segment capacity, frontierCap(n)
	// The frontier lists for this round (cur: drained this round) and the
	// next (next: appended this round), swapped at flip like the delivery
	// buffers. facts hold active nodes — appended in ascending order by the
	// step loops, inherently duplicate-free; fwokes hold woken nodes —
	// deduplicated against the wakeNext stamp at append time (so no new
	// stamp surface exists for renormStamps to rebase), sorted at drain
	// time. The parallel engine segments the same arrays by stepBounds;
	// segment lengths live in the shardCtxs, the sequential lengths below.
	factCur, factNext   []int32
	fwokeCur, fwokeNext []int32
	nActCur, nActNext   int32 // sequential list lengths (appended entries, capped at seqCap)
	nWokeCur, nWokeNext int32 // nWokeNext counts all woken nodes; entries beyond seqCap are dropped (overflow)
	*engineBuffers
}

// frontierCap bounds how many frontier entries a segment over m items (a
// shard's nodes, or — for the dirty lists — a shard's half-edge span) may
// record before the recording is declared overflowed and the next round
// falls back to the dense path. The cap is what keeps the dense storm at
// dense-scan cost: once a list fills, appends stop (one compare per event),
// so a fully active round pays O(cap) extra work, not O(n). An eighth of
// the segment keeps the sparse drain (which also sorts the woken list)
// comfortably cheaper than the scan it replaces; the +16 slack stops tiny
// shards from thrashing between modes. denseOnly zeroes every cap, which
// makes overflow — and therefore the dense path — unconditional.
func frontierCap(m int, denseOnly bool) int {
	if denseOnly {
		return 0
	}
	c := m/8 + 16
	if c > m {
		c = m
	}
	return c
}

// stampRenormThreshold is the epoch-relative round at which the engine
// renormalizes every buffer stamp back toward clockBase (renormStamps),
// keeping the int32 stamps from ever wrapping. A few rounds of headroom
// below MaxInt32 cover the +2 clock advance at phase end. A variable, not a
// const, so the epoch-renormalization test can force the boundary on a tiny
// network instead of executing 2^31 rounds.
var stampRenormThreshold = int32(math.MaxInt32 - 8)

// renormStamps rebases every live stamp by delta = snow - clockBase, so the
// current round's stamp value returns to clockBase and the int32 encoding
// never wraps. Runs on the coordinator at a round boundary — before the
// step wave, like fault application — so both engines rebase at the same
// instant and bit-identity holds. The mapping preserves every occupancy
// test exactly: a live stamp (== snow-1) maps to clockBase-1, and anything
// older maps to <= 0, clamped to the permanent "never written" 0 — stale
// stamps were already unable to match any future round, and stay so.
// O(n + 2m), amortized over ~2^31 rounds: free.
//
// The sparse-execution state deliberately adds no stamp surface here: the
// frontier and dirty lists hold node indices, not stamps, and the woken
// dedup test compares against wakeNext — already rebased below — so a
// renormalization boundary falling between a sparse append and its drain
// changes nothing (renorm_test.go crosses it in both modes).
func (st *runState) renormStamps() {
	delta := st.snow - clockBase
	if delta <= 0 {
		return
	}
	rebaseStamps(st.curStamp, delta)
	rebaseStamps(st.nextStamp, delta)
	rebaseStamps(st.wakeCur, delta)
	rebaseStamps(st.wakeNext, delta)
	rebaseStamps(st.recvRound, delta)
	st.snow = clockBase
	st.net.epoch += int64(delta)
}

func rebaseStamps(a []int32, delta int32) {
	for i, s := range a {
		if s <= delta {
			if s != 0 {
				a[i] = 0
			}
		} else {
			a[i] = s - delta
		}
	}
}

func newRunState(n *Network, p NodeProc, table procTable, workers int) *runState {
	nn := n.N()
	if workers > nn {
		workers = nn
	}
	if workers < 1 {
		workers = 1
	}
	if n.buf == nil {
		n.buf = newEngineBuffers(n)
	}
	st := n.rs
	if st == nil {
		st = new(runState)
		n.rs = st
	}
	*st = runState{
		net:           n,
		proc:          p,
		table:         table,
		base:          n.clock,
		round:         n.clock,
		snow:          int32(n.clock - n.epoch),
		workers:       workers,
		fault:         n.fault,
		dense:         true, // a phase's first round steps every node, so it is dense by definition
		denseOnly:     n.denseOnly,
		seqCap:        frontierCap(nn, n.denseOnly),
		factCur:       n.buf.frontA,
		factNext:      n.buf.frontB,
		fwokeCur:      n.buf.wokeA,
		fwokeNext:     n.buf.wokeB,
		engineBuffers: n.buf,
	}
	st.seqCtx = Ctx{st: st, sent: &st.seqSent}
	if st.table == nil {
		// A procTable can still arrive boxed through RunNodesParallel
		// directly; unwrap it so dispatch pays one dynamic call, not two.
		if t, ok := p.(procTable); ok {
			st.table = t
		}
	}
	return st
}

// stepRange steps the scheduled nodes of [lo, hi) through the phase's state
// machine — the dense inner loop of the sequential engine (full range) and
// each parallel worker (its shard). It returns how many stepped nodes came
// back active, which is the range's total active count: a node left
// unstepped is never active (an active node is always scheduled, so its
// flag is rewritten every round — crashed nodes are the one exception, and
// their stale flags sit behind the crash check in the faulty loop), plus
// how many nodes it stepped at all (the awake% observability counter).
//
// Each active node is also appended, in ascending order, to actNext — the
// next round's active-frontier list. actNext's length is the frontier cap:
// appends past it are dropped (active keeps counting), and the caller
// detects the overflow as active > len(actNext) and forces the next round
// dense, so a dropped entry is never a lost node.
func (st *runState) stepRange(ctx *Ctx, lo, hi int, actNext []int32) (active, stepped int64) {
	if f := st.fault; f != nil {
		return st.stepRangeFaulty(ctx, lo, hi, actNext, f)
	}
	if t := st.table; t != nil {
		for v := lo; v < hi; v++ {
			if st.scheduled(v) {
				ctx.v = v
				stepped++
				if st.active[v] = t[v].Step(ctx); st.active[v] {
					if active < int64(len(actNext)) {
						actNext[active] = int32(v)
					}
					active++
				}
			}
		}
		return active, stepped
	}
	for v := lo; v < hi; v++ {
		if st.scheduled(v) {
			ctx.v = v
			stepped++
			if st.active[v] = st.proc.Step(ctx, v); st.active[v] {
				if active < int64(len(actNext)) {
					actNext[active] = int32(v)
				}
				active++
			}
		}
	}
	return active, stepped
}

// stepFrontier is the sparse counterpart of stepRange: instead of scanning
// [lo, hi) and testing scheduled(v) per node, it drains the round's
// frontier — act (the nodes whose last Step returned active, inherently
// sorted and duplicate-free) merged with woke (the nodes woken by a
// delivery, sorted by the caller, duplicate-free by the wakeNext-stamp
// dedup at append time) — stepping each node exactly once in ascending
// node order. The stepped set equals {v in [lo, hi) : scheduled(v)}: act
// reproduces the active[v] disjunct and woke the wakeCur[v] == snow-1
// disjunct (the stamp is written iff the node is appended), and the
// round == base disjunct never reaches here (a phase's first round is
// dense by construction). Identical order, identical per-node work,
// identical PRNG streams — bit-identical to the dense scan, minus the
// O(range) walk.
//
// Crashed nodes are skipped exactly as the dense loop skips them; since a
// skipped node is never re-appended, a crash also evicts the node from
// every future frontier. Active appends follow stepRange's cap contract.
func (st *runState) stepFrontier(ctx *Ctx, act, woke, actNext []int32) (active, stepped int64) {
	f := st.fault
	t := st.table
	ia, iw := 0, 0
	for ia < len(act) || iw < len(woke) {
		var v int
		switch {
		case iw >= len(woke):
			v = int(act[ia])
			ia++
		case ia >= len(act):
			v = int(woke[iw])
			iw++
		case act[ia] < woke[iw]:
			v = int(act[ia])
			ia++
		case woke[iw] < act[ia]:
			v = int(woke[iw])
			iw++
		default: // same node on both lists: step once, advance both
			v = int(act[ia])
			ia++
			iw++
		}
		if f != nil && f.crashed[v] {
			continue
		}
		ctx.v = v
		stepped++
		var a bool
		if t != nil {
			a = t[v].Step(ctx)
		} else {
			a = st.proc.Step(ctx, v)
		}
		st.active[v] = a
		if a {
			if active < int64(len(actNext)) {
				actNext[active] = int32(v)
			}
			active++
		}
	}
	return active, stepped
}

func (st *runState) quiescent() bool {
	if !st.started {
		return false
	}
	if st.inFlight > 0 {
		return false
	}
	// activeCount is the active-frontier mass: the step loops count every
	// node they append to (or past the cap of) the next active list, so
	// quiescence detection is O(1) — no serial scan of the per-node active
	// flags. Frontier emptiness and this test coincide exactly: with
	// inFlight == 0 nothing was sent, so the woken list is empty (even a
	// dead-port Send that was counted-then-dropped keeps inFlight > 0 and
	// correctly defers quiescence by the round the model charges for it),
	// and the active list is empty iff activeCount == 0.
	return st.activeCount == 0
}

// scheduled reports whether node v runs this round: every node at the
// phase's first round, then active nodes and nodes with deliveries.
func (st *runState) scheduled(v int) bool {
	return st.active[v] || st.round == st.base || st.wakeCur[v] == st.snow-1
}

// flip ends a round: messages written this round become next round's
// deliveries. Stale stamps in the reused buffer are at least two rounds
// old, so they can never match a future occupancy test — no clearing.
func (st *runState) flip() {
	b := st.engineBuffers
	b.curMsg, b.nextMsg = b.nextMsg, b.curMsg
	b.curStamp, b.nextStamp = b.nextStamp, b.curStamp
	b.wakeCur, b.wakeNext = b.wakeNext, b.wakeCur
	// The frontier lists flip with the delivery buffers: what was appended
	// this round is drained next round. The lengths are swapped by the
	// engine that owns them (runState fields sequentially, shardCtxs in
	// parallel) right after.
	st.factCur, st.factNext = st.factNext, st.factCur
	st.fwokeCur, st.fwokeNext = st.fwokeNext, st.fwokeCur
	if debugPoisonRecv {
		// Poison the expired state: any retained Recv view (recvBuf, when
		// it exists), plus the retired slot buffer — its messages read as
		// poison and its stamps as never-written, so a read path that
		// dodges an occupancy test cannot see plausible stale data. The
		// zeroed stamps are semantically invisible: stale stamps and 0 both
		// fail every occupancy and double-send test.
		for i := range b.recvBuf {
			b.recvBuf[i] = Incoming{Port: -1, Msg: Message{Kind: poisonKind}}
		}
		for i := range b.msgBuf {
			b.msgBuf[i] = Message{Kind: poisonKind}
		}
		for i := range b.nextMsg {
			b.nextMsg[i] = Message{Kind: poisonKind}
		}
		clear(b.nextStamp)
	}
}

// step runs one synchronous round and returns the number of messages sent.
// Sequential engine: one dense scan or one sparse frontier drain, with the
// wake stamps and the woken-frontier list written inline by Send (single
// writer). The mode for the next round falls out of this round's recording:
// any list that overflowed its frontierCap forces dense; otherwise the
// lists are complete and the next round drains them.
func (st *runState) step() int64 {
	if st.workers > 1 {
		return st.stepParallel()
	}
	st.started = true
	if st.snow >= stampRenormThreshold {
		st.renormStamps()
	}
	st.applyFaults()
	st.seqSent = 0
	actNext := st.factNext[:st.seqCap]
	var active, stepped int64
	if st.dense {
		active, stepped = st.stepRange(&st.seqCtx, 0, st.net.N(), actNext)
	} else {
		// The woken list was appended in send order; the drain needs
		// ascending node order. slices.Sort is allocation-free, keeping
		// steady-state rounds at zero allocs.
		woke := st.fwokeCur[:st.nWokeCur]
		slices.Sort(woke)
		active, stepped = st.stepFrontier(&st.seqCtx, st.factCur[:st.nActCur], woke, actNext)
		st.net.sparseRounds++
	}
	st.activeCount = active
	st.net.stepped += stepped
	overflow := active > int64(st.seqCap) || int(st.nWokeNext) > st.seqCap
	st.flip()
	st.nActCur, st.nActNext = int32(min(active, int64(st.seqCap))), 0
	st.nWokeCur, st.nWokeNext = min(st.nWokeNext, int32(st.seqCap)), 0
	st.dense = st.denseOnly || overflow
	st.inFlight = st.seqSent
	st.round++
	st.snow++
	return st.inFlight
}
