// Package congest implements the synchronous CONGEST/KT0 message-passing
// model of Peleg [36] that the paper works in (Section 2.1):
//
//   - the network is an undirected graph; communication proceeds in discrete
//     synchronous rounds;
//   - in each round every node may send one O(log n)-bit message along each
//     incident edge; messages sent in round r are delivered at round r+1;
//   - every node has an arbitrary unique O(log n)-bit ID, initially known
//     only to itself (KT0); a node addresses neighbors only by local port.
//
// The engine is deterministic: nodes draw randomness from per-node PRNGs
// seeded from a master seed, and nodes are stepped in index order (node
// state is strictly local, so order cannot affect outcomes). Because step
// order cannot affect outcomes, rounds may also be executed by a worker
// pool (SetWorkers / RunParallel): each worker steps a disjoint shard of
// nodes into a private per-sender outbox, and outboxes are merged into
// inboxes in sender-index order, reproducing the sequential delivery order
// exactly. Parallel runs are bit-identical to sequential runs — same
// results, same Rounds/Messages, same per-node PRNG streams. See README.md.
//
// Cost accounting follows the paper's measures: Rounds is the number of
// synchronous rounds executed until global quiescence (or the budget), and
// Messages counts every send. Quiescence — no node active and no message in
// flight — is detected by the engine; in the paper nodes instead run each
// phase for a precomputed worst-case budget, so engine detection only trims
// trailing idle rounds and never alters protocol behaviour.
package congest

import (
	"fmt"
	"math/rand"

	"shortcutpa/internal/graph"
)

// Message is one O(log n)-bit CONGEST message: a protocol-defined kind tag
// and up to three machine words of payload (a constant number of O(log n)-bit
// fields, as the model allows).
type Message struct {
	Kind    int32
	A, B, C int64
}

// Incoming is a message as seen by its receiver, tagged with the local port
// it arrived on.
type Incoming struct {
	Port int
	Msg  Message
}

// Metrics accumulates the two cost measures of the paper.
type Metrics struct {
	Rounds   int64
	Messages int64
}

// Add returns the component-wise sum of m and o.
func (m Metrics) Add(o Metrics) Metrics {
	return Metrics{Rounds: m.Rounds + o.Rounds, Messages: m.Messages + o.Messages}
}

// Phase records the cost of one named protocol phase.
type Phase struct {
	Name string
	Cost Metrics
}

// Proc is a node's protocol state machine. Step is invoked once per round in
// which the node is scheduled: round 0, any round with incoming messages,
// and any round following a Step that returned true (active). Returning
// false parks the node until a message wakes it.
type Proc interface {
	Step(ctx *Ctx) (active bool)
}

// ProcFunc adapts a function to the Proc interface.
type ProcFunc func(ctx *Ctx) bool

// Step implements Proc.
func (f ProcFunc) Step(ctx *Ctx) bool { return f(ctx) }

// link caches the far side of a port.
type link struct {
	to      int
	revPort int
}

// Network binds a graph to the simulator: node IDs, per-node PRNGs, and
// accumulated cost accounting across protocol phases.
type Network struct {
	g       *graph.Graph
	seed    int64
	ids     []int64
	byID    map[int64]int
	rngs    []*rand.Rand
	links   [][]link
	total   Metrics
	phases  []Phase
	workers int
}

// NewNetwork wraps g for simulation. The seed determines node IDs and all
// node randomness, making every execution reproducible.
func NewNetwork(g *graph.Graph, seed int64) *Network {
	n := g.N()
	net := &Network{
		g:     g,
		seed:  seed,
		ids:   make([]int64, n),
		byID:  make(map[int64]int, n),
		rngs:  make([]*rand.Rand, n),
		links: make([][]link, n),
	}
	// Arbitrary unique IDs: an injective affine map of a seeded permutation,
	// so IDs are unique, O(log n)-bit scale, and in random order (the KT0
	// "arbitrary ID" assumption; see DESIGN.md on leader-election messages).
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	for v := 0; v < n; v++ {
		id := int64(perm[v])*2654435761 + 12345
		net.ids[v] = id
		net.byID[id] = v
		net.rngs[v] = rand.New(rand.NewSource(seed ^ (int64(v+1) * 0x9E3779B9)))
	}
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		net.links[v] = make([]link, deg)
		for p := 0; p < deg; p++ {
			net.links[v][p] = link{to: g.Neighbor(v, p), revPort: g.ReversePort(v, p)}
		}
	}
	return net
}

// Graph returns the underlying graph.
func (n *Network) Graph() *graph.Graph { return n.g }

// N returns the number of nodes.
func (n *Network) N() int { return n.g.N() }

// ID returns node v's unique O(log n)-bit identifier.
func (n *Network) ID(v int) int64 { return n.ids[v] }

// NodeByID returns the node index with the given ID, or -1.
func (n *Network) NodeByID(id int64) int {
	if v, ok := n.byID[id]; ok {
		return v
	}
	return -1
}

// Seed returns the master seed.
func (n *Network) Seed() int64 { return n.seed }

// Workers returns the configured engine parallelism (0 or 1 = sequential).
func (n *Network) Workers() int { return n.workers }

// SetWorkers configures how many workers Run uses for every subsequent
// phase: k <= 1 selects the sequential engine, k > 1 shards each round
// across k goroutines. The choice affects wall-clock time only — results,
// metrics, and per-node PRNG streams are bit-identical either way.
func (n *Network) SetWorkers(k int) { n.workers = k }

// Total returns the cost accumulated over all phases run so far.
func (n *Network) Total() Metrics { return n.total }

// Phases returns the per-phase cost log.
func (n *Network) Phases() []Phase {
	out := make([]Phase, len(n.phases))
	copy(out, n.phases)
	return out
}

// ResetMetrics clears accumulated metrics (e.g. to exclude setup phases from
// an experiment's accounting).
func (n *Network) ResetMetrics() {
	n.total = Metrics{}
	n.phases = nil
}

// MergeCosts folds another accounting total into this network's, for
// algorithms that run auxiliary simulations (e.g. MSTs under reweighted
// copies of the same topology).
func (n *Network) MergeCosts(m Metrics) {
	n.total = n.total.Add(m)
	n.phases = append(n.phases, Phase{Name: "merged", Cost: m})
}

// BudgetExceededError reports that a protocol did not quiesce within its
// round budget.
type BudgetExceededError struct {
	Phase  string
	Budget int64
}

// Error implements the error interface.
func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("congest: phase %q exceeded round budget %d", e.Phase, e.Budget)
}

// Run executes one protocol phase: procs[v] is node v's state machine. The
// phase ends at global quiescence (no active node, no message in flight) or
// fails with BudgetExceededError after maxRounds. The phase cost is recorded
// under name and added to the network totals.
func (n *Network) Run(name string, procs []Proc, maxRounds int64) (Metrics, error) {
	return n.RunParallel(name, procs, maxRounds, n.workers)
}

// RunParallel is Run with an explicit worker count for this phase,
// overriding the network-level SetWorkers setting. workers <= 1 runs the
// sequential engine; workers > 1 shards each round across that many
// goroutines with a deterministic merge, so results are bit-identical to
// the sequential engine.
func (n *Network) RunParallel(name string, procs []Proc, maxRounds int64, workers int) (Metrics, error) {
	if len(procs) != n.N() {
		return Metrics{}, fmt.Errorf("congest: phase %q has %d procs for %d nodes", name, len(procs), n.N())
	}
	st := newRunState(n, procs, workers)
	defer st.close()
	var cost Metrics
	for !st.quiescent() {
		if cost.Rounds >= maxRounds {
			n.record(name, cost)
			return cost, &BudgetExceededError{Phase: name, Budget: maxRounds}
		}
		cost.Messages += st.step()
		cost.Rounds++
	}
	n.record(name, cost)
	return cost, nil
}

func (n *Network) record(name string, cost Metrics) {
	n.total = n.total.Add(cost)
	n.phases = append(n.phases, Phase{Name: name, Cost: cost})
}

// runState is the per-phase mutable simulation state.
type runState struct {
	net           *Network
	procs         []Proc
	round         int64
	inbox         [][]Incoming
	nextbox       [][]Incoming
	active        []bool
	started       bool
	lastSend      []int64 // round of last send, flattened per (node, port)
	portOff       []int   // node -> offset into lastSend
	inFlight      int64
	sentThisRound int64
	workers       int        // goroutines stepping nodes; <= 1 means sequential
	outbox        [][]routed // per-sender private outboxes; nil when sequential
	pool          *pool      // persistent worker pool; nil until first parallel step
}

func newRunState(n *Network, procs []Proc, workers int) *runState {
	nn := n.N()
	if workers > nn {
		workers = nn
	}
	if workers < 1 {
		workers = 1
	}
	st := &runState{
		net:     n,
		procs:   procs,
		inbox:   make([][]Incoming, nn),
		nextbox: make([][]Incoming, nn),
		active:  make([]bool, nn),
		portOff: make([]int, nn+1),
		workers: workers,
	}
	if workers > 1 {
		st.outbox = make([][]routed, nn)
	}
	off := 0
	for v := 0; v < nn; v++ {
		st.portOff[v] = off
		off += n.g.Degree(v)
	}
	st.portOff[nn] = off
	st.lastSend = make([]int64, off)
	for i := range st.lastSend {
		st.lastSend[i] = -1
	}
	return st
}

func (st *runState) quiescent() bool {
	if !st.started {
		return false
	}
	if st.inFlight > 0 {
		return false
	}
	for _, a := range st.active {
		if a {
			return false
		}
	}
	return true
}

// step runs one synchronous round and returns the number of messages sent.
func (st *runState) step() int64 {
	if st.workers > 1 {
		return st.stepParallel()
	}
	st.started = true
	n := st.net.N()
	var sent int64
	ctx := Ctx{st: st}
	for v := 0; v < n; v++ {
		if !st.active[v] && len(st.inbox[v]) == 0 && st.round > 0 {
			continue
		}
		ctx.v = v
		before := st.sentThisRound
		st.active[v] = st.procs[v].Step(&ctx)
		sent += st.sentThisRound - before
	}
	// Deliver: swap inboxes.
	st.inFlight = 0
	for v := 0; v < n; v++ {
		st.inbox[v] = st.inbox[v][:0]
		st.inbox[v], st.nextbox[v] = st.nextbox[v], st.inbox[v]
		st.inFlight += int64(len(st.inbox[v]))
	}
	st.round++
	st.sentThisRound = 0
	return sent
}
