package congest

import (
	"fmt"
	"testing"

	"shortcutpa/internal/graph"
)

// nodeproc_test.go covers the shared-proc execution path (NodeProc /
// RunNodes): bit-identical agreement with the per-node []Proc form on both
// engines, the degenerate shapes, the nil-proc guard, and the poison-mode
// retention contract driven through RunNodes.

// gossipTopologies are the shapes both phase drivers must agree on.
func gossipTopologies() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(9)},
		{"star", graph.Star(8)},
		{"torus", graph.Torus(4, 4)},
		{"disconnected", graph.MustNew(5, []graph.Edge{
			{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 0, W: 1},
		})},
	}
}

// gossipStep is the common per-node round body: fold deliveries into
// minHeard and a transcript digest, then send on a random port (plus a
// broadcast on even rounds) while active. It exercises Recv, Rand, Send,
// CanSend, and the wake scheduler.
func gossipStep(ctx *Ctx, v int, minHeard, digest []int64) bool {
	for _, in := range ctx.Recv() {
		if in.Msg.A < minHeard[v] {
			minHeard[v] = in.Msg.A
		}
		digest[v] = digest[v]*1000003 + int64(in.Port)*31 + in.Msg.A%997 + ctx.Round()
	}
	if ctx.Round() < 6 {
		if d := ctx.Degree(); d > 0 {
			p := ctx.Rand().Intn(d)
			ctx.Send(p, Message{A: minHeard[v]})
			if ctx.Round()%2 == 0 {
				for q := 0; q < d; q++ {
					if ctx.CanSend(q) {
						ctx.Send(q, Message{A: minHeard[v], B: 1})
					}
				}
			}
		}
		return true
	}
	return false
}

// runGossip executes the gossip protocol through either phase driver and
// serializes the complete observable outcome.
func runGossip(t *testing.T, g *graph.Graph, seed int64, workers int, shared bool) string {
	t.Helper()
	net := NewNetwork(g, seed)
	n := g.N()
	minHeard := make([]int64, n)
	digest := make([]int64, n)
	for v := 0; v < n; v++ {
		minHeard[v] = net.ID(v)
	}
	var err error
	if shared {
		proc := NodeProcFunc(func(ctx *Ctx, v int) bool {
			return gossipStep(ctx, v, minHeard, digest)
		})
		_, err = net.RunNodesParallel("gossip", proc, 100, workers)
	} else {
		procs := make([]Proc, n)
		for v := 0; v < n; v++ {
			v := v
			procs[v] = ProcFunc(func(ctx *Ctx) bool {
				return gossipStep(ctx, v, minHeard, digest)
			})
		}
		_, err = net.RunParallel("gossip", procs, 100, workers)
	}
	if err != nil {
		t.Fatalf("workers=%d shared=%v: %v", workers, shared, err)
	}
	return fmt.Sprintf("state=%v digest=%v total=%+v phases=%+v",
		minHeard, digest, net.Total(), net.Phases())
}

// TestRunNodesMatchesRun is the shared-proc equivalence gate: on every
// topology, seed, and worker count, RunNodes with a shared NodeProc must be
// bit-identical — outputs, Rounds/Messages, per-phase log — to Run with the
// per-node closure table (which itself is pinned against the sequential
// engine by the other harnesses).
func TestRunNodesMatchesRun(t *testing.T) {
	for _, tc := range gossipTopologies() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 8} {
				want := runGossip(t, tc.g, seed, 1, false)
				for _, workers := range []int{1, 2, 4} {
					if got := runGossip(t, tc.g, seed, workers, true); got != want {
						t.Errorf("seed %d workers %d: RunNodes diverged from Run\nRunNodes: %s\nRun:      %s",
							seed, workers, got, want)
					}
				}
			}
		})
	}
}

// TestRunNodesDegenerate covers the shapes where the node loop collapses:
// the empty graph (nil proc allowed), a single isolated node, and one edge.
func TestRunNodesDegenerate(t *testing.T) {
	t.Run("n=0", func(t *testing.T) {
		net := NewNetwork(graph.MustNew(0, nil), 1)
		cost, err := net.RunNodes("empty", nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		if cost.Rounds != 1 || cost.Messages != 0 {
			t.Fatalf("empty run cost %+v, want 1 round, 0 messages", cost)
		}
	})
	t.Run("n=1", func(t *testing.T) {
		net := NewNetwork(graph.MustNew(1, nil), 1)
		ran := false
		proc := NodeProcFunc(func(ctx *Ctx, v int) bool {
			ran = true
			ctx.ForRecv(func(int, Incoming) { t.Error("isolated node received a message") })
			return false
		})
		if _, err := net.RunNodes("single", proc, 4); err != nil {
			t.Fatal(err)
		}
		if !ran {
			t.Fatal("single node never stepped")
		}
	})
	t.Run("n=2", func(t *testing.T) {
		net := NewNetwork(graph.Path(2), 1)
		got := int64(-1)
		proc := NodeProcFunc(func(ctx *Ctx, v int) bool {
			if ctx.Round() == 0 && v == 0 {
				ctx.Send(0, Message{A: 9})
			}
			if v == 1 {
				if in, ok := ctx.RecvOn(0); ok {
					got = in.Msg.A
				}
			}
			return false
		})
		if _, err := net.RunNodes("pair", proc, 6); err != nil {
			t.Fatal(err)
		}
		if got != 9 {
			t.Fatalf("receiver got %d, want 9", got)
		}
	})
}

// TestRunNodesNilProcErrors pins the guard: a nil shared proc over a
// non-empty network is a caller bug reported as an error, not a panic three
// frames deep.
func TestRunNodesNilProcErrors(t *testing.T) {
	net := NewNetwork(graph.Path(2), 1)
	if _, err := net.RunNodes("nil", nil, 4); err == nil {
		t.Fatal("RunNodes(nil) on a non-empty network did not error")
	}
}

// TestRunNodesPoisonRetention mirrors the Recv aliasing contract through
// the shared-proc driver: with the poison detector armed, a Recv view
// retained across rounds reads poison while RecvOn values stay intact —
// RunNodes must preserve the exact same buffer discipline as Run.
func TestRunNodesPoisonRetention(t *testing.T) {
	debugPoisonRecv = true
	defer func() { debugPoisonRecv = false }()

	net := NewNetwork(graph.Path(2), 1)
	var byOn Incoming
	var retainedView []Incoming
	checked := false
	proc := NodeProcFunc(func(ctx *Ctx, v int) bool {
		if v == 0 {
			if ctx.Round() < 2 {
				ctx.Send(0, Message{A: 42 + ctx.Round()})
				return true
			}
			return false
		}
		switch ctx.Round() {
		case 1:
			var ok bool
			if byOn, ok = ctx.RecvOn(0); !ok || byOn.Msg.A != 42 {
				t.Errorf("round 1 RecvOn = %+v ok=%v, want A=42", byOn, ok)
			}
			retainedView = ctx.Recv()
		case 2:
			checked = true
			if byOn.Msg.A != 42 {
				t.Errorf("retained RecvOn value changed: %+v, want A=42", byOn)
			}
			if retainedView[0].Msg.Kind != poisonKind {
				t.Errorf("retained Recv view reads %+v, want poison", retainedView[0])
			}
		}
		return ctx.Round() < 2
	})
	if _, err := net.RunNodes("nodeproc-retain", proc, 10); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("retention check never ran")
	}
}
