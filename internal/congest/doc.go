// Package congest implements the synchronous CONGEST/KT0 message-passing
// model of Peleg [36] that the paper works in (Section 2.1):
//
//   - the network is an undirected graph; communication proceeds in discrete
//     synchronous rounds;
//   - in each round every node may send one O(log n)-bit message along each
//     incident edge; messages sent in round r are delivered at round r+1;
//   - every node has an arbitrary unique O(log n)-bit ID, initially known
//     only to itself (KT0); a node addresses neighbors only by local port.
//
// The engine is deterministic: nodes draw randomness from per-node PRNGs
// seeded from a master seed, and nodes are stepped in index order (node
// state is strictly local, so order cannot affect outcomes). Because step
// order cannot affect outcomes, rounds may also be executed by a worker
// pool (SetWorkers / RunParallel): each worker steps a disjoint contiguous
// shard of nodes, and the edge-slot delivery buffers make the two engines
// write the exact same memory either way. Shard boundaries are skew-aware
// (shard.go): they follow the CSR row offsets so shards hold roughly equal
// incident-edge mass rather than equal node counts — on hub-heavy graphs
// (stars, power laws) equal counts would serialize one worker on the hub.
// Parallel runs are bit-identical to sequential runs — same results, same
// Rounds/Messages, same per-node PRNG streams. See README.md.
//
// Message delivery uses flat edge-slot buffers over the graph's CSR layout
// (README.md "Memory layout"): the model allows at most one message per
// incident edge per round, so delivery is two flipping arrays of 2m
// fixed-size slots — no per-round allocation, no inbox append, and no
// cross-engine merge pass, because each slot has exactly one writer. A
// slot holds only the bare 32-byte Message plus an int32 epoch-relative
// stamp (72 B resident per slot; Network.MemFootprint reports the live
// breakdown): the arrival port is static slot geometry, derived on read,
// and stamps rebase at the int32 boundary without protocols noticing
// (renormStamps). Protocols read deliveries four ways: Ctx.Recv (the full
// read-only view with ports, the aliasing contract in README.md),
// Ctx.RecvMsgs (the port-free bulk view — zero-copy under full
// occupancy), Ctx.ForRecv (in-place iteration, the zero-copy default),
// and Ctx.RecvOn (O(1) port-indexed lookup).
//
// Round execution is activity-proportional (README.md "Sparse-activity
// round execution"): the engine schedules a round from frontier lists —
// nodes that stayed active plus nodes woken by a delivery, recorded at
// Send time — rather than scanning all n nodes and all 2m slots, so a
// round costs O(awake + delivered). Rounds whose activity overflows the
// frontier caps fall back to the dense full-range scan (a phase's first
// round always runs dense), and both paths step the same nodes in the
// same ascending order, so the mode decision is unobservable: outputs,
// costs, PRNG streams, and fault behaviour are bit-identical either way
// (the equivalence harness pins it). SetSparseRounds(false) forces the
// dense path for A/B measurement; ActivityStats exposes the stepped-node
// and sparse-round counters behind the bench sweep's awake% column.
//
// Phase execution is shared-proc (README.md "The shared-proc execution
// model"): the paper's protocols are uniform, so a phase is one NodeProc —
// a single state machine stepped with the node index — over flat per-node
// state arrays, run by Network.RunNodes. Network.Run([]Proc) remains as a
// thin adapter for tests and ad-hoc protocols; both forms are
// bit-identical. Per-phase flat flag arrays (and the adapter's []Proc
// tables) recycle through the network's Scratch arena (scratch.go), so
// repeated phases allocate O(1).
//
// Construction (NewNetwork / NewNetworkWorkers) is O(n + m) and map-free:
// node IDs scatter into a sorted (id, node) index that NodeByID
// binary-searches, the slot-geometry fill is one ascending-sender pass
// (sharded across a worker pool when workers > 1, bit-identically), and
// the engine buffers are allocated but never initialized — the global
// round clock starts above zero, so zero-valued stamps already read as
// "never written" (see ARCHITECTURE.md "The construction pipeline").
//
// A constructed network is reusable across protocol runs: Network.Reset
// returns it to its as-constructed protocol-visible state (per-node PRNG
// streams restart from their seed origin, cost accounting clears, the
// monotone round clock keeps rolling) so a reused run is bit-identical to
// one on a freshly built network — the contract behind the multi-run
// serving mode (internal/bench jobs), enforced by the equivalence
// harness's reuse leg. RunPool exposes the engine's job-generic worker
// pool for callers draining their own work queues. See README.md "Network
// reuse: Reset and the serving contract".
//
// Networks optionally run under a fault scenario (scenario.go, README.md
// "Fault model: scenarios"): Network.SetScenario attaches scheduled node
// crashes and edge drops plus a seeded per-round random fault rate, parsed
// from a small spec grammar ("crash=17@100;drop=3-9@50;seed-faults=0.01").
// Semantics are fail-stop with boundary message loss — crashed nodes stop
// stepping, dead edges destroy in-flight deliveries and silently swallow
// later sends (still counted in Messages), and survivors observe faults
// only through silence and Ctx.PortDown. Faults are applied by the
// coordinator between rounds, so a faulty execution — including any
// protocol error it provokes — is bit-identical across both engines and
// across Reset reuse (Reset rewinds the scenario rather than detaching
// it); the scenario leg of the equivalence harness enforces this.
//
// Cost accounting follows the paper's measures: Rounds is the number of
// synchronous rounds executed until global quiescence (or the budget), and
// Messages counts every send. Quiescence — no node active and no message in
// flight — is detected by the engine; in the paper nodes instead run each
// phase for a precomputed worst-case budget, so engine detection only trims
// trailing idle rounds and never alters protocol behaviour.
package congest
