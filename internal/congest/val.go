package congest

// Val is an O(log n)-bit aggregate value: two machine words, sized to fit in
// a single CONGEST message. Part-Wise Aggregation (Definition 1.1) computes
// a commutative, associative function over such values; two words cover the
// paper's uses (counts, min/max IDs, and lexicographic (weight, edge-id)
// pairs for MST).
type Val struct {
	A, B int64
}

// Combine is a commutative, associative aggregation function over Val, the
// "f" of Definition 1.1.
type Combine func(x, y Val) Val

// Standard aggregation functions.

// MinPair returns the lexicographically smaller of x and y.
func MinPair(x, y Val) Val {
	if x.A < y.A || (x.A == y.A && x.B <= y.B) {
		return x
	}
	return y
}

// MaxPair returns the lexicographically larger of x and y.
func MaxPair(x, y Val) Val {
	if x.A > y.A || (x.A == y.A && x.B >= y.B) {
		return x
	}
	return y
}

// SumPair adds component-wise.
func SumPair(x, y Val) Val { return Val{A: x.A + y.A, B: x.B + y.B} }

// OrPair ors component-wise.
func OrPair(x, y Val) Val { return Val{A: x.A | y.A, B: x.B | y.B} }
