package congest

import (
	"fmt"
	"math/rand"
	"testing"

	"shortcutpa/internal/graph"
)

// Engine benchmarks: steady-state round-loop throughput of the simulator
// across graph families (degree structure stresses different parts of the
// edge-slot delivery path) and worker counts. The network and procs are
// built once, outside the timed loop, so the numbers measure the engine —
// phase setup, stepping, Send/Recv delivery — not NewNetwork or closure
// construction. `make bench` snapshots these into BENCH_<pr>.json.

// benchFamilies are the n≈10k instances BenchmarkEngine runs on.
func benchFamilies() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		// n = 10,000, uniform degree 4: the headline regression instance.
		{"torus", graph.Torus(100, 100)},
		// Max-degree hub: one node owns half of all edge slots.
		{"star", graph.Star(10000)},
		// Irregular sparse degrees, avg ~3.
		{"random", graph.RandomConnected(10000, 3.0/10000.0, rand.New(rand.NewSource(1)))},
	}
}

// BenchmarkEngine runs a message-heavy broadcast-aggregation storm (every
// scheduled node broadcasts its running min-ID each round) for a fixed
// number of rounds per iteration. Outputs are bit-identical across all
// worker counts; workers>1 measures parallel speedup (or, on one core,
// coordination overhead).
func BenchmarkEngine(b *testing.B) {
	const rounds = 20
	for _, fam := range benchFamilies() {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("family=%s/workers=%d", fam.name, workers), func(b *testing.B) {
				net := NewNetwork(fam.g, 42)
				procs := benchProcs(net, fam.g.N(), rounds)
				// Warm up the engine's network-lifetime buffers so the loop
				// measures steady-state rounds, not one-time setup.
				if _, err := net.RunParallel("warmup", procs, rounds+8, workers); err != nil {
					b.Fatal(err)
				}
				net.ResetMetrics()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := net.RunParallel("bench", procs, rounds+8, workers); err != nil {
						b.Fatal(err)
					}
					net.ResetMetrics()
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rounds), "ns/round")
			})
		}
	}
}

// BenchmarkEngineSetup measures PHASE SETUP — the protocol-side cost
// BenchmarkEngine deliberately excludes: building the per-phase []Proc and
// a per-port flag table, then running a short phase. scratch=off is the
// pre-PR-3 idiom (fresh make([]Proc) plus a per-node [][]bool); scratch=on
// is the flat idiom (Scratch.Procs + one CSR-offset PortBools array). The
// allocs/op gap between the two rows is the phase-setup allocation sweep's
// headline number.
func BenchmarkEngineSetup(b *testing.B) {
	for _, fam := range benchFamilies() {
		g := fam.g
		for _, useScratch := range []bool{false, true} {
			name := fmt.Sprintf("family=%s/scratch=%v", fam.name, useScratch)
			b.Run(name, func(b *testing.B) {
				net := NewNetwork(g, 42)
				csr := g.CSR()
				// One warmup phase so the engine's network-lifetime buffers
				// (and the arena, when on) exist before timing starts.
				setupPhase(b, net, csr, useScratch)
				net.ResetMetrics()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					setupPhase(b, net, csr, useScratch)
					net.ResetMetrics()
				}
			})
		}
	}
}

// setupPhase builds one phase's procs and per-port flags and runs it: every
// node broadcasts once, receivers count deliveries on flagged ports.
func setupPhase(b *testing.B, net *Network, csr graph.CSR, useScratch bool) {
	b.Helper()
	n := net.N()
	var procs []Proc
	var flat []bool     // scratch=on: one 2m array, CSR offsets
	var perNode [][]bool // scratch=off: the old per-node shape
	if useScratch {
		procs = net.Scratch().Procs(n)
		flat = net.Scratch().PortBools()
		for i := range flat {
			flat[i] = i%2 == 0
		}
	} else {
		procs = make([]Proc, n)
		perNode = make([][]bool, n)
		for v := 0; v < n; v++ {
			row := make([]bool, csr.RowStart[v+1]-csr.RowStart[v])
			for i := range row {
				row[i] = (int(csr.RowStart[v])+i)%2 == 0
			}
			perNode[v] = row
		}
	}
	got := 0
	for v := 0; v < n; v++ {
		v := v
		procs[v] = ProcFunc(func(ctx *Ctx) bool {
			if ctx.Round() == 0 {
				ctx.Broadcast(Message{A: int64(v)})
				return false
			}
			ctx.ForRecv(func(_ int, in Incoming) {
				var flagged bool
				if useScratch {
					flagged = flat[csr.RowStart[v]+int32(in.Port)]
				} else {
					flagged = perNode[v][in.Port]
				}
				if flagged {
					got++
				}
			})
			return false
		})
	}
	if _, err := net.Run("setup", procs, 8); err != nil {
		b.Fatal(err)
	}
	if got < 0 {
		b.Fatal("impossible")
	}
}
