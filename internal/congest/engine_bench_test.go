package congest

import (
	"fmt"
	"math/rand"
	"testing"

	"shortcutpa/internal/graph"
)

// Engine benchmarks: steady-state round-loop throughput of the simulator
// across graph families (degree structure stresses different parts of the
// edge-slot delivery path) and worker counts. The network and procs are
// built once, outside the timed loop, so the numbers measure the engine —
// phase setup, stepping, Send/Recv delivery — not NewNetwork or closure
// construction. `make bench` snapshots these into BENCH_<pr>.json.

// benchFamilies are the n≈10k instances BenchmarkEngine runs on.
func benchFamilies() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		// n = 10,000, uniform degree 4: the headline regression instance.
		{"torus", graph.Torus(100, 100)},
		// Max-degree hub: one node owns half of all edge slots.
		{"star", graph.Star(10000)},
		// Irregular sparse degrees, avg ~3.
		{"random", graph.RandomConnected(10000, 3.0/10000.0, rand.New(rand.NewSource(1)))},
		// Heavy-tailed degrees (alpha=2.5): many small hubs rather than one
		// giant one — the regime edge-balanced shard boundaries target.
		{"powerlaw", graph.PowerLaw(10000, 4, 2.5, rand.New(rand.NewSource(7)))},
	}
}

// BenchmarkEngine runs a message-heavy broadcast-aggregation storm (every
// scheduled node broadcasts its running min-ID each round) for a fixed
// number of rounds per iteration. Outputs are bit-identical across all
// worker counts; workers>1 measures parallel speedup (or, on one core,
// coordination overhead).
func BenchmarkEngine(b *testing.B) {
	const rounds = 20
	for _, fam := range benchFamilies() {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("family=%s/workers=%d", fam.name, workers), func(b *testing.B) {
				net := NewNetwork(fam.g, 42)
				procs := benchProcs(net, fam.g.N(), rounds)
				// Warm up the engine's network-lifetime buffers so the loop
				// measures steady-state rounds, not one-time setup.
				if _, err := net.RunParallel("warmup", procs, rounds+8, workers); err != nil {
					b.Fatal(err)
				}
				net.ResetMetrics()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := net.RunParallel("bench", procs, rounds+8, workers); err != nil {
						b.Fatal(err)
					}
					net.ResetMetrics()
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rounds), "ns/round")
				// Resident slot-array bytes per edge slot (MemFootprint):
				// 72 is the compaction-free SoA floor — the storm reads via
				// RecvMsgs, whose full-occupancy path aliases the slot buffer,
				// so neither lazy view buffer ever comes into existence.
				b.ReportMetric(net.MemFootprint().BytesPerSlot(), "bytes/slot")
				if workers > 1 {
					// Shard imbalance under the step-wave boundaries this run
					// actually used: max/mean incident-edge mass per worker.
					rs := fam.g.CSR().RowStart
					bal := MeasureShards(rs, EdgeBalancedBounds(rs, workers, 1))
					b.ReportMetric(bal.Ratio(), "shard-max/mean")
				}
			})
		}
	}
}

// BenchmarkEngineSetup measures PHASE SETUP — the protocol-side cost
// BenchmarkEngine deliberately excludes: building one phase's proc state
// and a per-port flag table, then running a short phase. Three idioms:
//
//	scratch=false  pre-PR-3: fresh make([]Proc) closures + per-node [][]bool
//	scratch=true   PR 3: Scratch.Procs closures + one CSR-offset PortBools
//	proc=shared    PR 4: one shared NodeProc over the flat flag array —
//	               no per-node proc objects at all
//
// The allocs/op trajectory across the three rows is the phase-setup
// allocation story: ~2n+11 -> ~n+9 -> O(1). The proc=shared row is pinned
// at 2 allocs/op, both owned by this benchmark's workload, not the engine:
// the NodeProcFunc closure (fresh per phase — building one proc value per
// phase is the idiom being measured) and the shared `got` counter, which
// escapes into it. The engine itself starts a phase allocation-free: the
// runState is recycled (Network.rs), the []Proc form is passed unboxed
// (runPhase), and record appends into retained capacity (ResetMetrics).
// make bench-allocs-check enforces the pins.
func BenchmarkEngineSetup(b *testing.B) {
	for _, fam := range benchFamilies() {
		g := fam.g
		for _, mode := range []string{"scratch=false", "scratch=true", "proc=shared"} {
			name := fmt.Sprintf("family=%s/%s", fam.name, mode)
			b.Run(name, func(b *testing.B) {
				net := NewNetwork(g, 42)
				csr := g.CSR()
				// One warmup phase so the engine's network-lifetime buffers
				// (and the arena, when used) exist before timing starts.
				setupPhase(b, net, csr, mode)
				net.ResetMetrics()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					setupPhase(b, net, csr, mode)
					net.ResetMetrics()
				}
			})
		}
	}
}

// setupPhase builds one phase's proc state and per-port flags in the given
// idiom and runs it: every node broadcasts once, receivers count deliveries
// on flagged ports. The phase is pinned to the sequential engine (explicit
// workers=1): the shared `got` counter is cross-node mutable state, which
// the locality rule forbids on the parallel engine — and this benchmark
// must measure the same engine regardless of the CONGEST_WORKERS default.
func setupPhase(b *testing.B, net *Network, csr graph.CSR, mode string) {
	b.Helper()
	n := net.N()
	got := 0
	if mode == "proc=shared" {
		flat := net.Scratch().PortBools()
		for i := range flat {
			flat[i] = i%2 == 0
		}
		proc := NodeProcFunc(func(ctx *Ctx, v int) bool {
			if ctx.Round() == 0 {
				ctx.Broadcast(Message{A: int64(v)})
				return false
			}
			ctx.ForRecv(func(_ int, in Incoming) {
				if flat[csr.RowStart[v]+int32(in.Port)] {
					got++
				}
			})
			return false
		})
		if _, err := net.RunNodesParallel("setup", proc, 8, 1); err != nil {
			b.Fatal(err)
		}
		if got < 0 {
			b.Fatal("impossible")
		}
		return
	}
	useScratch := mode == "scratch=true"
	var procs []Proc
	var flat []bool      // scratch=true: one 2m array, CSR offsets
	var perNode [][]bool // scratch=false: the old per-node shape
	if useScratch {
		procs = net.Scratch().Procs(n)
		flat = net.Scratch().PortBools()
		for i := range flat {
			flat[i] = i%2 == 0
		}
	} else {
		procs = make([]Proc, n)
		perNode = make([][]bool, n)
		for v := 0; v < n; v++ {
			row := make([]bool, csr.RowStart[v+1]-csr.RowStart[v])
			for i := range row {
				row[i] = (int(csr.RowStart[v])+i)%2 == 0
			}
			perNode[v] = row
		}
	}
	for v := 0; v < n; v++ {
		v := v
		procs[v] = ProcFunc(func(ctx *Ctx) bool {
			if ctx.Round() == 0 {
				ctx.Broadcast(Message{A: int64(v)})
				return false
			}
			ctx.ForRecv(func(_ int, in Incoming) {
				var flagged bool
				if useScratch {
					flagged = flat[csr.RowStart[v]+int32(in.Port)]
				} else {
					flagged = perNode[v][in.Port]
				}
				if flagged {
					got++
				}
			})
			return false
		})
	}
	if _, err := net.RunParallel("setup", procs, 8, 1); err != nil {
		b.Fatal(err)
	}
	if got < 0 {
		b.Fatal("impossible")
	}
}
