package congest

import (
	"fmt"
	"math/rand"
	"testing"

	"shortcutpa/internal/graph"
)

// Engine benchmarks: steady-state round-loop throughput of the simulator
// across graph families (degree structure stresses different parts of the
// edge-slot delivery path) and worker counts. The network and procs are
// built once, outside the timed loop, so the numbers measure the engine —
// phase setup, stepping, Send/Recv delivery — not NewNetwork or closure
// construction. `make bench` snapshots these into BENCH_<pr>.json.

// benchFamilies are the n≈10k instances BenchmarkEngine runs on.
func benchFamilies() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		// n = 10,000, uniform degree 4: the headline regression instance.
		{"torus", graph.Torus(100, 100)},
		// Max-degree hub: one node owns half of all edge slots.
		{"star", graph.Star(10000)},
		// Irregular sparse degrees, avg ~3.
		{"random", graph.RandomConnected(10000, 3.0/10000.0, rand.New(rand.NewSource(1)))},
	}
}

// BenchmarkEngine runs a message-heavy broadcast-aggregation storm (every
// scheduled node broadcasts its running min-ID each round) for a fixed
// number of rounds per iteration. Outputs are bit-identical across all
// worker counts; workers>1 measures parallel speedup (or, on one core,
// coordination overhead).
func BenchmarkEngine(b *testing.B) {
	const rounds = 20
	for _, fam := range benchFamilies() {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("family=%s/workers=%d", fam.name, workers), func(b *testing.B) {
				net := NewNetwork(fam.g, 42)
				procs := benchProcs(net, fam.g.N(), rounds)
				// Warm up the engine's network-lifetime buffers so the loop
				// measures steady-state rounds, not one-time setup.
				if _, err := net.RunParallel("warmup", procs, rounds+8, workers); err != nil {
					b.Fatal(err)
				}
				net.ResetMetrics()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := net.RunParallel("bench", procs, rounds+8, workers); err != nil {
						b.Fatal(err)
					}
					net.ResetMetrics()
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rounds), "ns/round")
			})
		}
	}
}
