package congest

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/graph"
)

// Construction-path tests: the sharded slot-geometry fill must be
// slot-for-slot identical to the sequential reference, and the sorted
// NodeByID index must agree with a straightforward map of the network's
// IDs (including misses).

// geometryGraphs are the topologies the fill tests run on. The torus
// crosses the minParallelFillNodes gate so the parallel fill really runs;
// the star is the degree-skew worst case (one receiver owns half of all
// slots, so one shard's counters see almost all of one column); the random
// graph has irregular rows.
func geometryGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	return map[string]*graph.Graph{
		"torus-150x150": graph.Torus(150, 150),
		"star-20k":      graph.Star(20000),
		"random-17k":    graph.RandomConnected(17000, 3.0/17000.0, rand.New(rand.NewSource(7))),
	}
}

func TestParallelGeometryFillMatchesSequential(t *testing.T) {
	for name, g := range geometryGraphs(t) {
		t.Run(name, func(t *testing.T) {
			if g.N() < minParallelFillNodes {
				t.Fatalf("fixture below the parallel-fill gate: n=%d", g.N())
			}
			seq := NewNetworkWorkers(g, 42, 1)
			for _, workers := range []int{2, 3, 8} {
				par := NewNetworkWorkers(g, 42, workers)
				for s := range seq.destSlot {
					if seq.destSlot[s] != par.destSlot[s] {
						t.Fatalf("workers=%d: destSlot[%d] = %d, want %d", workers, s, par.destSlot[s], seq.destSlot[s])
					}
					if seq.portSlot[s] != par.portSlot[s] {
						t.Fatalf("workers=%d: portSlot[%d] = %d, want %d", workers, s, par.portSlot[s], seq.portSlot[s])
					}
				}
			}
		})
	}
}

// TestParallelGeometryFillBelowGate pins the gate itself: a small network
// built with many workers must still use the (sequential) fill and still be
// correct — the gate is a perf heuristic, not a semantic switch.
func TestParallelGeometryFillBelowGate(t *testing.T) {
	g := graph.Torus(10, 10)
	seq := NewNetworkWorkers(g, 42, 1)
	par := NewNetworkWorkers(g, 42, 8)
	for s := range seq.destSlot {
		if seq.destSlot[s] != par.destSlot[s] {
			t.Fatalf("destSlot[%d] differs below the gate", s)
		}
	}
}

// TestNodeByIDSortedIndexAgreesWithMap rebuilds the pre-PR-5 map from the
// public ID accessor on several (topology, seed) pairs and checks the
// sorted-index lookup agrees on every hit, plus misses around each ID and
// at the extremes.
func TestNodeByIDSortedIndexAgreesWithMap(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path-97":  graph.Path(97),
		"star-300": graph.Star(300),
		"random":   graph.RandomConnected(257, 0.02, rand.New(rand.NewSource(3))),
	}
	for name, g := range graphs {
		for _, seed := range []int64{1, 42, 31337} {
			net := NewNetwork(g, seed)
			byID := make(map[int64]int, g.N())
			for v := 0; v < g.N(); v++ {
				byID[net.ID(v)] = v
			}
			if len(byID) != g.N() {
				t.Fatalf("%s/seed=%d: IDs not unique: %d for %d nodes", name, seed, len(byID), g.N())
			}
			for v := 0; v < g.N(); v++ {
				id := net.ID(v)
				if got := net.NodeByID(id); got != v {
					t.Fatalf("%s/seed=%d: NodeByID(ID(%d)) = %d", name, seed, v, got)
				}
				// Neighborhood misses: the affine ID map leaves gaps on both
				// sides of every ID, so id±1 must miss.
				for _, miss := range []int64{id - 1, id + 1} {
					if _, hit := byID[miss]; hit {
						continue
					}
					if got := net.NodeByID(miss); got != -1 {
						t.Fatalf("%s/seed=%d: NodeByID(%d) = %d, want -1", name, seed, miss, got)
					}
				}
			}
			for _, miss := range []int64{-1 << 62, -1, 0, 1 << 62} {
				if _, hit := byID[miss]; hit {
					continue
				}
				if got := net.NodeByID(miss); got != -1 {
					t.Fatalf("%s/seed=%d: NodeByID(%d) = %d, want -1", name, seed, miss, got)
				}
			}
		}
	}
}

// TestNodeByIDRandomProbes fires uniform random probes at a network: any
// probe that happens to be a real ID must resolve, everything else must
// miss. Exercises the binary search away from exact-hit patterns.
func TestNodeByIDRandomProbes(t *testing.T) {
	g := graph.Grid(20, 20)
	net := NewNetwork(g, 99)
	byID := make(map[int64]int, g.N())
	for v := 0; v < g.N(); v++ {
		byID[net.ID(v)] = v
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		probe := rng.Int63n(int64(g.N())*2654435761 + 123456)
		want, hit := byID[probe]
		got := net.NodeByID(probe)
		if hit && got != want {
			t.Fatalf("NodeByID(%d) = %d, want %d", probe, got, want)
		}
		if !hit && got != -1 {
			t.Fatalf("NodeByID(%d) = %d, want -1", probe, got)
		}
	}
}

// TestNodeByIDEmptyNetwork: the n=0 degenerate must miss cleanly.
func TestNodeByIDEmptyNetwork(t *testing.T) {
	g, err := graph.New(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := NewNetwork(g, 1).NodeByID(12345); got != -1 {
		t.Fatalf("NodeByID on empty network = %d, want -1", got)
	}
}
