package congest

import (
	"fmt"
	"math/rand"
)

// Ctx is a node's window onto the network for one round of one phase. It
// exposes exactly the KT0 CONGEST-local information: the node's own ID,
// port count, per-node randomness, the messages delivered this round, and
// the ability to send one message per port.
type Ctx struct {
	st *runState
	v  int
}

// Node returns the node's index. Protocol code must treat this as an opaque
// handle for indexing per-node state, never as knowledge about the network
// (the model-visible identifier is ID).
func (c *Ctx) Node() int { return c.v }

// ID returns the node's unique O(log n)-bit identifier.
func (c *Ctx) ID() int64 { return c.st.net.ids[c.v] }

// Round returns the current round number within the phase (0-based).
func (c *Ctx) Round() int64 { return c.st.round }

// Degree returns the node's port count.
func (c *Ctx) Degree() int { return len(c.st.net.links[c.v]) }

// Rand returns the node's private PRNG.
func (c *Ctx) Rand() *rand.Rand { return c.st.net.rngs[c.v] }

// Recv returns the messages delivered to this node at the start of the
// round. The slice is owned by the engine and valid only within Step.
func (c *Ctx) Recv() []Incoming { return c.st.inbox[c.v] }

// Send transmits one message over port p, to be delivered next round.
// Sending twice on the same port in one round violates the CONGEST model
// and panics: that is a protocol bug, not a runtime condition.
func (c *Ctx) Send(p int, m Message) {
	lk := c.st.net.links[c.v][p]
	slot := c.st.portOff[c.v] + p
	if c.st.lastSend[slot] == c.st.round {
		panic(fmt.Sprintf("congest: node %d sent twice on port %d in round %d", c.v, p, c.st.round))
	}
	c.st.lastSend[slot] = c.st.round
	if c.st.outbox != nil {
		// Parallel engine: buffer in the sender's private outbox; the
		// end-of-round merge delivers in sender-index order.
		c.st.outbox[c.v] = append(c.st.outbox[c.v], routed{to: lk.to, inc: Incoming{Port: lk.revPort, Msg: m}})
		return
	}
	c.st.nextbox[lk.to] = append(c.st.nextbox[lk.to], Incoming{Port: lk.revPort, Msg: m})
	c.st.sentThisRound++
}

// CanSend reports whether port p is still free this round.
func (c *Ctx) CanSend(p int) bool {
	return c.st.lastSend[c.st.portOff[c.v]+p] != c.st.round
}

// Broadcast sends m on every port (one message per edge, as the model
// allows).
func (c *Ctx) Broadcast(m Message) {
	for p := 0; p < c.Degree(); p++ {
		c.Send(p, m)
	}
}
