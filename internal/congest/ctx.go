package congest

import (
	"fmt"
	"math/rand"
)

// Ctx is a node's window onto the network for one round of one phase. It
// exposes exactly the KT0 CONGEST-local information: the node's own ID,
// port count, per-node randomness, the messages delivered this round, and
// the ability to send one message per port.
type Ctx struct {
	st   *runState
	v    int
	sent *int64 // messages sent through this Ctx (engine-owned counter)
	// Sender-side dirty tracking, parallel engine only (nil selects the
	// sequential inline-wake path in Send/Broadcast): the worker's segment
	// of the shared dirty buffer and its entry counter. Every slot write
	// appends its receiver here; the coordinator merges the segments into
	// next round's woken frontier (stepParallel), so wake derivation costs
	// O(delivered), not an O(slots) scan. The segment's length is its
	// frontierCap: appends past it are dropped while nd keeps counting, and
	// the coordinator reads nd > len(dirty) as overflow (fall back to the
	// scan wave).
	dirty []int32
	nd    *int32
}

// Node returns the node's index. Protocol code must treat this as an opaque
// handle for indexing per-node state, never as knowledge about the network
// (the model-visible identifier is ID).
func (c *Ctx) Node() int { return c.v }

// ID returns the node's unique O(log n)-bit identifier.
func (c *Ctx) ID() int64 { return c.st.net.ids[c.v] }

// Round returns the current round number within the phase (0-based).
func (c *Ctx) Round() int64 { return c.st.round - c.st.base }

// Degree returns the node's port count.
func (c *Ctx) Degree() int {
	rs := c.st.net.csr.RowStart
	return int(rs[c.v+1] - rs[c.v])
}

// Rand returns the node's private PRNG (created on first use; the stream
// depends only on the master seed and the node index).
func (c *Ctx) Rand() *rand.Rand { return c.st.net.rng(c.v) }

// Recv returns the messages delivered to this node at the start of the
// round, in ascending sender-index order (each neighbor sends at most one
// message per round, so that order is well defined — and it is the order
// the delivery slots are laid out in, so no reordering happens here).
//
// The slice aliases engine-owned view storage and is strictly read-only.
// It is reused and overwritten from the next round's buffer flip onward,
// so it is valid only until this Step returns. A protocol that needs to
// reorder messages or keep one beyond the current round must copy the
// Incoming values into its own state.
// Retention bugs are latent — the stale data often looks plausible — so
// tests can set debugPoisonRecv to make every expired view read as poison
// (see TestRecvRetainedAcrossRoundsIsPoisoned).
//
// The view is built at most once per round, by compacting the occupied
// slots into a per-node range of the network's view buffer: slots store
// bare 32-byte Messages, so the Incoming{Port, Msg} values a view reports
// are synthesized here, with each slot's arrival port read from the static
// slot geometry (slotPort). The view buffer itself is allocated on the
// first Recv call that needs it — protocols on the zero-copy primitives
// (ForRecv, RecvOn) never pay its 40 B/slot at all. After that: no
// allocation, ever.
func (c *Ctx) Recv() []Incoming {
	st := c.st
	b := st.engineBuffers
	v := c.v
	lo := st.net.csr.RowStart[v]
	if b.recvRound[v] != st.snow {
		b.recvRound[v] = st.snow
		n := int32(0)
		if b.wakeCur[v] == st.snow-1 {
			hi := st.net.csr.RowStart[v+1]
			sentAt := st.snow - 1
			stamps := b.curStamp[lo:hi]
			msgs := b.curMsg[lo:hi]
			ports := st.net.slotPort[lo:hi]
			recv := b.recvView()[lo:hi]
			for s := range stamps {
				if stamps[s] == sentAt {
					recv[n] = Incoming{Port: int(ports[s]), Msg: msgs[s]}
					n++
				}
			}
		}
		b.recvLen[v] = n
	}
	if n := b.recvLen[v]; n > 0 {
		return b.recvBuf[lo : lo+n]
	}
	// An empty view never touches recvBuf, which may still be nil.
	return nil
}

// RecvMsgs returns the bare messages delivered this round, in the same
// ascending sender-index order Recv reports, without arrival ports. It is
// the bulk-read primitive for aggregation protocols (min/max/sum floods,
// broadcast storms) that fold every delivery symmetrically and never ask
// which port a message came from — the hottest read pattern in the paper's
// algorithms.
//
// Dropping the ports is what makes it cheap: when every slot in the node's
// range is occupied (broadcast traffic) the returned slice IS the slot
// range — zero copies, no view synthesis — which Recv can never do, since
// its Incoming views interleave a port the slots deliberately don't store.
// Sparse rounds compact the occupied slots' messages (32 B each, no port
// lookup) into a per-network scratch buffer allocated on the first sparse
// call and never before. The view is rebuilt on every call, so call it
// once per round and range over the result.
//
// The slice aliases engine-owned storage either way: read-only, valid only
// until this Step returns, same retention contract (and debugPoisonRecv
// teeth) as Recv.
func (c *Ctx) RecvMsgs() []Message {
	st := c.st
	b := st.engineBuffers
	v := c.v
	if b.wakeCur[v] != st.snow-1 {
		return nil
	}
	rs := st.net.csr.RowStart
	lo, hi := rs[v], rs[v+1]
	sentAt := st.snow - 1
	stamps := b.curStamp[lo:hi]
	occupied := 0
	for _, s := range stamps {
		if s == sentAt {
			occupied++
		}
	}
	msgs := b.curMsg[lo:hi]
	if occupied == len(stamps) {
		// Full range: the slots themselves, in slot order, are the answer.
		// Retention is still caught under debugPoisonRecv — the buffer this
		// aliases is retired at the flip and poisoned wholesale there.
		return msgs
	}
	if occupied == 0 {
		// Awake but nothing delivered (a scenario destroyed the in-flight
		// message): never allocate the scratch for an empty view.
		return nil
	}
	dst := b.msgView()[lo:hi]
	n := 0
	for s := range stamps {
		if stamps[s] == sentAt {
			dst[n] = msgs[s]
			n++
		}
	}
	return dst[:n]
}

// RecvOn returns the message delivered on port p this round, if any. It is
// the port-indexed counterpart of Recv: one table lookup and one stamp
// compare, no view construction, no copy of anything but the returned
// value. Protocols that await a reply on a known port (parent edges,
// chosen-edge exchanges) should prefer it over scanning the full Recv view.
//
// The Incoming is returned by value, so — unlike a Recv slice — it is the
// caller's to keep; there is no aliasing hazard. Asking for a port the node
// does not have panics, as Send does: that is a protocol bug.
func (c *Ctx) RecvOn(p int) (Incoming, bool) {
	st := c.st
	rs := st.net.csr.RowStart
	lo, hi := rs[c.v], rs[c.v+1]
	h := lo + int32(p)
	if p < 0 || h >= hi {
		panic(fmt.Sprintf("congest: node %d has no port %d (degree %d)", c.v, p, hi-lo))
	}
	slot := st.net.portSlot[h]
	b := st.engineBuffers
	if b.curStamp[slot] != st.snow-1 {
		return Incoming{}, false
	}
	// The arrival port of the slot behind port p is p itself — no lookup.
	return Incoming{Port: p, Msg: b.curMsg[slot]}, true
}

// ForRecv invokes f for every message delivered this round, in the same
// ascending sender-index order Recv reports, reading the edge-slot buffer
// in place. rank is the sender's rank among the node's neighbors (the slot
// offset), so rank == Port only when neighbor order and port order agree.
//
// ForRecv never builds the compacted Recv view: where Recv copies the
// occupied slots of a partially full range into per-node scratch, ForRecv
// just skips the empty ones — so it is the cheaper primitive for sparse
// traffic, and the Incoming values it yields are stack copies the callback
// may retain freely. Calling Send from f is allowed (delivery buffers and
// send buffers are distinct arrays).
func (c *Ctx) ForRecv(f func(rank int, in Incoming)) {
	st := c.st
	b := st.engineBuffers
	v := c.v
	if b.wakeCur[v] != st.snow-1 {
		return
	}
	rs := st.net.csr.RowStart
	lo, hi := rs[v], rs[v+1]
	sentAt := st.snow - 1
	stamps := b.curStamp[lo:hi]
	msgs := b.curMsg[lo:hi]
	ports := st.net.slotPort[lo:hi]
	for k := range stamps {
		if stamps[k] == sentAt {
			f(k, Incoming{Port: int(ports[k]), Msg: msgs[k]})
		}
	}
}

// Send transmits one message over port p, to be delivered next round. The
// message is written straight into its receiver-side edge slot; slots are
// disjoint across all (sender, port) pairs, so no buffering or merge pass
// exists on any engine. Sending twice on the same port in one round
// violates the CONGEST model and panics: that is a protocol bug, not a
// runtime condition.
//
// Under a fault scenario, a Send on a dead port (see PortDown) is counted
// in Metrics.Messages and then dropped: the sender pays the model's message
// cost, the receiver never sees anything, and no slot is written — so the
// double-send panic does not apply to dead ports.
func (c *Ctx) Send(p int, m Message) {
	st := c.st
	csr := &st.net.csr
	lo, hi := csr.RowStart[c.v], csr.RowStart[c.v+1]
	h := lo + int32(p)
	if p < 0 || h >= hi {
		panic(fmt.Sprintf("congest: node %d has no port %d (degree %d)", c.v, p, hi-lo))
	}
	if f := st.fault; f != nil && f.portDead[h] {
		*c.sent++
		return
	}
	slot := st.net.destSlot[h]
	b := st.engineBuffers
	if b.nextStamp[slot] == st.snow {
		panic(fmt.Sprintf("congest: node %d sent twice on port %d in round %d", c.v, p, st.round-st.base))
	}
	b.nextStamp[slot] = st.snow
	// The slot stores only the 32-byte message: the arrival port is a
	// static property of the slot (Network.slotPort), derived by the read
	// side, so a delivered message moves 36 bytes (message + int32 stamp)
	// instead of the packed-Incoming layout's 48. No Port prefill either —
	// which at n = 10^6 was a 320 MB first-touch pass before any round ran.
	b.nextMsg[slot] = m
	if c.dirty == nil {
		// Sequential engine: single writer, so the wake stamp is written
		// inline — and it doubles as the woken-frontier dedup (first
		// delivery to a node this round appends it, later ones see the
		// stamp already set). The parallel engine cannot write wakeNext
		// here (concurrent senders may share a receiver); it records the
		// receiver in the worker's dirty segment instead and the
		// coordinator derives the stamps after the step wave.
		to := csr.PortTo[h]
		if b.wakeNext[to] != st.snow {
			b.wakeNext[to] = st.snow
			if k := st.nWokeNext; int(k) < st.seqCap {
				st.fwokeNext[k] = to
			}
			st.nWokeNext++
		}
	} else {
		if k := *c.nd; int(k) < len(c.dirty) {
			c.dirty[k] = csr.PortTo[h]
		}
		*c.nd++
	}
	*c.sent++
}

// CanSend reports whether port p is still free this round.
func (c *Ctx) CanSend(p int) bool {
	csr := &c.st.net.csr
	lo, hi := csr.RowStart[c.v], csr.RowStart[c.v+1]
	h := lo + int32(p)
	if p < 0 || h >= hi {
		panic(fmt.Sprintf("congest: node %d has no port %d (degree %d)", c.v, p, hi-lo))
	}
	return c.st.nextStamp[c.st.net.destSlot[h]] != c.st.snow
}

// PortDown reports whether port p's edge is dead under the network's fault
// scenario: the edge was dropped, or the neighbor behind it crashed. On a
// fault-free network every port is up. Asking for a port the node does not
// have panics, as Send does.
//
// PortDown is the only protocol-visible fault signal besides silence: a
// crashed node is never stepped, so from inside a Step the world consists
// of live ports that deliver and dead ports that don't.
func (c *Ctx) PortDown(p int) bool {
	st := c.st
	rs := st.net.csr.RowStart
	lo, hi := rs[c.v], rs[c.v+1]
	h := lo + int32(p)
	if p < 0 || h >= hi {
		panic(fmt.Sprintf("congest: node %d has no port %d (degree %d)", c.v, p, hi-lo))
	}
	f := st.fault
	return f != nil && f.portDead[h]
}

// Broadcast sends m on every port (one message per edge, as the model
// allows). Equivalent to calling Send on each port in ascending order, but
// fused into one pass over the node's CSR window — the hottest send pattern
// in the paper's protocols (floods, aggregation storms). Dead ports are
// counted-then-dropped exactly as Send drops them.
func (c *Ctx) Broadcast(m Message) {
	st := c.st
	csr := &st.net.csr
	lo, hi := csr.RowStart[c.v], csr.RowStart[c.v+1]
	dest := st.net.destSlot[lo:hi]
	b := st.engineBuffers
	snow := st.snow
	sequential := c.dirty == nil
	fault := st.fault
	for i, slot := range dest {
		if fault != nil && fault.portDead[lo+int32(i)] {
			continue // counted below, dropped here — same as Send on a dead port
		}
		if b.nextStamp[slot] == snow {
			panic(fmt.Sprintf("congest: node %d sent twice on port %d in round %d", c.v, i, st.round-st.base))
		}
		b.nextStamp[slot] = snow
		b.nextMsg[slot] = m
		if sequential {
			// Inline wake + woken-frontier append, as in Send.
			to := csr.PortTo[lo+int32(i)]
			if b.wakeNext[to] != snow {
				b.wakeNext[to] = snow
				if k := st.nWokeNext; int(k) < st.seqCap {
					st.fwokeNext[k] = to
				}
				st.nWokeNext++
			}
		} else {
			if k := *c.nd; int(k) < len(c.dirty) {
				c.dirty[k] = csr.PortTo[lo+int32(i)]
			}
			*c.nd++
		}
	}
	*c.sent += int64(hi - lo)
}
