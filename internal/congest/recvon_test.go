package congest

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/graph"
)

// recvon_test.go covers the port-indexed zero-copy receive API (RecvOn,
// ForRecv): agreement with Recv's view, the by-value (no-aliasing)
// retention guarantee mirrored from recv_alias_test.go, and the degenerate
// topologies the slot lookup must survive.

// TestForRecvMatchesRecv drives sparse pseudo-random traffic and asserts,
// every round at every node, that ForRecv yields exactly the Recv view (same
// messages, same ascending sender-index order, ranks consistent with the
// slot geometry) and that RecvOn agrees port by port.
func TestForRecvMatchesRecv(t *testing.T) {
	g := graph.RandomConnected(60, 0.08, rand.New(rand.NewSource(7)))
	net := NewNetwork(g, 3)
	n := g.N()
	const rounds = 12
	procs := make([]Proc, n)
	for v := 0; v < n; v++ {
		v := v
		rng := rand.New(rand.NewSource(int64(v) * 31))
		procs[v] = ProcFunc(func(ctx *Ctx) bool {
			view := ctx.Recv()
			var fromFor []Incoming
			lastRank := -1
			ctx.ForRecv(func(rank int, in Incoming) {
				if rank <= lastRank {
					t.Errorf("node %d: ForRecv ranks not strictly increasing (%d after %d)", v, rank, lastRank)
				}
				lastRank = rank
				fromFor = append(fromFor, in)
			})
			if len(fromFor) != len(view) {
				t.Fatalf("node %d round %d: ForRecv saw %d messages, Recv %d", v, ctx.Round(), len(fromFor), len(view))
			}
			for i := range view {
				if view[i] != fromFor[i] {
					t.Fatalf("node %d round %d: message %d differs: Recv %+v, ForRecv %+v", v, ctx.Round(), i, view[i], fromFor[i])
				}
			}
			// RecvMsgs must be exactly the view's message column: same
			// count, same ascending sender-index order, ports dropped.
			msgs := ctx.RecvMsgs()
			if len(msgs) != len(view) {
				t.Fatalf("node %d round %d: RecvMsgs saw %d messages, Recv %d", v, ctx.Round(), len(msgs), len(view))
			}
			for i := range view {
				if msgs[i] != view[i].Msg {
					t.Fatalf("node %d round %d: message %d differs: Recv %+v, RecvMsgs %+v", v, ctx.Round(), i, view[i].Msg, msgs[i])
				}
			}
			// RecvOn must report exactly the view's ports, nothing else.
			seen := make(map[int]Incoming, len(view))
			for _, in := range view {
				seen[in.Port] = in
			}
			for p := 0; p < ctx.Degree(); p++ {
				in, ok := ctx.RecvOn(p)
				want, wantOk := seen[p]
				if ok != wantOk {
					t.Fatalf("node %d round %d port %d: RecvOn ok=%v, Recv view says %v", v, ctx.Round(), p, ok, wantOk)
				}
				if ok && in != want {
					t.Fatalf("node %d round %d port %d: RecvOn %+v, want %+v", v, ctx.Round(), p, in, want)
				}
			}
			// Sparse sends: roughly half the ports each round.
			if ctx.Round() < rounds {
				for p := 0; p < ctx.Degree(); p++ {
					if rng.Intn(2) == 0 {
						ctx.Send(p, Message{Kind: 1, A: int64(v)*1000 + ctx.Round()})
					}
				}
				return true
			}
			return false
		})
	}
	if _, err := net.Run("recvon-match", procs, rounds+4); err != nil {
		t.Fatal(err)
	}
}

// TestRecvOnValueSurvivesRounds mirrors TestRecvRetainedAcrossRoundsIsPoisoned
// from the other side of the contract: RecvOn and ForRecv hand out Incoming
// VALUES, not views, so — with the poison detector armed — retaining them
// across rounds is legal and they keep reading what was delivered, while a
// retained Recv slice over the same traffic reads poison.
func TestRecvOnValueSurvivesRounds(t *testing.T) {
	debugPoisonRecv = true
	defer func() { debugPoisonRecv = false }()

	g := graph.Path(2)
	net := NewNetwork(g, 1)
	var byOn, byFor Incoming
	var retainedView []Incoming
	checked := false
	procs := []Proc{
		ProcFunc(func(ctx *Ctx) bool {
			if ctx.Round() < 2 {
				ctx.Send(0, Message{A: 42 + ctx.Round()})
				return true
			}
			return false
		}),
		ProcFunc(func(ctx *Ctx) bool {
			switch ctx.Round() {
			case 1:
				var ok bool
				if byOn, ok = ctx.RecvOn(0); !ok || byOn.Msg.A != 42 {
					t.Errorf("round 1 RecvOn = %+v ok=%v, want A=42", byOn, ok)
				}
				ctx.ForRecv(func(_ int, in Incoming) { byFor = in })
				retainedView = ctx.Recv()
			case 2:
				checked = true
				if byOn.Msg.A != 42 || byFor.Msg.A != 42 {
					t.Errorf("retained RecvOn/ForRecv values changed: %+v / %+v, want A=42", byOn, byFor)
				}
				if retainedView[0].Msg.Kind != poisonKind {
					t.Errorf("retained Recv view reads %+v, want poison — the control side of this test broke", retainedView[0])
				}
				if in, ok := ctx.RecvOn(0); !ok || in.Msg.A != 43 {
					t.Errorf("round 2 RecvOn = %+v ok=%v, want A=43", in, ok)
				}
			}
			return ctx.Round() < 2
		}),
	}
	if _, err := net.Run("recvon-retain", procs, 10); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("retention check never ran")
	}
}

// TestRecvOnDegenerateTopologies exercises the slot lookup on the shapes
// where CSR ranges collapse: the empty graph, a single node, a single edge,
// and a disconnected graph with isolated nodes.
func TestRecvOnDegenerateTopologies(t *testing.T) {
	t.Run("n=0", func(t *testing.T) {
		g, err := graph.New(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		net := NewNetwork(g, 1)
		if _, err := net.Run("empty", nil, 4); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("n=1", func(t *testing.T) {
		g, err := graph.New(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		net := NewNetwork(g, 1)
		ran := false
		procs := []Proc{ProcFunc(func(ctx *Ctx) bool {
			ran = true
			ctx.ForRecv(func(int, Incoming) { t.Error("isolated node received a message") })
			return false
		})}
		if _, err := net.Run("single", procs, 4); err != nil {
			t.Fatal(err)
		}
		if !ran {
			t.Fatal("single node never stepped")
		}
	})
	t.Run("n=2", func(t *testing.T) {
		g := graph.Path(2)
		net := NewNetwork(g, 1)
		got := int64(-1)
		procs := []Proc{
			ProcFunc(func(ctx *Ctx) bool {
				if ctx.Round() == 0 {
					ctx.Send(0, Message{A: 9})
				}
				return false
			}),
			ProcFunc(func(ctx *Ctx) bool {
				if in, ok := ctx.RecvOn(0); ok {
					got = in.Msg.A
				}
				return false
			}),
		}
		if _, err := net.Run("pair", procs, 6); err != nil {
			t.Fatal(err)
		}
		if got != 9 {
			t.Fatalf("receiver got %d, want 9", got)
		}
	})
	t.Run("isolated-nodes", func(t *testing.T) {
		// Nodes 0-1 share the only edge; 2 and 3 are isolated.
		g, err := graph.New(4, []graph.Edge{{U: 0, V: 1, W: 1}})
		if err != nil {
			t.Fatal(err)
		}
		net := NewNetwork(g, 5)
		procs := make([]Proc, 4)
		for v := 0; v < 4; v++ {
			v := v
			procs[v] = ProcFunc(func(ctx *Ctx) bool {
				if ctx.Round() == 0 && ctx.Degree() > 0 {
					ctx.Broadcast(Message{A: int64(v)})
				}
				ctx.ForRecv(func(_ int, in Incoming) {
					if v > 1 {
						t.Errorf("isolated node %d received %+v", v, in)
					}
				})
				return false
			})
		}
		if _, err := net.Run("isolated", procs, 6); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRecvOnBadPortPanics pins the contract that a port out of range is a
// protocol bug, matching Send.
func TestRecvOnBadPortPanics(t *testing.T) {
	g := graph.Path(2)
	net := NewNetwork(g, 1)
	procs := []Proc{
		ProcFunc(func(ctx *Ctx) bool {
			defer func() {
				if recover() == nil {
					t.Error("RecvOn(1) on a degree-1 node did not panic")
				}
			}()
			ctx.RecvOn(1)
			return false
		}),
		ProcFunc(func(ctx *Ctx) bool { return false }),
	}
	if _, err := net.Run("badport", procs, 4); err != nil {
		t.Fatal(err)
	}
}

// TestScratchReuse pins the arena contract: buffers come back cleared, and
// the same backing array is recycled across calls once grown.
func TestScratchReuse(t *testing.T) {
	g := graph.Path(3)
	net := NewNetwork(g, 1)
	s := net.Scratch()
	p1 := s.Procs(3)
	p1[0] = ProcFunc(func(ctx *Ctx) bool { return false })
	p2 := s.Procs(3)
	if &p1[0] != &p2[0] {
		t.Error("Procs did not recycle its buffer")
	}
	if p2[0] != nil {
		t.Error("Procs returned a dirty buffer")
	}
	pb := s.PortBools()
	if len(pb) != 4 { // 2m = 4 half-edges on a 3-path
		t.Fatalf("PortBools length %d, want 4", len(pb))
	}
	pb[2] = true
	if pb2 := s.PortBools(); pb2[2] {
		t.Error("PortBools returned a dirty buffer")
	}
	b := s.Bools(5)
	b[4] = true
	if b2 := s.Bools(2); len(b2) != 2 || b2[0] || b2[1] {
		t.Error("Bools shrink/clear broken")
	}
	i64 := s.Int64s(4)
	i64[1] = 8
	if x := s.Int64s(4); x[1] != 0 {
		t.Error("Int64s returned a dirty buffer")
	}
}
