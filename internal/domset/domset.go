package domset

import (
	"fmt"
	"math"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
)

const kindClaim int32 = 150

// Result is a k-dominating set as node-local knowledge: each node knows
// whether it is a center and the ID of the center dominating it.
type Result struct {
	IsCenter []bool
	CenterID []int64
	Size     int
}

// KDominatingSet computes a k-dominating set by sampling: each node
// self-elects with probability min(1, 2·ln(n)/k); an O(k)-round wave has
// every node adopt the first center heard; unreached nodes (a 1/poly(n)
// event) become centers themselves.
func KDominatingSet(e *core.Engine, k int64) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("domset: k must be positive, got %d", k)
	}
	n := e.N
	res := &Result{
		IsCenter: make([]bool, n),
		CenterID: make([]int64, n),
	}
	for v := range res.CenterID {
		res.CenterID[v] = -1
	}
	prob := math.Min(1, 2*math.Log(float64(n)+2)/float64(k))
	wp := &waveProc{res: res, k: k, prob: prob, claimed: e.Net.Scratch().Bools(n)}
	if _, err := e.Net.RunNodes("domset/wave", wp, int64(16*n+4096)); err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		if res.CenterID[v] < 0 {
			res.IsCenter[v] = true
			res.CenterID[v] = e.Net.ID(v)
		}
		if res.IsCenter[v] {
			res.Size++
		}
	}
	return res, nil
}

// waveProc: self-elect, then adopt the first center ID heard and forward
// the wave while within radius k. Shared across nodes; per-node state is
// the result arrays plus the flat claimed flags.
type waveProc struct {
	res     *Result
	k       int64
	prob    float64
	claimed []bool
}

// Step implements congest.NodeProc.
func (w *waveProc) Step(ctx *congest.Ctx, v int) bool {
	forward := func(depth int64) {
		if depth >= w.k {
			return
		}
		for q := 0; q < ctx.Degree(); q++ {
			if ctx.CanSend(q) {
				ctx.Send(q, congest.Message{Kind: kindClaim, A: w.res.CenterID[v], B: depth + 1})
			}
		}
	}
	if ctx.Round() == 0 && ctx.Rand().Float64() < w.prob {
		w.claimed[v] = true
		w.res.IsCenter[v] = true
		w.res.CenterID[v] = ctx.ID()
		forward(0)
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		if w.claimed[v] {
			return
		}
		w.claimed[v] = true
		w.res.CenterID[v] = m.Msg.A
		forward(m.Msg.B)
	})
	return false
}

// ConnectedDominatingSet returns the internal (non-leaf) nodes of the
// engine's BFS tree: a valid CDS, known locally (a node is internal iff it
// has tree children), at zero extra communication.
func ConnectedDominatingSet(e *core.Engine) *Result {
	n := e.N
	res := &Result{
		IsCenter: make([]bool, n),
		CenterID: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		res.IsCenter[v] = len(e.Tree.ChildPorts[v]) > 0
		if res.IsCenter[v] {
			res.Size++
		}
	}
	// Singleton graph: the root alone dominates itself.
	if n == 1 {
		res.IsCenter[0] = true
		res.Size = 1
	}
	for v := 0; v < n; v++ {
		if res.IsCenter[v] {
			res.CenterID[v] = e.Net.ID(v)
		} else {
			res.CenterID[v] = e.Net.ID(e.Tree.ParentNode[v])
		}
	}
	return res
}
