// Package domset implements Corollary A.3: computing a k-dominating set —
// a node set S such that every node is within distance k of some member —
// of size Õ(n/k) in Õ(D+√n) rounds and Õ(m) messages.
//
// The paper obtains size O(n/k) by generalizing the deterministic sub-part
// division (Algorithm 6) with threshold k/6. This package provides both a
// deterministic merge-based construction on top of the same star-joining
// machinery and the randomized sampled construction (the Algorithm 3
// analogue: sample centers with probability ~ log n / k, claim balls of
// radius k); the sampled variant carries an extra log n factor in expected
// size, as Lemma 5.1's analysis does.
//
// ConnectedDominatingSet returns the internal nodes of the BFS tree — a
// valid connected dominating set computed in O(D) rounds. The paper's
// O(log n)-approximation of the *minimum-weight* CDS (Corollary A.2, via
// Ghaffari [14]) layers a fractional covering routine on top of the same
// labeling primitive and is not reproduced; see DESIGN.md.
package domset
