package domset

import (
	"math"
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
)

func newEngine(t *testing.T, g *graph.Graph, seed int64) *core.Engine {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	e, err := core.NewEngine(net, core.Randomized)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkDomination verifies every node is within k hops of a center.
func checkDomination(t *testing.T, g *graph.Graph, res *Result, k int64) {
	t.Helper()
	// Multi-source BFS from all centers.
	dist := make([]int, g.N())
	for v := range dist {
		dist[v] = -1
	}
	var queue []int
	for v := 0; v < g.N(); v++ {
		if res.IsCenter[v] {
			dist[v] = 0
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.SortedNeighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if dist[v] < 0 || int64(dist[v]) > k {
			t.Fatalf("node %d at distance %d from nearest center, want <= %d", v, dist[v], k)
		}
	}
}

func TestKDominatingSetCoversWithinK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomConnected(100, 0.04, rng)
		e := newEngine(t, g, int64(trial+3))
		k := int64(2 + trial)
		res, err := KDominatingSet(e, k)
		if err != nil {
			t.Fatal(err)
		}
		checkDomination(t, g, res, k)
	}
}

func TestKDominatingSetSizeNearLinearOverK(t *testing.T) {
	const n, k = 600, 24
	g := graph.Path(n)
	e := newEngine(t, g, 7)
	res, err := KDominatingSet(e, k)
	if err != nil {
		t.Fatal(err)
	}
	checkDomination(t, g, res, k)
	bound := int(8*float64(n)*math.Log(float64(n))/float64(k)) + 4
	if res.Size > bound {
		t.Fatalf("size %d exceeds Õ(n/k) envelope %d", res.Size, bound)
	}
	if res.Size < n/(3*k) {
		t.Fatalf("size %d suspiciously small for a path (min possible ~ n/(2k+1))", res.Size)
	}
}

func TestKDominatingSetRejectsBadK(t *testing.T) {
	g := graph.Cycle(5)
	e := newEngine(t, g, 9)
	if _, err := KDominatingSet(e, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestConnectedDominatingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomConnected(60, 0.06, rng)
		e := newEngine(t, g, int64(trial+20))
		res := ConnectedDominatingSet(e)
		// Valid 1-domination.
		checkDomination(t, g, res, 1)
		// Connected: the centers induce a connected subgraph.
		var first = -1
		centers := make(map[int]bool)
		for v := 0; v < g.N(); v++ {
			if res.IsCenter[v] {
				centers[v] = true
				if first < 0 {
					first = v
				}
			}
		}
		if first < 0 {
			t.Fatal("empty CDS")
		}
		seen := map[int]bool{first: true}
		queue := []int{first}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.SortedNeighbors(v) {
				if centers[u] && !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		if len(seen) != len(centers) {
			t.Fatalf("CDS not connected: reached %d of %d", len(seen), len(centers))
		}
	}
}
