package sssp

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
	"shortcutpa/internal/tree"
)

const unreached = int64(1) << 62

// Message kinds.
const (
	kindRelax int32 = iota + 140
)

// Result holds per-node distance estimates from the source.
type Result struct {
	Dist []int64 // estimate; upper bound on the true distance for Approx
	// MetaRounds counts contracted Bellman-Ford iterations (Approx only).
	MetaRounds int
}

// BellmanFord computes exact distances: every node repeatedly announces its
// current distance; receivers relax by their incident edge weights. Rounds
// equal the maximum hop count of a shortest path (Θ(n) worst case — the
// round-suboptimal baseline); messages O(m) per improvement wave.
func BellmanFord(e *core.Engine, src int) (*Result, error) {
	n := e.N
	dist := make([]int64, n)
	for v := range dist {
		dist[v] = unreached
	}
	bf := &bellmanFordProc{g: e.Net.Graph(), src: src, dist: dist}
	if _, err := e.Net.RunNodes("sssp/bellman-ford", bf, int64(16*n+4096)); err != nil {
		return nil, err
	}
	return &Result{Dist: dist}, nil
}

// bellmanFordProc is the shared relax-and-announce state machine; per-node
// state is the flat dist array.
type bellmanFordProc struct {
	g    *graph.Graph
	src  int
	dist []int64
}

// Step implements congest.NodeProc.
func (p *bellmanFordProc) Step(ctx *congest.Ctx, v int) bool {
	improved := false
	if ctx.Round() == 0 && v == p.src {
		p.dist[v] = 0
		improved = true
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		if nd := m.Msg.A + int64(p.g.EdgeWeight(v, m.Port)); nd < p.dist[v] {
			p.dist[v] = nd
			improved = true
		}
	})
	if improved {
		ctx.Broadcast(congest.Message{Kind: kindRelax, A: p.dist[v]})
	}
	return false
}

// Approx computes upper-bound distance estimates via light-edge contraction.
// beta in (0, 1]: the light threshold is beta times the average edge weight.
func Approx(e *core.Engine, src int, beta float64) (*Result, error) {
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("sssp: beta %v outside (0,1]", beta)
	}
	n := e.N
	g := e.Net.Graph()

	// Global average weight by tree aggregation (nodes learn θ).
	budget := int64(16*n + 4096)
	vals := make([]congest.Val, n)
	for v := 0; v < n; v++ {
		var sw int64
		g.ForPorts(v, func(_, _, edge int) bool {
			sw += int64(g.Edge(edge).W)
			return true
		})
		vals[v] = congest.Val{A: sw, B: int64(g.Degree(v))}
	}
	agg, err := tree.Convergecast(e.Net, e.Tree, vals, congest.SumPair, nil, budget)
	if err != nil {
		return nil, err
	}
	if _, err := tree.Broadcast(e.Net, e.Tree, agg[e.Tree.Root], budget); err != nil {
		return nil, err
	}
	theta := int64(beta * float64(agg[e.Tree.Root].A) / float64(max(agg[e.Tree.Root].B, 1)))

	// Light-edge clusters: contract edges with weight <= θ.
	in := lightPartition(e, theta)
	if err := e.CoarsenToLeaders(in); err != nil {
		return nil, fmt.Errorf("sssp: clustering: %w", err)
	}
	inf, err := e.BuildInfra(in)
	if err != nil {
		return nil, err
	}

	// Intra-cluster traversal bounds. For clusters covered by the radius-D
	// BFS every node knows its hop depth to the cluster leader, so the path
	// u -> leader -> v costs at most (depth(u)+depth(v))·θ: the PA key
	// carries arrival(u)+depth(u)·θ and receivers add depth(v)·θ. Deeper
	// clusters fall back to the loose whole-cluster span (size-1)·θ.
	ones := make([]congest.Val, n)
	for v := range ones {
		ones[v] = congest.Val{A: 1}
	}
	sizes, err := e.SolveWithInfra(inf, ones, congest.SumPair)
	if err != nil {
		return nil, err
	}
	span := make([]int64, n)
	inDepth := make([]int64, n)
	for v := 0; v < n; v++ {
		span[v] = (sizes.Values[v].A - 1) * theta
		if inf.PB.Covered[v] {
			inDepth[v] = int64(inf.PB.Depth[v]) * theta
		}
	}

	// Contracted Bellman-Ford: PA-min spreads the best arrival through each
	// cluster; one relax round crosses edges; a global OR decides
	// termination.
	arrival := make([]int64, n)
	est := make([]int64, n)
	for v := range arrival {
		arrival[v] = unreached
	}
	arrival[src] = 0
	res := &Result{Dist: est}
	_, numParts := graph.NormalizeParts(in.Dense)
	maxMeta := 2*numParts + 8
	for iter := 0; ; iter++ {
		if iter > maxMeta {
			return nil, fmt.Errorf("sssp: contracted Bellman-Ford exceeded %d meta-rounds", maxMeta)
		}
		av := make([]congest.Val, n)
		for v := 0; v < n; v++ {
			key := arrival[v]
			if key < unreached && inf.PB.Covered[v] {
				key += inDepth[v]
			}
			av[v] = congest.Val{A: key}
		}
		entry, err := e.SolveWithInfra(inf, av, congest.MinPair)
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			est[v] = arrival[v]
			if entry.Values[v].A < unreached {
				cand := entry.Values[v].A + span[v]
				if inf.PB.Covered[v] {
					cand = entry.Values[v].A + inDepth[v]
				}
				if cand < est[v] {
					est[v] = cand
				}
			}
		}
		changed, err := relaxRound(e, in, est, arrival)
		if err != nil {
			return nil, err
		}
		res.MetaRounds = iter + 1
		flag, err := globalOr(e, changed)
		if err != nil {
			return nil, err
		}
		if !flag {
			break
		}
	}
	return res, nil
}

// lightPartition builds the partition induced by edges of weight <= θ.
func lightPartition(e *core.Engine, theta int64) *part.Info {
	g := e.Net.Graph()
	n := e.N
	in := part.NewInfo(e.Net)
	keep := make([]bool, g.M())
	for i := 0; i < g.M(); i++ {
		keep[i] = int64(g.Edge(i).W) <= theta
	}
	dense, _ := g.SubgraphComponents(keep)
	copy(in.Dense, dense)
	for v := 0; v < n; v++ {
		same := in.SameRow(v)
		g.ForPorts(v, func(q, _, edge int) bool {
			same[q] = keep[edge]
			return true
		})
	}
	return in
}

// relaxRound: every reached node announces its estimate once across
// cluster-leaving edges; receivers relax by edge weights. Intra-cluster
// edges are deliberately excluded — the PA entry+span pass owns the inside
// of each cluster, which is what bounds the meta-round count by the
// cluster-hop diameter (relaxing inside clusters too would trickle one edge
// per meta-round and defeat the contraction). Reports per-node improvement
// flags.
func relaxRound(e *core.Engine, in *part.Info, est, arrival []int64) ([]bool, error) {
	n := e.N
	changed := make([]bool, n)
	rp := &relaxProc{g: e.Net.Graph(), in: in, est: est, arrival: arrival, changed: changed}
	if _, err := e.Net.RunNodes("sssp/relax", rp, int64(16*n+4096)); err != nil {
		return nil, err
	}
	return changed, nil
}

// relaxProc announces estimates across cluster-leaving edges once and
// relaxes receivers; per-node state lives in the est/arrival/changed arrays.
type relaxProc struct {
	g       *graph.Graph
	in      *part.Info
	est     []int64
	arrival []int64
	changed []bool
}

// Step implements congest.NodeProc.
func (p *relaxProc) Step(ctx *congest.Ctx, v int) bool {
	if ctx.Round() == 0 && p.est[v] < unreached {
		for q, ok := range p.in.SameRow(v) {
			if !ok {
				ctx.Send(q, congest.Message{Kind: kindRelax, A: p.est[v]})
			}
		}
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		if nd := m.Msg.A + int64(p.g.EdgeWeight(v, m.Port)); nd < p.arrival[v] && nd < p.est[v] {
			p.arrival[v] = nd
			p.changed[v] = true
		}
	})
	return false
}

// globalOr aggregates per-node flags on the engine tree; every node learns
// the result.
func globalOr(e *core.Engine, flags []bool) (bool, error) {
	n := e.N
	budget := int64(16*n + 4096)
	vals := make([]congest.Val, n)
	for v := 0; v < n; v++ {
		if flags[v] {
			vals[v] = congest.Val{A: 1}
		}
	}
	agg, err := tree.Convergecast(e.Net, e.Tree, vals, congest.OrPair, nil, budget)
	if err != nil {
		return false, err
	}
	if _, err := tree.Broadcast(e.Net, e.Tree, agg[e.Tree.Root], budget); err != nil {
		return false, err
	}
	return agg[e.Tree.Root].A != 0, nil
}
