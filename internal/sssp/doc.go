// Package sssp implements Corollary 1.5: approximate single-source shortest
// paths with a round/message profile governed by Part-Wise Aggregation, plus
// the exact distributed Bellman-Ford baseline.
//
// The approximation follows the Haeupler-Li [18] recipe in simplified form
// (see DESIGN.md, substitutions): edges lighter than a β-scaled threshold
// are contracted into clusters whose internal traversal is charged an upper
// bound ((size-1)·θ, available from one PA count); Bellman-Ford then runs
// over the contracted graph, with each meta-step using one PA-min to spread
// the best arrival through every cluster — exactly the paper's "traverse
// zero-weight components in a single round via PA" device. Estimates are
// always upper bounds on true distances; β trades approximation quality
// against meta-rounds (β -> 0 recovers exact Bellman-Ford).
package sssp
