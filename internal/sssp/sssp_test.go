package sssp

import (
	"math/rand"
	"sort"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
)

func newEngine(t *testing.T, g *graph.Graph, seed int64) *core.Engine {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	e, err := core.NewEngine(net, core.Randomized)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBellmanFordMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		g := graph.RandomizeWeights(graph.RandomConnected(50, 0.08, rng), 40, rng)
		e := newEngine(t, g, int64(trial+3))
		src := rng.Intn(g.N())
		res, err := BellmanFord(e, src)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Dijkstra(src)
		for v := 0; v < g.N(); v++ {
			if res.Dist[v] != want[v] {
				t.Fatalf("trial %d node %d: BF %d, Dijkstra %d", trial, v, res.Dist[v], want[v])
			}
		}
	}
}

func TestBellmanFordRoundsTrackHopDiameter(t *testing.T) {
	g := graph.Path(100)
	e := newEngine(t, g, 5)
	e.Net.ResetMetrics()
	if _, err := BellmanFord(e, 0); err != nil {
		t.Fatal(err)
	}
	rounds := e.Net.Total().Rounds
	if rounds < 99 {
		t.Fatalf("BF on P100 finished in %d rounds; must pay the hop diameter", rounds)
	}
}

func TestApproxZeroBetaIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomizeWeights(graph.RandomConnected(40, 0.1, rng), 30, rng)
	e := newEngine(t, g, 8)
	src := 3
	res, err := Approx(e, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Dijkstra(src)
	for v := 0; v < g.N(); v++ {
		if res.Dist[v] != want[v] {
			t.Fatalf("node %d: approx(beta=0) %d, Dijkstra %d", v, res.Dist[v], want[v])
		}
	}
}

func TestApproxIsUpperBoundAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomizeWeights(graph.RandomConnected(60, 0.07, rng), 100, rng)
		e := newEngine(t, g, int64(trial+20))
		src := rng.Intn(g.N())
		res, err := Approx(e, src, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Dijkstra(src)
		var ratios []float64
		for v := 0; v < g.N(); v++ {
			if res.Dist[v] < want[v] {
				t.Fatalf("trial %d node %d: estimate %d below true %d", trial, v, res.Dist[v], want[v])
			}
			if want[v] > 0 {
				ratios = append(ratios, float64(res.Dist[v])/float64(want[v]))
			}
		}
		sort.Float64s(ratios)
		median := ratios[len(ratios)/2]
		worst := ratios[len(ratios)-1]
		// Corollary 1.5 guarantees an L^O(eps) factor — polynomial in the
		// distance scale, not constant. Shape checks: typical quality is
		// good (median), and even the worst node stays far below the
		// trivial n-fold blow-up.
		if median > 10 {
			t.Fatalf("trial %d: median approximation ratio %.1f", trial, median)
		}
		if worst > 150 {
			t.Fatalf("trial %d: worst approximation ratio %.1f", trial, worst)
		}
	}
}

func TestApproxMetaRoundsShrinkWithBeta(t *testing.T) {
	// Larger beta -> coarser clusters -> fewer contracted Bellman-Ford
	// iterations. This is the paper's beta tradeoff (rounds vs quality).
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomizeWeights(graph.Path(150), 10, rng)
	e1 := newEngine(t, g, 12)
	exact, err := Approx(e1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(t, g, 12)
	coarse, err := Approx(e2, 0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.MetaRounds >= exact.MetaRounds {
		t.Fatalf("beta=1 used %d meta-rounds, beta=0 used %d; contraction should shorten the chain",
			coarse.MetaRounds, exact.MetaRounds)
	}
}
