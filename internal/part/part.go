package part

import (
	"fmt"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
)

// Message kinds used by this package's protocols.
const (
	kindElect int32 = iota + 30
	kindJoin
	kindChild
	kindUncovered
	kindFlagUp
	kindVerdictDown
)

// Info is a PA partition as local knowledge. Entry v of LeaderID/IsLeader/
// Dense belongs to node v; SamePart is flat over the graph's CSR offsets.
type Info struct {
	// Row is the CSR row-offset table (len n+1; aliases the graph's
	// CSR.RowStart, never a copy): node v's per-port entries occupy
	// SamePart[Row[v]:Row[v+1]].
	Row []int32
	// SamePart is one flat array over all 2m half-edges: SamePart[Row[v]+p]
	// reports whether port p of node v stays inside v's part. The flat
	// CSR-offset layout replaces the former per-node [][]bool — one
	// allocation instead of n+1, and the same offsets the engine's delivery
	// slots use.
	SamePart []bool
	LeaderID []int64 // ID of my part's leader; -1 if not (yet) known
	IsLeader []bool

	// Dense is an engine-side dense relabeling of the partition, used only
	// by oracles and experiment reporting, never by protocols.
	Dense []int
}

// NewInfo allocates an empty partition shell over net's graph: a flat
// SamePart across the CSR offsets, leaders unknown (LeaderID -1).
func NewInfo(net *congest.Network) *Info {
	g := net.Graph()
	n := g.N()
	csr := g.CSR()
	in := &Info{
		Row:      csr.RowStart,
		SamePart: make([]bool, len(csr.PortTo)),
		LeaderID: make([]int64, n),
		IsLeader: make([]bool, n),
		Dense:    make([]int, n),
	}
	for v := range in.LeaderID {
		in.LeaderID[v] = -1
	}
	return in
}

// Same reports whether port p of node v stays inside v's part.
func (in *Info) Same(v, p int) bool { return in.SamePart[in.Row[v]+int32(p)] }

// SameRow returns node v's per-port window of the flat SamePart array
// (length Degree(v), indexed by port).
func (in *Info) SameRow(v int) []bool { return in.SamePart[in.Row[v]:in.Row[v+1]] }

// NumParts returns the number of parts (engine-side).
func (in *Info) NumParts() int {
	seen := make(map[int]struct{})
	for _, p := range in.Dense {
		seen[p] = struct{}{}
	}
	return len(seen)
}

// FromDense builds partition-local knowledge from a dense parts slice
// (engine-side construction of the PA instance; the resulting SamePart is
// exactly what Definition 1.1 grants each node). Leaders are unknown.
func FromDense(net *congest.Network, parts []int) (*Info, error) {
	g := net.Graph()
	if err := graph.ValidatePartition(g, parts); err != nil {
		return nil, err
	}
	n := g.N()
	in := NewInfo(net)
	dense, _ := graph.NormalizeParts(parts)
	copy(in.Dense, dense)
	for v := 0; v < n; v++ {
		same := in.SameRow(v)
		dv := dense[v]
		g.ForPorts(v, func(p, to, _ int) bool {
			same[p] = dense[to] == dv
			return true
		})
	}
	return in, nil
}

// SetLeaders installs known leaders (used by applications such as Borůvka
// that maintain fragment leaders as they merge).
func (in *Info) SetLeaders(leaderID []int64, isLeader []bool) {
	copy(in.LeaderID, leaderID)
	copy(in.IsLeader, isLeader)
}

// ElectLeaders floods the minimum ID within each part and installs the
// winners as part leaders. Rounds are O(max part diameter) — fine for tests
// and for applications whose parts are known to be shallow; the general
// leaderless case is handled round-optimally by Algorithm 9 (internal/core).
func ElectLeaders(net *congest.Network, in *Info, maxRounds int64) error {
	n := net.N()
	// Leaf-scoped arena use: minID is filled, read during the single run,
	// and copied into in.LeaderID before this function returns.
	minID := net.Scratch().Int64s(n)
	for v := 0; v < n; v++ {
		minID[v] = net.ID(v)
	}
	if _, err := net.RunNodes("part/elect", &electProc{in: in, minID: minID}, maxRounds); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		in.LeaderID[v] = minID[v]
		in.IsLeader[v] = net.ID(v) == minID[v]
	}
	return nil
}

// electProc is the shared min-ID flood over intra-part edges: per-node
// state is the flat minID array, indexed by the stepped node.
type electProc struct {
	in    *Info
	minID []int64
}

// Step implements congest.NodeProc.
func (p *electProc) Step(ctx *congest.Ctx, v int) bool {
	improved := ctx.Round() == 0
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		if m.Msg.A < p.minID[v] {
			p.minID[v] = m.Msg.A
			improved = true
		}
	})
	if improved {
		for q, ok := range p.in.SameRow(v) {
			if ok {
				ctx.Send(q, congest.Message{Kind: kindElect, A: p.minID[v]})
			}
		}
	}
	return false
}

// BFS is the outcome of a radius-capped intra-part BFS from part leaders.
// Covered[v] reports (as knowledge at v!) whether v's entire part was
// reached within the radius — the branch condition of Algorithms 1 and 3
// (a part of at most D nodes always fits in radius D).
type BFS struct {
	Joined     []bool
	ParentPort []int // toward the leader; -1 at the leader or if unjoined
	ChildPorts [][]int
	Depth      []int
	Covered    []bool
	Size       []int64 // part size, known when Covered (leader counts, then broadcasts)
}

// bfsState bundles the shared slices the capped-BFS procs write into.
type bfsState struct {
	in     *Info
	radius int64
	b      *BFS
	// Child accounting for the convergecast stage: expected replies.
	pendingChild []int
	flag         []bool // a complaint reached this subtree
	count        []int64
	reported     []bool
}

// RestrictedBFS runs the capped intra-part BFS plus coverage verdict:
//
//  1. JOIN waves flood from leaders along intra-part edges for `radius`
//     rounds; nodes adopt the first JOIN heard and reply CHILD so parents
//     learn their children.
//  2. Unjoined nodes complain (UNCOVERED) to intra-part neighbors.
//  3. A convergecast up the partial BFS forest delivers to each leader the
//     OR of complaints and the joined-node count.
//  4. Leaders broadcast the verdict (covered?, size) back down.
//
// Rounds O(radius), messages O(Σ_i m_i) over intra-part edges.
func RestrictedBFS(net *congest.Network, in *Info, radius int64, maxRounds int64) (*BFS, error) {
	n := net.N()
	b := &BFS{
		Joined:     make([]bool, n),
		ParentPort: make([]int, n),
		ChildPorts: make([][]int, n),
		Depth:      make([]int, n),
		Covered:    make([]bool, n),
		Size:       make([]int64, n),
	}
	st := &bfsState{
		in: in, radius: radius, b: b,
		pendingChild: make([]int, n),
		flag:         make([]bool, n),
		count:        make([]int64, n),
		reported:     make([]bool, n),
	}
	for v := 0; v < n; v++ {
		b.ParentPort[v] = -1
		b.Depth[v] = -1
	}
	if _, err := net.RunNodes("part/bfs-join", &bfsJoinProc{st: st}, maxRounds); err != nil {
		return nil, err
	}
	if _, err := net.RunNodes("part/bfs-verdict", &bfsVerdictProc{st: st}, maxRounds); err != nil {
		return nil, err
	}
	return b, nil
}

// bfsJoinProc: stage 1 (join wave + child registration). Shared across
// nodes; all per-node state lives in bfsState's flat arrays.
type bfsJoinProc struct {
	st *bfsState
}

// Step implements congest.NodeProc.
func (p *bfsJoinProc) Step(ctx *congest.Ctx, v int) bool {
	st := p.st
	same := st.in.SameRow(v)
	join := func(depth int64) {
		st.b.Joined[v] = true
		st.b.Depth[v] = int(depth)
		if depth >= st.radius {
			return // cap: do not extend the wave further
		}
		for q, ok := range same {
			if ok && q != st.b.ParentPort[v] && ctx.CanSend(q) {
				ctx.Send(q, congest.Message{Kind: kindJoin, A: depth + 1})
			}
		}
	}
	if ctx.Round() == 0 && st.in.IsLeader[v] {
		join(0)
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		switch m.Msg.Kind {
		case kindJoin:
			if st.b.Joined[v] {
				return // a JOIN to an already-joined node needs no reply
			}
			st.b.ParentPort[v] = m.Port
			ctx.Send(m.Port, congest.Message{Kind: kindChild})
			join(m.Msg.A)
		case kindChild:
			st.b.ChildPorts[v] = append(st.b.ChildPorts[v], m.Port)
		}
	})
	return false
}

// bfsVerdictProc: stages 2-4 (complaints, convergecast, verdict broadcast).
// pendingChild now holds the number of children that will report.
type bfsVerdictProc struct {
	st *bfsState
}

// Step implements congest.NodeProc.
func (p *bfsVerdictProc) Step(ctx *congest.Ctx, v int) bool {
	st := p.st
	if ctx.Round() == 0 {
		if !st.b.Joined[v] {
			// Complain to intra-part neighbors; some joined neighbor exists
			// along the path toward the leader... or the whole part is
			// unjoined, in which case no leader exists and no verdict is
			// needed (Covered stays false).
			for q, ok := range st.in.SameRow(v) {
				if ok {
					ctx.Send(q, congest.Message{Kind: kindUncovered})
				}
			}
			return false
		}
		st.count[v] = 1
		st.pendingChild[v] = len(st.b.ChildPorts[v])
	}
	if !st.b.Joined[v] {
		return false
	}
	ctx.ForRecv(func(_ int, m congest.Incoming) {
		switch m.Msg.Kind {
		case kindUncovered:
			st.flag[v] = true
		case kindFlagUp:
			st.flag[v] = st.flag[v] || m.Msg.A != 0
			st.count[v] += m.Msg.B
			st.pendingChild[v]--
		case kindVerdictDown:
			st.b.Covered[v] = m.Msg.A != 0
			st.b.Size[v] = m.Msg.B
			for _, q := range st.b.ChildPorts[v] {
				ctx.Send(q, m.Msg)
			}
		}
	})
	// Fire the convergecast once all children reported. Round 1 is the
	// earliest complaints can arrive, so leaves wait until round >= 2.
	if ctx.Round() >= 2 && st.pendingChild[v] == 0 && !st.reported[v] {
		st.reported[v] = true
		flagBit := int64(0)
		if st.flag[v] {
			flagBit = 1
		}
		if st.b.ParentPort[v] >= 0 {
			ctx.Send(st.b.ParentPort[v], congest.Message{Kind: kindFlagUp, A: flagBit, B: st.count[v]})
		} else if st.in.IsLeader[v] {
			covered := int64(1)
			if st.flag[v] {
				covered = 0
			}
			st.b.Covered[v] = covered != 0
			st.b.Size[v] = st.count[v]
			for _, q := range st.b.ChildPorts[v] {
				ctx.Send(q, congest.Message{Kind: kindVerdictDown, A: covered, B: st.count[v]})
			}
		}
		return false
	}
	return !st.reported[v]
}

// CheckAgainstDense verifies (engine-side) that coverage verdicts are
// consistent with the dense partition: every node of a covered part is
// joined and got the right size. Test/diagnostic helper.
func (b *BFS) CheckAgainstDense(in *Info) error {
	sizes := make(map[int]int64)
	covered := make(map[int]bool)
	for v, p := range in.Dense {
		sizes[p]++
		if b.Covered[v] {
			covered[p] = true
		}
	}
	for v, p := range in.Dense {
		if covered[p] {
			if !b.Joined[v] {
				return fmt.Errorf("part: node %d of covered part %d not joined", v, p)
			}
			if !b.Covered[v] || b.Size[v] != sizes[p] {
				return fmt.Errorf("part: node %d verdict (%v,%d), want (true,%d)", v, b.Covered[v], b.Size[v], sizes[p])
			}
		}
	}
	return nil
}
