package part

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
)

const testBudget = 100000

func TestFromDenseSamePartMatchesPartition(t *testing.T) {
	g := graph.Grid(4, 5)
	parts := graph.StripePartition(4, 5)
	net := congest.NewNetwork(g, 1)
	in, err := FromDense(net, parts)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		for p := 0; p < g.Degree(v); p++ {
			want := parts[g.Neighbor(v, p)] == parts[v]
			if in.Same(v, p) != want {
				t.Fatalf("node %d port %d: SamePart %v, want %v", v, p, in.Same(v, p), want)
			}
		}
	}
	if in.NumParts() != 4 {
		t.Fatalf("NumParts = %d, want 4", in.NumParts())
	}
}

func TestFromDenseRejectsDisconnectedParts(t *testing.T) {
	g := graph.Path(4)
	net := congest.NewNetwork(g, 1)
	if _, err := FromDense(net, []int{0, 1, 0, 1}); err == nil {
		t.Fatal("disconnected partition accepted")
	}
}

func TestElectLeadersPerPart(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomConnected(50, 0.06, rng)
	net := congest.NewNetwork(g, 3)
	parts := graph.RandomConnectedPartition(g, 6, rng)
	in, err := FromDense(net, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ElectLeaders(net, in, testBudget); err != nil {
		t.Fatal(err)
	}
	// Every part's leader ID is the min ID in the part, and all members
	// agree; exactly one member is the leader.
	minID := make(map[int]int64)
	for v := 0; v < g.N(); v++ {
		p := in.Dense[v]
		if id, ok := minID[p]; !ok || net.ID(v) < id {
			minID[p] = net.ID(v)
		}
	}
	leaders := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		p := in.Dense[v]
		if in.LeaderID[v] != minID[p] {
			t.Fatalf("node %d: leader ID %d, want %d", v, in.LeaderID[v], minID[p])
		}
		if in.IsLeader[v] {
			leaders[p]++
		}
	}
	for p, c := range leaders {
		if c != 1 {
			t.Fatalf("part %d has %d leaders", p, c)
		}
	}
	if len(leaders) != in.NumParts() {
		t.Fatalf("%d parts have leaders, want %d", len(leaders), in.NumParts())
	}
}

func TestRestrictedBFSCoverageVerdicts(t *testing.T) {
	// Path of 30 nodes, split into a short part (6 nodes) and a long part
	// (24 nodes). With radius 8 the short part is covered; the long one is
	// covered only if its leader sits centrally — with flood-min the leader
	// is at the min-ID node, so test both outcomes via the oracle check.
	g := graph.Path(30)
	parts := make([]int, 30)
	for v := 6; v < 30; v++ {
		parts[v] = 1
	}
	net := congest.NewNetwork(g, 7)
	in, err := FromDense(net, parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ElectLeaders(net, in, testBudget); err != nil {
		t.Fatal(err)
	}
	b, err := RestrictedBFS(net, in, 8, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckAgainstDense(in); err != nil {
		t.Fatal(err)
	}
	// The 6-node part always fits in radius 8.
	for v := 0; v < 6; v++ {
		if !b.Covered[v] {
			t.Fatalf("node %d of the 6-node part not covered", v)
		}
		if b.Size[v] != 6 {
			t.Fatalf("node %d sees size %d, want 6", v, b.Size[v])
		}
	}
}

func TestRestrictedBFSSmallRadiusLeavesUncovered(t *testing.T) {
	g := graph.Path(20)
	net := congest.NewNetwork(g, 9)
	in, err := FromDense(net, graph.WholePartition(20))
	if err != nil {
		t.Fatal(err)
	}
	if err := ElectLeaders(net, in, testBudget); err != nil {
		t.Fatal(err)
	}
	b, err := RestrictedBFS(net, in, 2, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if b.Covered[v] && !b.Joined[v] {
			t.Fatalf("node %d covered but not joined", v)
		}
		if b.Covered[v] {
			t.Fatalf("node %d claims covered with radius 2 on P20", v)
		}
	}
	// Joined nodes are exactly those within 2 hops of the leader.
	leader := -1
	for v := 0; v < g.N(); v++ {
		if in.IsLeader[v] {
			leader = v
		}
	}
	dist := g.BFSFrom(leader)
	for v := 0; v < g.N(); v++ {
		if b.Joined[v] != (dist[v] <= 2) {
			t.Fatalf("node %d joined=%v at distance %d with radius 2", v, b.Joined[v], dist[v])
		}
	}
}

func TestRestrictedBFSRespectsPartBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 6; trial++ {
		g := graph.RandomConnected(40, 0.08, rng)
		net := congest.NewNetwork(g, int64(trial))
		parts := graph.RandomConnectedPartition(g, 5, rng)
		in, err := FromDense(net, parts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ElectLeaders(net, in, testBudget); err != nil {
			t.Fatal(err)
		}
		b, err := RestrictedBFS(net, in, int64(g.N()), testBudget)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.CheckAgainstDense(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// With radius n every part is covered, and parent edges stay inside
		// the part.
		for v := 0; v < g.N(); v++ {
			if !b.Covered[v] {
				t.Fatalf("trial %d: node %d uncovered at radius n", trial, v)
			}
			if p := b.ParentPort[v]; p >= 0 {
				if in.Dense[g.Neighbor(v, p)] != in.Dense[v] {
					t.Fatalf("trial %d: node %d parent crosses part boundary", trial, v)
				}
			}
		}
	}
}
