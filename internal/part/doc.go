// Package part represents Part-Wise Aggregation partitions as CONGEST-local
// knowledge and provides the intra-part protocols the paper's algorithms
// build on: restricted flood-min leader election and radius-capped
// intra-part BFS with coverage detection.
//
// Per Definition 1.1, a node knows only which of its ports stay inside its
// part; per Section 4, the paper additionally assumes every node knows its
// part leader's ID (an assumption removable via Algorithm 9, implemented in
// internal/core). Part IDs are leader IDs.
package part
