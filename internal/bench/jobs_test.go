package bench

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// jobs_test.go covers the multi-run serving mode: spec parsing, the JSONL
// field-stability contract, bit-identical results at every pool width and
// cache setting (the serving-side determinism proof), and the shared-pool
// race leg that the CONGEST_WORKERS=4 CI matrix drives through the parallel
// engine.

func TestParseJobSpec(t *testing.T) {
	spec, err := ParseJobSpec("protocols=mst,domset; graphs=torus:400,random:120; seeds=1,2,5-8")
	if err != nil {
		t.Fatal(err)
	}
	want := JobSpec{
		Protocols: []string{"mst", "domset"},
		Graphs:    []GraphSpec{{Family: "torus", N: 400}, {Family: "random", N: 120}},
		Seeds:     []int64{1, 2, 5, 6, 7, 8},
	}
	if !reflect.DeepEqual(spec, want) {
		t.Errorf("parsed %+v, want %+v", spec, want)
	}

	// protocols=all and a defaulted seeds clause expand at Expand time.
	spec, err = ParseJobSpec("protocols=all;graphs=grid:64")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(JobProtocolNames()); len(jobs) != want {
		t.Errorf("all-protocols single-graph single-seed spec expanded to %d jobs, want %d", len(jobs), want)
	}
	for i, j := range jobs {
		if j.Index != i || j.Seed != 1 {
			t.Errorf("job %d: index %d seed %d, want index %d seed 1", i, j.Index, j.Seed, i)
		}
	}

	// A scenario clause rides inside the jobs grammar using the scenario
	// grammar's '+' separator form.
	spec, err = ParseJobSpec("graphs=torus:36;scenario=crash=7@2+seed-faults=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Scenario != "crash=7@2+seed-faults=0.01" {
		t.Errorf("scenario clause parsed to %q", spec.Scenario)
	}

	for _, bad := range []string{
		"",                                  // no graphs
		"graphs=torus",                      // missing :n
		"graphs=torus:x",                    // bad size
		"graphs=torus:400;seeds=9-2",        // descending range
		"graphs=torus:400;frobs=1",          // unknown key
		"protocols",                         // not key=value
		"graphs=torus:400;scenario=crash=7", // scenario grammar error
		"graphs=torus:400;scenario=seed-faults=2", // rate out of range
	} {
		if _, err := ParseJobSpec(bad); err == nil {
			t.Errorf("ParseJobSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestExpandRejectsUnknownNames(t *testing.T) {
	if _, err := (JobSpec{Graphs: []GraphSpec{{Family: "moebius", N: 100}}}).Expand(); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := (JobSpec{Protocols: []string{"frob"}, Graphs: []GraphSpec{{Family: "torus", N: 100}}}).Expand(); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := (JobSpec{Graphs: []GraphSpec{{Family: "torus", N: 0}}}).Expand(); err == nil {
		t.Error("non-positive size accepted")
	}
}

// TestJobsJSONLFieldStability golden-pins the Result encoding: pabench
// -jobs streams one such line per run, and downstream consumers key on the
// exact field names and order. Changing this encoding is an output-format
// break and must update this golden deliberately.
func TestJobsJSONLFieldStability(t *testing.T) {
	line, err := json.Marshal(Result{
		Job: 3, Protocol: "mst", Family: "torus", N: 400, Seed: 7,
		Reused: true, Rounds: 123, Messages: 4567,
		Output: "00000000deadbeef", MS: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"job":3,"protocol":"mst","family":"torus","n":400,"seed":7,"reused":true,"rounds":123,"messages":4567,"output":"00000000deadbeef","ms":1.5}`
	if string(line) != golden {
		t.Errorf("JSONL encoding drifted:\n got: %s\nwant: %s", line, golden)
	}
	// scenario and err are omitempty: fault-free successful runs carry
	// neither, and a faulty run's line names its scenario.
	withErr, err := json.Marshal(Result{Scenario: "crash=7@2", Err: "budget"})
	if err != nil {
		t.Fatal(err)
	}
	const goldenErr = `{"job":0,"protocol":"","family":"","n":0,"seed":0,"reused":false,"rounds":0,"messages":0,"output":"","ms":0,"scenario":"crash=7@2","err":"budget"}`
	if string(withErr) != goldenErr {
		t.Errorf("JSONL error encoding drifted:\n got: %s\nwant: %s", withErr, goldenErr)
	}
}

// drainSpec runs a spec and returns its results in queue order with the
// wall-clock field zeroed — the deterministic projection two drains of the
// same spec must agree on bit for bit.
func drainSpec(t *testing.T, spec JobSpec) ([]Result, Summary) {
	t.Helper()
	var results []Result
	sum, err := RunJobs(spec, func(r Result) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != len(results) {
		t.Fatalf("summary counts %d runs, emitted %d", sum.Runs, len(results))
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Job < results[j].Job })
	for i := range results {
		results[i].MS = 0
		if results[i].Err != "" {
			t.Fatalf("job %d (%s/%s) failed: %s", results[i].Job, results[i].Protocol, results[i].Family, results[i].Err)
		}
	}
	return results, sum
}

// smallSpec is the shared deterministic fixture: two topologies, two seeds,
// a randomized protocol (domset — per-node PRNG streams) and a multi-phase
// one (verify), so both PRNG reuse and cost accounting are exercised.
func smallSpec() JobSpec {
	return JobSpec{
		Protocols: []string{"domset", "verify"},
		Graphs:    []GraphSpec{{Family: "torus", N: 36}, {Family: "random", N: 48}},
		Seeds:     []int64{1, 2},
	}
}

// TestJobsDeterministicAcrossPoolAndCache is the serving-side bit-identity
// proof: the same spec drained sequentially without reuse (pool=1,
// cache disabled — every run on a fresh network), sequentially with full
// reuse, and concurrently (pool=4) must produce identical Results — same
// digests, same Rounds/Messages — differing only in the reused flag and
// completion order.
func TestJobsDeterministicAcrossPoolAndCache(t *testing.T) {
	base := smallSpec()
	base.PoolWorkers = 1
	base.Cache = -1
	fresh, _ := drainSpec(t, base)

	reusing := smallSpec()
	reusing.PoolWorkers = 1
	warm, sum := drainSpec(t, reusing)
	if sum.Reused == 0 {
		t.Error("sequential drain with adjacent same-topology jobs reused no network")
	}

	wide := smallSpec()
	wide.PoolWorkers = 4
	concurrent, _ := drainSpec(t, wide)

	for i := range fresh {
		fresh[i].Reused = false
		warm[i].Reused = false
		concurrent[i].Reused = false
	}
	if !reflect.DeepEqual(fresh, warm) {
		t.Errorf("reused-network drain diverged from fresh-network drain")
	}
	if !reflect.DeepEqual(fresh, concurrent) {
		t.Errorf("pool=4 drain diverged from sequential drain")
	}
}

// TestJobsCacheBound: a cache of capacity 1 across two alternating
// topologies still completes with identical results — eviction never
// affects correctness, only hit rate.
func TestJobsCacheBound(t *testing.T) {
	spec := smallSpec()
	spec.PoolWorkers = 1
	spec.Cache = 1
	bounded, _ := drainSpec(t, spec)

	ref := smallSpec()
	ref.PoolWorkers = 1
	ref.Cache = -1
	fresh, _ := drainSpec(t, ref)
	for i := range fresh {
		fresh[i].Reused = false
		bounded[i].Reused = false
	}
	if !reflect.DeepEqual(fresh, bounded) {
		t.Error("cache-bounded drain diverged from fresh drain")
	}
}

// TestJobsSharedPoolRace drives concurrent jobs on distinct networks over
// the shared pool — under `go test -race` (and the CONGEST_WORKERS=4 CI
// leg, where every job's network additionally runs the parallel engine,
// nesting engine pools inside the serving pool) this is the standing data-
// race check on the serving path.
func TestJobsSharedPoolRace(t *testing.T) {
	spec := JobSpec{
		Protocols:   []string{"domset", "corefast-pa", "sssp"},
		Graphs:      []GraphSpec{{Family: "torus", N: 36}, {Family: "grid", N: 49}, {Family: "ladder", N: 40}},
		Seeds:       []int64{1, 2},
		PoolWorkers: 4,
	}
	results, sum := drainSpec(t, spec)
	if len(results) != 18 {
		t.Fatalf("expected 18 runs, got %d", len(results))
	}
	if sum.RunsPerSec <= 0 {
		t.Errorf("summary runs/sec = %v, want > 0", sum.RunsPerSec)
	}
}

// drainFaulty runs a spec whose scenario may legitimately make runs fail,
// returning queue-ordered results with MS zeroed. Unlike drainSpec it keeps
// Err: under faults an error (a protocol starved past its budget by dead
// edges) is a valid deterministic outcome, and the bit-identity tests below
// compare it like any other field.
func drainFaulty(t *testing.T, spec JobSpec) ([]Result, Summary) {
	t.Helper()
	var results []Result
	sum, err := RunJobs(spec, func(r Result) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Job < results[j].Job })
	for i := range results {
		results[i].MS = 0
	}
	return results, sum
}

// faultySpec is the shared faulty serving fixture: a scripted crash plus a
// low random fault rate, over topologies small enough that most protocols
// still terminate.
func faultySpec() JobSpec {
	return JobSpec{
		Protocols: []string{"domset", "verify", "corefast-pa"},
		Graphs:    []GraphSpec{{Family: "torus", N: 36}, {Family: "grid", N: 49}},
		Seeds:     []int64{1, 2},
		Scenario:  "crash=7@40+seed-faults=0.002",
	}
}

// TestJobsScenarioDeterministicAcrossPoolAndCache is the faulty half of the
// serving determinism proof: a drain under a fault scenario is bit-identical
// whether networks are fresh, Reset-reused, or drained concurrently —
// SetScenario after Reset rewinds the fault state, so a warm network replays
// the same crashes the fresh one saw.
func TestJobsScenarioDeterministicAcrossPoolAndCache(t *testing.T) {
	base := faultySpec()
	base.PoolWorkers = 1
	base.Cache = -1
	fresh, _ := drainFaulty(t, base)

	reusing := faultySpec()
	reusing.PoolWorkers = 1
	warm, sum := drainFaulty(t, reusing)
	if sum.Reused == 0 {
		t.Error("faulty drain with adjacent same-topology jobs reused no network")
	}

	wide := faultySpec()
	wide.PoolWorkers = 4
	concurrent, _ := drainFaulty(t, wide)

	for i := range fresh {
		fresh[i].Reused = false
		warm[i].Reused = false
		concurrent[i].Reused = false
		if fresh[i].Scenario == "" {
			t.Fatalf("job %d result does not name its scenario", i)
		}
	}
	if !reflect.DeepEqual(fresh, warm) {
		t.Errorf("faulty reused-network drain diverged from fresh-network drain")
	}
	if !reflect.DeepEqual(fresh, concurrent) {
		t.Errorf("faulty pool=4 drain diverged from sequential drain")
	}
}

// TestJobsScenarioTopologyMismatch: a scenario naming a node a small graph
// does not have fails that run (Result.Err), not the drain.
func TestJobsScenarioTopologyMismatch(t *testing.T) {
	spec := JobSpec{
		Protocols:   []string{"domset"},
		Graphs:      []GraphSpec{{Family: "torus", N: 16}},
		Scenario:    "crash=5000@1",
		PoolWorkers: 1,
	}
	results, sum := drainFaulty(t, spec)
	if len(results) != 1 || sum.Errors != 1 {
		t.Fatalf("got %d results, %d errors, want 1 and 1", len(results), sum.Errors)
	}
	if results[0].Err == "" {
		t.Error("topology-mismatched scenario did not surface in Result.Err")
	}
}

// TestJobsFaultyScenarioSharedPoolRace drives a faulty-scenario queue over
// the shared pool — the CONGEST_WORKERS=4 race CI leg runs this with every
// job's network on the parallel engine, making it the standing data-race
// check on the fault path (applyFaults runs on the coordinator between
// worker waves; this test would trip -race if that ever stopped being true).
func TestJobsFaultyScenarioSharedPoolRace(t *testing.T) {
	spec := faultySpec()
	spec.PoolWorkers = 4
	results, sum := drainFaulty(t, spec)
	if want := 12; len(results) != want {
		t.Fatalf("expected %d runs, got %d", want, len(results))
	}
	if sum.RunsPerSec <= 0 {
		t.Errorf("summary runs/sec = %v, want > 0", sum.RunsPerSec)
	}
}
