package bench

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// jobs_test.go covers the multi-run serving mode: spec parsing, the JSONL
// field-stability contract, bit-identical results at every pool width and
// cache setting (the serving-side determinism proof), and the shared-pool
// race leg that the CONGEST_WORKERS=4 CI matrix drives through the parallel
// engine.

func TestParseJobSpec(t *testing.T) {
	spec, err := ParseJobSpec("protocols=mst,domset; graphs=torus:400,random:120; seeds=1,2,5-8")
	if err != nil {
		t.Fatal(err)
	}
	want := JobSpec{
		Protocols: []string{"mst", "domset"},
		Graphs:    []GraphSpec{{Family: "torus", N: 400}, {Family: "random", N: 120}},
		Seeds:     []int64{1, 2, 5, 6, 7, 8},
	}
	if !reflect.DeepEqual(spec, want) {
		t.Errorf("parsed %+v, want %+v", spec, want)
	}

	// protocols=all and a defaulted seeds clause expand at Expand time.
	spec, err = ParseJobSpec("protocols=all;graphs=grid:64")
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(JobProtocolNames()); len(jobs) != want {
		t.Errorf("all-protocols single-graph single-seed spec expanded to %d jobs, want %d", len(jobs), want)
	}
	for i, j := range jobs {
		if j.Index != i || j.Seed != 1 {
			t.Errorf("job %d: index %d seed %d, want index %d seed 1", i, j.Index, j.Seed, i)
		}
	}

	for _, bad := range []string{
		"",                           // no graphs
		"graphs=torus",               // missing :n
		"graphs=torus:x",             // bad size
		"graphs=torus:400;seeds=9-2", // descending range
		"graphs=torus:400;frobs=1",   // unknown key
		"protocols",                  // not key=value
	} {
		if _, err := ParseJobSpec(bad); err == nil {
			t.Errorf("ParseJobSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestExpandRejectsUnknownNames(t *testing.T) {
	if _, err := (JobSpec{Graphs: []GraphSpec{{Family: "moebius", N: 100}}}).Expand(); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := (JobSpec{Protocols: []string{"frob"}, Graphs: []GraphSpec{{Family: "torus", N: 100}}}).Expand(); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := (JobSpec{Graphs: []GraphSpec{{Family: "torus", N: 0}}}).Expand(); err == nil {
		t.Error("non-positive size accepted")
	}
}

// TestJobsJSONLFieldStability golden-pins the Result encoding: pabench
// -jobs streams one such line per run, and downstream consumers key on the
// exact field names and order. Changing this encoding is an output-format
// break and must update this golden deliberately.
func TestJobsJSONLFieldStability(t *testing.T) {
	line, err := json.Marshal(Result{
		Job: 3, Protocol: "mst", Family: "torus", N: 400, Seed: 7,
		Reused: true, Rounds: 123, Messages: 4567,
		Output: "00000000deadbeef", MS: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"job":3,"protocol":"mst","family":"torus","n":400,"seed":7,"reused":true,"rounds":123,"messages":4567,"output":"00000000deadbeef","ms":1.5}`
	if string(line) != golden {
		t.Errorf("JSONL encoding drifted:\n got: %s\nwant: %s", line, golden)
	}
	// err is omitempty: successful runs must not carry an empty err field.
	withErr, err := json.Marshal(Result{Err: "budget"})
	if err != nil {
		t.Fatal(err)
	}
	const goldenErr = `{"job":0,"protocol":"","family":"","n":0,"seed":0,"reused":false,"rounds":0,"messages":0,"output":"","ms":0,"err":"budget"}`
	if string(withErr) != goldenErr {
		t.Errorf("JSONL error encoding drifted:\n got: %s\nwant: %s", withErr, goldenErr)
	}
}

// drainSpec runs a spec and returns its results in queue order with the
// wall-clock field zeroed — the deterministic projection two drains of the
// same spec must agree on bit for bit.
func drainSpec(t *testing.T, spec JobSpec) ([]Result, Summary) {
	t.Helper()
	var results []Result
	sum, err := RunJobs(spec, func(r Result) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != len(results) {
		t.Fatalf("summary counts %d runs, emitted %d", sum.Runs, len(results))
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Job < results[j].Job })
	for i := range results {
		results[i].MS = 0
		if results[i].Err != "" {
			t.Fatalf("job %d (%s/%s) failed: %s", results[i].Job, results[i].Protocol, results[i].Family, results[i].Err)
		}
	}
	return results, sum
}

// smallSpec is the shared deterministic fixture: two topologies, two seeds,
// a randomized protocol (domset — per-node PRNG streams) and a multi-phase
// one (verify), so both PRNG reuse and cost accounting are exercised.
func smallSpec() JobSpec {
	return JobSpec{
		Protocols: []string{"domset", "verify"},
		Graphs:    []GraphSpec{{Family: "torus", N: 36}, {Family: "random", N: 48}},
		Seeds:     []int64{1, 2},
	}
}

// TestJobsDeterministicAcrossPoolAndCache is the serving-side bit-identity
// proof: the same spec drained sequentially without reuse (pool=1,
// cache disabled — every run on a fresh network), sequentially with full
// reuse, and concurrently (pool=4) must produce identical Results — same
// digests, same Rounds/Messages — differing only in the reused flag and
// completion order.
func TestJobsDeterministicAcrossPoolAndCache(t *testing.T) {
	base := smallSpec()
	base.PoolWorkers = 1
	base.Cache = -1
	fresh, _ := drainSpec(t, base)

	reusing := smallSpec()
	reusing.PoolWorkers = 1
	warm, sum := drainSpec(t, reusing)
	if sum.Reused == 0 {
		t.Error("sequential drain with adjacent same-topology jobs reused no network")
	}

	wide := smallSpec()
	wide.PoolWorkers = 4
	concurrent, _ := drainSpec(t, wide)

	for i := range fresh {
		fresh[i].Reused = false
		warm[i].Reused = false
		concurrent[i].Reused = false
	}
	if !reflect.DeepEqual(fresh, warm) {
		t.Errorf("reused-network drain diverged from fresh-network drain")
	}
	if !reflect.DeepEqual(fresh, concurrent) {
		t.Errorf("pool=4 drain diverged from sequential drain")
	}
}

// TestJobsCacheBound: a cache of capacity 1 across two alternating
// topologies still completes with identical results — eviction never
// affects correctness, only hit rate.
func TestJobsCacheBound(t *testing.T) {
	spec := smallSpec()
	spec.PoolWorkers = 1
	spec.Cache = 1
	bounded, _ := drainSpec(t, spec)

	ref := smallSpec()
	ref.PoolWorkers = 1
	ref.Cache = -1
	fresh, _ := drainSpec(t, ref)
	for i := range fresh {
		fresh[i].Reused = false
		bounded[i].Reused = false
	}
	if !reflect.DeepEqual(fresh, bounded) {
		t.Error("cache-bounded drain diverged from fresh drain")
	}
}

// TestJobsSharedPoolRace drives concurrent jobs on distinct networks over
// the shared pool — under `go test -race` (and the CONGEST_WORKERS=4 CI
// leg, where every job's network additionally runs the parallel engine,
// nesting engine pools inside the serving pool) this is the standing data-
// race check on the serving path.
func TestJobsSharedPoolRace(t *testing.T) {
	spec := JobSpec{
		Protocols:   []string{"domset", "corefast-pa", "sssp"},
		Graphs:      []GraphSpec{{Family: "torus", N: 36}, {Family: "grid", N: 49}, {Family: "ladder", N: 40}},
		Seeds:       []int64{1, 2},
		PoolWorkers: 4,
	}
	results, sum := drainSpec(t, spec)
	if len(results) != 18 {
		t.Fatalf("expected 18 runs, got %d", len(results))
	}
	if sum.RunsPerSec <= 0 {
		t.Errorf("summary runs/sec = %v, want > 0", sum.RunsPerSec)
	}
}
