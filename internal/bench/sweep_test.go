package bench

import (
	"strings"
	"testing"
)

// TestScaleSweepSmallest runs the sweep capped at its smallest instance
// (n=10^4) so the measurement path stays exercised by the fast suite; the
// full n=10^6 march is interactive (cmd/pabench -sweep).
func TestScaleSweepSmallest(t *testing.T) {
	tab, err := ScaleSweep(7, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("got %d rows, want 1 (the 100x100 torus)", len(tab.Rows))
	}
	row := tab.Rows[0]
	if len(row) != len(tab.Headers) {
		t.Fatalf("row width %d != header width %d", len(row), len(tab.Headers))
	}
	if row[0] != "100x100" || row[1] != "10000" {
		t.Fatalf("unexpected instance row: %v", row)
	}
	// The storm is exactly stormRounds broadcasts over 2m half-edges:
	// a 100x100 torus has m = 2n = 20000 edges, so 10 * 40000 messages.
	wantMsgs := "400000"
	msgsCol := -1
	for i, h := range tab.Headers {
		if h == "msgs" {
			msgsCol = i
		}
	}
	if msgsCol < 0 {
		t.Fatalf("headers %v lack a msgs column", tab.Headers)
	}
	if row[msgsCol] != wantMsgs {
		t.Fatalf("storm messages %s, want %s", row[msgsCol], wantMsgs)
	}
	if !strings.Contains(tab.Format(), "SWEEP") {
		t.Fatal("formatted table lacks the SWEEP id")
	}
}

// TestScaleSweepBelowMinimumErrors pins the empty-sweep guard.
func TestScaleSweepBelowMinimumErrors(t *testing.T) {
	if _, err := ScaleSweep(7, 9_999); err == nil {
		t.Fatal("ScaleSweep below the smallest instance did not error")
	}
}
