package bench

import (
	"strconv"
	"strings"
	"testing"
)

// col returns the index of a named sweep header, fatally if absent.
func col(t *testing.T, headers []string, name string) int {
	t.Helper()
	for i, h := range headers {
		if h == name {
			return i
		}
	}
	t.Fatalf("headers %v lack a %q column", headers, name)
	return -1
}

// TestScaleSweepSmallest runs the sweep capped at its smallest instance
// (n=10^4 per family) so the measurement path stays exercised by the fast
// suite; the full n=10^6 march is interactive (cmd/pabench -sweep).
func TestScaleSweepSmallest(t *testing.T) {
	tab, err := ScaleSweep(7, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(sweepFamilies) {
		t.Fatalf("got %d rows, want one per family (%d)", len(tab.Rows), len(sweepFamilies))
	}
	rows := map[string][]string{}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Headers) {
			t.Fatalf("row width %d != header width %d: %v", len(row), len(tab.Headers), row)
		}
		rows[row[0]] = row
	}
	msgsCol := col(t, tab.Headers, "msgs")
	awakeCol := col(t, tab.Headers, "awake%")
	balCol := col(t, tab.Headers, "bal@4")
	nodebalCol := col(t, tab.Headers, "nodebal@4")

	torus := rows["torus"]
	if torus == nil || torus[1] != "10000" {
		t.Fatalf("missing or wrong torus row: %v", torus)
	}
	// The storm is exactly stormRounds broadcasts over 2m half-edges:
	// a 100x100 torus has m = 2n = 20000 edges, so 10 * 40000 messages.
	if torus[msgsCol] != "400000" {
		t.Fatalf("torus storm messages %s, want 400000", torus[msgsCol])
	}
	// Uniform degree: both sharding schemes are near-perfect.
	if torus[balCol] != "1.00x" || torus[nodebalCol] != "1.00x" {
		t.Fatalf("torus balance columns %s/%s, want 1.00x/1.00x", torus[balCol], torus[nodebalCol])
	}
	// The storm steps every node in every broadcast round; only the final
	// quiescence-detection rounds idle, so mean awake% sits in (80, 100].
	awake, err := strconv.ParseFloat(torus[awakeCol], 64)
	if err != nil {
		t.Fatal(err)
	}
	if awake <= 80 || awake > 100 {
		t.Fatalf("torus storm awake%% = %v, want (80, 100]", awake)
	}

	star := rows["star"]
	if star == nil {
		t.Fatal("missing star row")
	}
	// The hub is an indivisible half of all edge mass: the edge-balanced
	// column sits at the single-node floor (flagged '!'), while the legacy
	// node-count split concentrates hub + a quarter of the leaves on one
	// worker and reads worse.
	if !strings.HasSuffix(star[balCol], "!") {
		t.Fatalf("star bal %s lacks the indivisible-floor flag", star[balCol])
	}
	balRatio, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(star[balCol], "!"), "x"), 64)
	if err != nil {
		t.Fatal(err)
	}
	nodeRatio, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(star[nodebalCol], "!"), "x"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if balRatio >= nodeRatio {
		t.Fatalf("star: edge-balanced ratio %.2f not better than node-range %.2f", balRatio, nodeRatio)
	}

	if rows["powerlaw"] == nil {
		t.Fatal("missing powerlaw row")
	}
	if !strings.Contains(tab.Format(), "SWEEP") {
		t.Fatal("formatted table lacks the SWEEP id")
	}
}

// TestScaleSweepBelowMinimumErrors pins the empty-sweep guard.
func TestScaleSweepBelowMinimumErrors(t *testing.T) {
	if _, err := ScaleSweep(7, 9_999); err == nil {
		t.Fatal("ScaleSweep below the smallest instance did not error")
	}
}
