package bench

import (
	"reflect"
	"testing"
)

// FuzzParseJobSpec fuzzes the jobs spec grammar: no input may panic the
// parser, every accepted spec must Expand without panicking (Expand may
// still reject unknown names — that is an error, not a crash), and a
// re-parse of the same input must be deterministic.
func FuzzParseJobSpec(f *testing.F) {
	for _, seed := range []string{
		"graphs=torus:400",
		"protocols=mst,domset;graphs=torus:400,random:120;seeds=1,2,5-8",
		"protocols=all;graphs=grid:64",
		"graphs=torus:36;scenario=crash=7@2+seed-faults=0.01",
		"graphs=torus:36;scenario=crash=7@2+drop=0-1@5+fault-seed=-3",
		"graphs=;seeds=--",
		"graphs=torus:400;seeds=9-2",
		"scenario=;graphs=a:1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseJobSpec(s)
		if err != nil {
			return
		}
		if _, err := spec.Expand(); err != nil {
			_ = err // unknown names are a legitimate rejection
		}
		again, err := ParseJobSpec(s)
		if err != nil {
			t.Fatalf("accepted spec %q failed a second parse: %v", s, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("re-parse of %q is not deterministic: %+v vs %+v", s, spec, again)
		}
	})
}
