package bench

import (
	"fmt"
	"math/rand"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/domset"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/mincut"
	"shortcutpa/internal/mst"
	"shortcutpa/internal/part"
	"shortcutpa/internal/sssp"
	"shortcutpa/internal/verify"
)

// Experiments lists every runnable experiment by ID (the DESIGN.md index).
func Experiments() map[string]func(seed int64) (*Table, error) {
	return map[string]func(seed int64) (*Table, error){
		"T1":  Table1,
		"T2":  Table2,
		"F2":  Figure2,
		"C13": MSTExperiment,
		"C14": MinCutExperiment,
		"C15": SSSPExperiment,
		"A1":  VerifyExperiment,
		"A3":  DomSetExperiment,
		"ABL": Ablations,
	}
}

// Table1 measures the constructed shortcut's congestion and block parameter
// per graph family (paper Table 1 gives the existential bounds).
func Table1(seed int64) (*Table, error) {
	t := &Table{
		ID:      "T1",
		Title:   "shortcut quality per family (paper Table 1: bounds on b, c)",
		Headers: []string{"family", "instance", "n", "m", "D", "paper b", "meas b", "paper c", "meas c", "budget R"},
		Notes: []string{
			"measured b, c are properties of the shortcut the doubling-budget construction settles on",
			"paper values are existential bounds for the best shortcut, up to polylog factors",
		},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, fam := range families() {
		g, desc := fam.build(2, rng)
		parts := hardPartition(g, rng)
		if fam.name == "bad-example" {
			parts = graph.GridStarRowParts(8, 48)
		} else {
			// Plain family instances admit covered parts (their deep parts
			// still fold within D); apex them so parts genuinely exceed D,
			// as the paper's own lower-bound instance does.
			g, parts = deepApexInstance(g, 24)
			desc += "+apex"
		}
		e, in, err := setupInstance(g, parts, seed+7, core.Randomized)
		if err != nil {
			return nil, err
		}
		inf, err := e.BuildInfra(in)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fam.name, desc, itoaInt(g.N()), itoaInt(g.M()), itoa(e.D),
			fam.paperB, itoaInt(inf.SC.BlockParameter()),
			fam.paperC, itoaInt(inf.SC.Congestion()),
			itoa(inf.Budget),
		})
	}
	return t, nil
}

// Table2 measures PA round complexity per family for both modes (paper
// Table 2).
func Table2(seed int64) (*Table, error) {
	t := &Table{
		ID:      "T2",
		Title:   "PA rounds per family, randomized vs deterministic (paper Table 2)",
		Headers: []string{"family", "instance", "n", "D", "paper", "rand rounds", "det rounds", "rand msgs/m", "det msgs/m"},
		Notes: []string{
			"rounds/messages cover one full Solve including infrastructure construction",
			"msgs/m is the message bill divided by the edge count: the ~O(m) claim",
		},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, fam := range families() {
		g, desc := fam.build(2, rng)
		parts := hardPartition(g, rng)
		if fam.name == "bad-example" {
			parts = graph.GridStarRowParts(8, 48)
		} else {
			g, parts = deepApexInstance(g, 24)
			desc += "+apex"
		}
		var cells []string
		cells = append(cells, fam.name, desc, itoaInt(g.N()), "", fam.paperRT)
		var msgRatios []string
		for _, mode := range []core.Mode{core.Randomized, core.Deterministic} {
			e, in, err := setupInstance(g, parts, seed+11, mode)
			if err != nil {
				return nil, err
			}
			cells[3] = itoa(e.D)
			e.Net.ResetMetrics()
			vals := make([]congest.Val, g.N())
			for v := range vals {
				vals[v] = congest.Val{A: int64(v)}
			}
			if _, err := e.Solve(in, vals, congest.SumPair); err != nil {
				return nil, err
			}
			cells = append(cells, itoa(e.Net.Total().Rounds))
			msgRatios = append(msgRatios, ratio(e.Net.Total().Messages, int64(g.M())))
		}
		cells = append(cells, msgRatios...)
		t.Rows = append(t.Rows, cells)
	}
	return t, nil
}

// Figure2 reproduces the Section 3.1 message lower-bound demonstration: on
// the grid-star instance (tree rooted at the apex), per-aggregation
// messages of the prior-work block-push flow (Θ(nD)) against the sub-part
// algorithm (Θ̃(n)), sweeping D.
func Figure2(seed int64) (*Table, error) {
	t := &Table{
		ID:      "F2",
		Title:   "grid-star per-call messages: block-push (prior work) vs sub-parts (paper Fig. 2 / Sec. 3.1)",
		Headers: []string{"rows (~D)", "n", "m", "push msgs", "push/n", "ours msgs", "ours/n", "push/ours"},
		Notes: []string{
			"push/n grows linearly with D (the Omega(nD) bound); ours/n stays near-flat (the O~(n) bound)",
			"infrastructure construction excluded: the paper amortizes it across aggregations",
		},
	}
	const colsFactor = 8
	for _, rows := range []int{6, 12, 24, 32} {
		cols := colsFactor * rows
		g := graph.GridStar(rows, cols)
		parts := graph.GridStarRowParts(rows, cols)
		var push, ours int64
		for _, blockPush := range []bool{true, false} {
			net := newNetwork(g, seed+int64(rows))
			e, err := core.NewEngineAt(net, core.Randomized, g.N()-1)
			if err != nil {
				return nil, err
			}
			in, err := part.FromDense(net, parts)
			if err != nil {
				return nil, err
			}
			if err := part.ElectLeaders(net, in, int64(16*g.N()+4096)); err != nil {
				return nil, err
			}
			vals := make([]congest.Val, g.N())
			for v := range vals {
				vals[v] = congest.Val{A: int64(v)}
			}
			var inf *core.Infra
			if blockPush {
				inf, err = e.BuildInfraOpts(in, core.InfraOptions{SingletonSubParts: true})
			} else {
				inf, err = e.BuildInfra(in)
			}
			if err != nil {
				return nil, err
			}
			e.Net.ResetMetrics()
			if blockPush {
				_, err = e.BlockPushAggregate(inf, vals, congest.SumPair)
			} else {
				_, err = e.SolveWithInfra(inf, vals, congest.SumPair)
			}
			if err != nil {
				return nil, err
			}
			if blockPush {
				push = e.Net.Total().Messages
			} else {
				ours = e.Net.Total().Messages
			}
		}
		n := int64(g.N())
		t.Rows = append(t.Rows, []string{
			itoaInt(rows), itoa(n), itoaInt(g.M()),
			itoa(push), ratio(push, n),
			itoa(ours), ratio(ours, n),
			ratio(push, ours),
		})
	}
	return t, nil
}

// MSTExperiment measures Corollary 1.3: PA-MST vs the no-shortcut baseline.
func MSTExperiment(seed int64) (*Table, error) {
	t := &Table{
		ID:      "C13",
		Title:   "MST (Corollary 1.3): Boruvka-over-PA vs no-shortcut baseline",
		Headers: []string{"instance", "n", "m", "D", "phases", "PA rounds", "PA msgs/m", "base rounds", "base msgs/m", "correct"},
		Notes:   []string{"correct: distributed tree equals the unique (weight, id)-lexicographic MST (Kruskal oracle)"},
	}
	rng := rand.New(rand.NewSource(seed))
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"gridstar 8x64", graph.RandomizeWeights(graph.GridStar(8, 64), 100, rng)},
		{"grid 14x14", graph.RandomizeWeights(graph.Grid(14, 14), 100, rng)},
		{"G(n=160)", graph.RandomizeWeights(graph.RandomConnected(160, 0.025, rng), 100, rng)},
	}
	for _, inst := range instances {
		var (
			diam, phases                           string
			paRounds, paMsgs, baseRounds, baseMsgs string
		)
		correct := true
		for _, baseline := range []bool{false, true} {
			net := newNetwork(inst.g, seed+3)
			e, err := core.NewEngine(net, core.Randomized)
			if err != nil {
				return nil, err
			}
			diam = itoa(e.D)
			e.Net.ResetMetrics()
			res, err := mst.Run(e, mst.Options{Baseline: baseline})
			if err != nil {
				return nil, err
			}
			if res.Weight != inst.g.MSTWeight() {
				correct = false
			}
			rounds := itoa(e.Net.Total().Rounds)
			msgs := ratio(e.Net.Total().Messages, int64(inst.g.M()))
			if baseline {
				baseRounds, baseMsgs = rounds, msgs
			} else {
				phases = itoaInt(res.Phases)
				paRounds, paMsgs = rounds, msgs
			}
		}
		t.Rows = append(t.Rows, []string{
			inst.name, itoaInt(inst.g.N()), itoaInt(inst.g.M()), diam, phases,
			paRounds, paMsgs, baseRounds, baseMsgs, fmt.Sprintf("%v", correct),
		})
	}
	return t, nil
}

// MinCutExperiment measures Corollary 1.4: tree-packing approximation
// quality vs Stoer-Wagner.
func MinCutExperiment(seed int64) (*Table, error) {
	t := &Table{
		ID:      "C14",
		Title:   "approximate min-cut (Corollary 1.4): tree packing vs Stoer-Wagner",
		Headers: []string{"instance", "n", "trees", "found", "exact", "ratio", "rounds", "msgs/m"},
	}
	rng := rand.New(rand.NewSource(seed))
	instances := []struct {
		name  string
		g     *graph.Graph
		trees int
	}{
		{"barbell", barbell(8, 4), 4},
		{"G(n=28)", graph.RandomizeWeights(graph.RandomConnected(28, 0.18, rng), 12, rng), 8},
		{"grid 5x6", graph.RandomizeWeights(graph.Grid(5, 6), 12, rng), 8},
	}
	for _, inst := range instances {
		net := newNetwork(inst.g, seed+5)
		e, err := core.NewEngine(net, core.Randomized)
		if err != nil {
			return nil, err
		}
		e.Net.ResetMetrics()
		res, err := mincut.Approx(e, inst.trees)
		if err != nil {
			return nil, err
		}
		exact, _ := inst.g.StoerWagnerMinCut()
		t.Rows = append(t.Rows, []string{
			inst.name, itoaInt(inst.g.N()), itoaInt(inst.trees),
			itoa(int64(res.Weight)), itoa(int64(exact)), ftoa(res.Ratio(exact)),
			itoa(e.Net.Total().Rounds), ratio(e.Net.Total().Messages, int64(inst.g.M())),
		})
	}
	return t, nil
}

func barbell(k int, bridgeW graph.Weight) *graph.Graph {
	edges := make([]graph.Edge, 0, k*(k-1)+1)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, graph.Edge{U: u, V: v, W: 10})
			edges = append(edges, graph.Edge{U: k + u, V: k + v, W: 10})
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: k, W: bridgeW})
	return graph.MustNew(2*k, edges)
}

// SSSPExperiment measures Corollary 1.5: approximation quality and
// meta-rounds across beta, with exact Bellman-Ford as the baseline.
func SSSPExperiment(seed int64) (*Table, error) {
	t := &Table{
		ID:      "C15",
		Title:   "approximate SSSP (Corollary 1.5): beta tradeoff vs Bellman-Ford",
		Headers: []string{"instance", "beta", "meta-rounds", "max ratio", "rounds", "BF rounds"},
		Notes: []string{
			"max ratio: worst node's estimate / true distance (estimates are upper bounds by construction)",
			"the beta knob trades meta-rounds against quality (the Corollary 1.5 tradeoff);",
			"absolute rounds exceed Bellman-Ford here because a path has D = Theta(n): PA's win regime needs D << shortest-path hop length",
		},
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomizeWeights(graph.Path(220), 40, rng)
	exact := g.Dijkstra(0)
	netBF := newNetwork(g, seed+9)
	eBF, err := core.NewEngine(netBF, core.Randomized)
	if err != nil {
		return nil, err
	}
	eBF.Net.ResetMetrics()
	if _, err := sssp.BellmanFord(eBF, 0); err != nil {
		return nil, err
	}
	bfRounds := eBF.Net.Total().Rounds
	for _, beta := range []float64{0, 0.25, 0.5, 1.0} {
		net := newNetwork(g, seed+9)
		e, err := core.NewEngine(net, core.Randomized)
		if err != nil {
			return nil, err
		}
		e.Net.ResetMetrics()
		res, err := sssp.Approx(e, 0, beta)
		if err != nil {
			return nil, err
		}
		worst := 1.0
		for v := 0; v < g.N(); v++ {
			if exact[v] > 0 {
				if r := float64(res.Dist[v]) / float64(exact[v]); r > worst {
					worst = r
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			"path n=220 w<=40", ftoa(beta), itoaInt(res.MetaRounds), ftoa(worst),
			itoa(e.Net.Total().Rounds), itoa(bfRounds),
		})
	}
	return t, nil
}

// VerifyExperiment measures Corollary A.1: the verification suite's costs.
func VerifyExperiment(seed int64) (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   "graph verification (Corollary A.1): labeling + verifiers",
		Headers: []string{"check", "n", "m", "result", "rounds", "msgs/m"},
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomizeWeights(graph.RandomConnected(120, 0.035, rng), 30, rng)
	keep := make([]bool, g.M())
	for _, i := range g.KruskalMST() {
		keep[i] = true
	}
	run := func(name string, f func(e *core.Engine) (bool, error)) error {
		net := newNetwork(g, seed+13)
		e, err := core.NewEngine(net, core.Randomized)
		if err != nil {
			return err
		}
		e.Net.ResetMetrics()
		ok, err := f(e)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			name, itoaInt(g.N()), itoaInt(g.M()), fmt.Sprintf("%v", ok),
			itoa(e.Net.Total().Rounds), ratio(e.Net.Total().Messages, int64(g.M())),
		})
		return nil
	}
	if err := run("spanning-tree(MST)", func(e *core.Engine) (bool, error) {
		h := verify.SubgraphFromEdges(e, keep)
		lab, err := verify.ComponentLabels(e, h)
		if err != nil {
			return false, err
		}
		return verify.SpanningTree(e, h, lab)
	}); err != nil {
		return nil, err
	}
	if err := run("bipartite(G)", func(e *core.Engine) (bool, error) {
		all := make([]bool, g.M())
		for i := range all {
			all[i] = true
		}
		h := verify.SubgraphFromEdges(e, all)
		lab, err := verify.ComponentLabels(e, h)
		if err != nil {
			return false, err
		}
		return verify.Bipartite(e, h, lab)
	}); err != nil {
		return nil, err
	}
	if err := run("cut(2 tree edges)", func(e *core.Engine) (bool, error) {
		cut := make([]bool, g.M())
		cnt := 0
		for i := range keep {
			if keep[i] && cnt < 2 {
				cut[i] = true
				cnt++
			}
		}
		return verify.CutDisconnects(e, verify.SubgraphFromEdges(e, cut))
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// DomSetExperiment measures Corollary A.3: k-dominating set sizes.
func DomSetExperiment(seed int64) (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "k-dominating set (Corollary A.3): size vs n/k",
		Headers: []string{"instance", "n", "k", "size", "n/k", "size/(n/k)", "rounds", "msgs/m"},
		Notes:   []string{"sampled construction carries the Lemma 5.1 log n factor over the paper's O(n/k)"},
	}
	g := graph.Path(600)
	for _, k := range []int64{16, 32, 64, 128} {
		net := newNetwork(g, seed+k)
		e, err := core.NewEngine(net, core.Randomized)
		if err != nil {
			return nil, err
		}
		e.Net.ResetMetrics()
		res, err := domset.KDominatingSet(e, k)
		if err != nil {
			return nil, err
		}
		nk := float64(g.N()) / float64(k)
		t.Rows = append(t.Rows, []string{
			"path n=600", itoaInt(g.N()), itoa(k), itoaInt(res.Size),
			ftoa(nk), ftoa(float64(res.Size) / nk),
			itoa(e.Net.Total().Rounds), ratio(e.Net.Total().Messages, int64(g.M())),
		})
	}
	return t, nil
}

// Ablations measures the Section 3.2 design choices: full machinery vs
// sub-parts disabled vs shortcuts disabled, per-solve costs on the
// grid-star instance.
func Ablations(seed int64) (*Table, error) {
	t := &Table{
		ID:      "ABL",
		Title:   "ablations on grid-star 10x60 row parts (Section 3.2 design choices)",
		Headers: []string{"variant", "rounds", "messages", "msgs/m"},
		Notes: []string{
			"no-subparts floods blocks from every node (the Section 3.1 strawman, router flavor)",
			"no-shortcut aggregates on intra-part trees only (round-suboptimal on deep parts)",
		},
	}
	const rows, cols = 10, 60
	g := graph.GridStar(rows, cols)
	parts := graph.GridStarRowParts(rows, cols)
	variants := []struct {
		name string
		opts core.InfraOptions
	}{
		{"full (paper)", core.InfraOptions{}},
		{"no-subparts", core.InfraOptions{SingletonSubParts: true}},
		{"no-shortcut", core.InfraOptions{NoShortcut: true}},
	}
	for _, variant := range variants {
		e, in, err := setupInstance(g, parts, seed+17, core.Randomized)
		if err != nil {
			return nil, err
		}
		vals := make([]congest.Val, g.N())
		for v := range vals {
			vals[v] = congest.Val{A: int64(v)}
		}
		inf, err := e.BuildInfraOpts(in, variant.opts)
		if err != nil {
			return nil, err
		}
		e.Net.ResetMetrics()
		if _, err := e.SolveWithInfra(inf, vals, congest.SumPair); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			variant.name, itoa(e.Net.Total().Rounds), itoa(e.Net.Total().Messages),
			ratio(e.Net.Total().Messages, int64(g.M())),
		})
	}
	return t, nil
}
