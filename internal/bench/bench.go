package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
)

// workers is the engine parallelism every experiment network uses
// (0 = sequential). Results are bit-identical at any setting (see
// internal/congest/README.md); it only changes wall-clock time.
var workers int

// SetWorkers configures the engine parallelism for all subsequently built
// experiment networks (cmd/pabench's -workers flag lands here).
func SetWorkers(k int) { workers = k }

// newNetwork builds an experiment network with the configured parallelism.
// The worker count is passed to construction itself, so NewNetwork's slot
// geometry fill shards across the pool at large n (not just the rounds).
func newNetwork(g *graph.Graph, seed int64) *congest.Network {
	return congest.NewNetworkWorkers(g, seed, workers)
}

// Table is one experiment's output: a title, column headers, and rows.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// family is one graph family of Table 1 / Table 2 with the paper's claimed
// shortcut parameters.
type family struct {
	name    string
	build   func(scale int, rng *rand.Rand) (*graph.Graph, string)
	paperB  string
	paperC  string
	paperRT string // Table 2 randomized round claim
}

func families() []family {
	return []family{
		{
			name: "general",
			build: func(s int, rng *rand.Rand) (*graph.Graph, string) {
				n := 40 * s
				return graph.RandomConnected(n, 3.0/float64(n), rng), fmt.Sprintf("G(n=%d)", n)
			},
			paperB: "1", paperC: "sqrt(n)", paperRT: "~(D+sqrt n)",
		},
		{
			name: "planar",
			build: func(s int, rng *rand.Rand) (*graph.Graph, string) {
				side := 6 * s
				return graph.Grid(side, side), fmt.Sprintf("grid %dx%d", side, side)
			},
			paperB: "log D", paperC: "~D", paperRT: "~D",
		},
		{
			name: "genus-1",
			build: func(s int, rng *rand.Rand) (*graph.Graph, string) {
				side := 6 * s
				return graph.Torus(side, side), fmt.Sprintf("torus %dx%d", side, side)
			},
			paperB: "sqrt(g)", paperC: "~sqrt(g)D", paperRT: "~sqrt(g)D",
		},
		{
			name: "treewidth-2",
			build: func(s int, rng *rand.Rand) (*graph.Graph, string) {
				n := 50 * s
				return graph.KTree(n, 2, rng), fmt.Sprintf("2-tree n=%d", n)
			},
			paperB: "t", paperC: "~t", paperRT: "~tD",
		},
		{
			name: "pathwidth-2",
			build: func(s int, rng *rand.Rand) (*graph.Graph, string) {
				n := 60 * s
				return graph.Ladder(n), fmt.Sprintf("ladder n=%d", 2*n)
			},
			paperB: "p", paperC: "p", paperRT: "~pD",
		},
		{
			name: "bad-example",
			build: func(s int, rng *rand.Rand) (*graph.Graph, string) {
				rows, cols := 4*s, 24*s
				return graph.GridStar(rows, cols), fmt.Sprintf("gridstar %dx%d", rows, cols)
			},
			paperB: "1", paperC: "D", paperRT: "~D",
		},
	}
}

// hardPartition builds a PA instance that stresses shortcuts: connected
// parts several times deeper than the graph diameter (DeepPartition
// segments of ~6D nodes), the regime Theorem 1.2 is about.
func hardPartition(g *graph.Graph, rng *rand.Rand) []int {
	_ = rng
	return graph.DeepPartition(g, 6*g.Eccentricity(0))
}

// apexed adds a hub node adjacent to every stride-th node: diameter
// collapses to O(stride's reach) so DeepPartition parts become genuinely
// deeper than D — the same trick the paper's Figure 2 instance uses (an
// apex over the grid's top row). The apex gets its own part.
func apexed(g *graph.Graph, stride int) *graph.Graph {
	apex := g.N()
	b := graph.NewBuilder(apex+1, g.M()+(apex+stride-1)/stride)
	g.ForEdges(func(_ int, e graph.Edge) bool {
		b.AddEdge(e.U, e.V, e.W)
		return true
	})
	for v := 0; v < apex; v += stride {
		b.AddEdge(apex, v, 1)
	}
	return b.MustFinish()
}

// deepApexInstance: apex a family instance and stripe the base graph into
// parts far deeper than the collapsed diameter.
func deepApexInstance(g *graph.Graph, segLen int) (*graph.Graph, []int) {
	ag := apexed(g, 4)
	base := graph.DeepPartition(g, segLen)
	parts := make([]int, ag.N())
	copy(parts, base)
	apexPart := 0
	for _, p := range base {
		if p >= apexPart {
			apexPart = p + 1
		}
	}
	parts[ag.N()-1] = apexPart
	return ag, parts
}

// setupInstance wires a network + engine + partition with leaders.
func setupInstance(g *graph.Graph, parts []int, seed int64, mode core.Mode) (*core.Engine, *part.Info, error) {
	net := newNetwork(g, seed)
	e, err := core.NewEngine(net, mode)
	if err != nil {
		return nil, nil, err
	}
	in, err := part.FromDense(net, parts)
	if err != nil {
		return nil, nil, err
	}
	if err := part.ElectLeaders(net, in, int64(16*g.N()+4096)); err != nil {
		return nil, nil, err
	}
	return e, in, nil
}

func itoa(v int64) string     { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string   { return fmt.Sprintf("%.2f", v) }
func itoaInt(v int) string    { return fmt.Sprintf("%d", v) }
func ratio(a, b int64) string { return fmt.Sprintf("%.2f", float64(a)/float64(b)) }
