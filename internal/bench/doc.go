// Package bench defines the experiments that regenerate every table and
// figure of the paper's evaluation (see DESIGN.md Section 4 for the
// experiment index). Each experiment returns a Table that cmd/pabench
// prints and bench_test.go reports; EXPERIMENTS.md records paper-vs-
// measured for each. ScaleSweep (cmd/pabench -sweep) is the odd one out:
// it measures the simulator itself on tori up to n=10^6 rather than a
// paper claim.
//
// The package also hosts the multi-run serving mode (cmd/pabench -jobs,
// jobs.go): a JobSpec expands protocols x graph families x sizes x seeds
// into a work queue drained over one shared worker pool
// (congest.RunPool), streaming one JSON Result per completed run and
// reusing constructed networks across same-topology jobs through
// congest.Network.Reset — bit-identically, per the equivalence harness's
// reuse leg. BenchmarkJobThroughput measures runs/sec at pool saturation,
// the serving-mode trajectory make bench snapshots.
package bench
