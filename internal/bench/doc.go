// Package bench defines the experiments that regenerate every table and
// figure of the paper's evaluation (see DESIGN.md Section 4 for the
// experiment index). Each experiment returns a Table that cmd/pabench
// prints and bench_test.go reports; EXPERIMENTS.md records paper-vs-
// measured for each. ScaleSweep (cmd/pabench -sweep) is the odd one out:
// it measures the simulator itself on tori up to n=10^6 rather than a
// paper claim.
package bench
