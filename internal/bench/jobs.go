package bench

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/domset"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/mincut"
	"shortcutpa/internal/mst"
	"shortcutpa/internal/part"
	"shortcutpa/internal/sssp"
	"shortcutpa/internal/verify"
)

// jobs.go is the multi-run serving mode (cmd/pabench -jobs, and the library
// face a future paserve would mount): a JobSpec expands protocols × graph
// families × sizes × seeds into a work queue drained by one shared worker
// pool — the same job-generic pool the engine's round waves run on
// (congest.RunPool) — streaming one JSON-serializable Result per completed
// run as it finishes. Jobs on the same topology reuse a constructed
// congest.Network through Network.Reset() instead of rebuilding (the
// network's slot geometry and ~O(n+2m) engine buffers are topology- and
// seed-determined, so Reset is O(n)); an LRU of warm networks keyed by
// (family, n, seed) bounds the memory that reuse can pin. The reuse is
// bit-exact: internal/equivalence proves a Reset-reused network produces
// the same outputs and Rounds/Messages as a freshly constructed one.
//
// The serving-side measure is runs/sec at saturation (BenchmarkJobThroughput,
// snapshotted into BENCH_<pr>.json by make bench), not ms/run: the north
// star is many concurrent simulations, not one giant one.

// GraphSpec names one topology of a job spec: a generator family and a
// target node count. The builder may round n to the family's natural shape
// (a torus needs a square side); Result.N reports the actual count.
type GraphSpec struct {
	Family string
	N      int
}

// JobSpec is a multi-run serving request: the cross product of Protocols ×
// Graphs × Seeds becomes the work queue. Zero values select defaults —
// all protocols, seed 1, PoolWorkers = GOMAXPROCS, a warm-network cache of
// defaultJobCache entries.
type JobSpec struct {
	Protocols []string
	Graphs    []GraphSpec
	Seeds     []int64

	// PoolWorkers is how many queue workers drain jobs concurrently
	// (<= 0: GOMAXPROCS). Each worker runs whole jobs; engine parallelism
	// within one simulation is NetWorkers.
	PoolWorkers int
	// NetWorkers is the congest engine parallelism per simulation
	// (0: the CONGEST_WORKERS environment default). Results are
	// bit-identical at any setting.
	NetWorkers int
	// Cache is the warm-network LRU capacity (< 0: disable reuse;
	// 0: defaultJobCache).
	Cache int

	// Scenario is a fault scenario applied to every run, in the
	// congest.ParseScenario grammar (empty: fault-free). The scenario is
	// attached after each run's Reset, so a reused network replays the
	// identical fault sequence a fresh one would — faults change the
	// simulated execution, never the serving determinism.
	Scenario string
}

// defaultJobCache bounds how many warm networks the runner keeps between
// jobs when the spec does not say: enough for a seeds-major sweep to reuse
// every topology of a modest graphs list, small enough that n=10^5-scale
// networks do not pin gigabytes.
const defaultJobCache = 8

// Job is one expanded work item.
type Job struct {
	Index    int
	Protocol string
	Family   string
	N        int
	Seed     int64
}

// Result is one completed run, emitted as a single JSON line by pabench
// -jobs. The field set and order are a stable output contract
// (TestJobsJSONLFieldStability golden-pins the encoding): downstream
// consumers key on these names.
type Result struct {
	Job      int     `json:"job"`
	Protocol string  `json:"protocol"`
	Family   string  `json:"family"`
	N        int     `json:"n"`
	Seed     int64   `json:"seed"`
	Reused   bool    `json:"reused"`
	Rounds   int64   `json:"rounds"`
	Messages int64   `json:"messages"`
	Output   string  `json:"output"`
	MS       float64 `json:"ms"`
	Scenario string  `json:"scenario,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// Summary aggregates one RunJobs drain.
type Summary struct {
	Runs       int
	Errors     int
	Reused     int
	Elapsed    time.Duration
	RunsPerSec float64
}

// jobProtocols maps protocol names to runners over a prepared network. The
// runners mirror the equivalence harness's fixtures — engine setup included,
// so a job's Rounds/Messages account the whole protocol, exactly as the
// golden cost fixtures do.
var jobProtocols = map[string]func(net *congest.Network) (string, error){
	"corefast-pa": func(net *congest.Network) (string, error) {
		return runPA(net, core.Randomized, congest.MinPair)
	},
	"heavy-path-pa": func(net *congest.Network) (string, error) {
		return runPA(net, core.Deterministic, congest.MaxPair)
	},
	"leaderless-pa": func(net *congest.Network) (string, error) {
		g := net.Graph()
		e, err := core.NewEngine(net, core.Randomized)
		if err != nil {
			return "", err
		}
		in, err := part.FromDense(net, graph.DeepPartition(g, 4*g.Eccentricity(0)))
		if err != nil {
			return "", err
		}
		res, err := e.SolveLeaderless(in, jobVals(net), congest.SumPair)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%v", res.Values), nil
	},
	"mst": func(net *congest.Network) (string, error) {
		e, err := core.NewEngine(net, core.Randomized)
		if err != nil {
			return "", err
		}
		res, err := mst.Run(e, mst.Options{})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%v w=%d phases=%d", res.InMST, res.Weight, res.Phases), nil
	},
	"sssp": func(net *congest.Network) (string, error) {
		e, err := core.NewEngine(net, core.Randomized)
		if err != nil {
			return "", err
		}
		approx, err := sssp.Approx(e, 0, 0.5)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%v meta=%d", approx.Dist, approx.MetaRounds), nil
	},
	"mincut": func(net *congest.Network) (string, error) {
		e, err := core.NewEngine(net, core.Randomized)
		if err != nil {
			return "", err
		}
		res, err := mincut.Approx(e, 3)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%v w=%d tree=%d", res.Side, res.Weight, res.BestTree), nil
	},
	"verify": func(net *congest.Network) (string, error) {
		g := net.Graph()
		e, err := core.NewEngine(net, core.Randomized)
		if err != nil {
			return "", err
		}
		keep := make([]bool, g.M())
		for i := range keep {
			keep[i] = i%3 != 0
		}
		h := verify.SubgraphFromEdges(e, keep)
		lab, err := verify.ComponentLabels(e, h)
		if err != nil {
			return "", err
		}
		conn, err := verify.Connected(e, lab)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%v conn=%v", lab.Label, conn), nil
	},
	"domset": func(net *congest.Network) (string, error) {
		e, err := core.NewEngine(net, core.Randomized)
		if err != nil {
			return "", err
		}
		res, err := domset.KDominatingSet(e, 3)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%v size=%d", res.IsCenter, res.Size), nil
	},
}

// runPA is the shared PA fixture: engine + deep partition + leaders + Solve.
func runPA(net *congest.Network, mode core.Mode, f congest.Combine) (string, error) {
	g := net.Graph()
	e, err := core.NewEngine(net, mode)
	if err != nil {
		return "", err
	}
	in, err := part.FromDense(net, graph.DeepPartition(g, 6*g.Eccentricity(0)))
	if err != nil {
		return "", err
	}
	if err := part.ElectLeaders(net, in, int64(16*g.N()+4096)); err != nil {
		return "", err
	}
	res, err := e.Solve(in, jobVals(net), f)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%v", res.Values), nil
}

// jobVals is the canonical PA input: each node contributes (ID, index).
func jobVals(net *congest.Network) []congest.Val {
	vals := make([]congest.Val, net.N())
	for v := range vals {
		vals[v] = congest.Val{A: net.ID(v), B: int64(v)}
	}
	return vals
}

// jobFamilies maps family names to graph builders. Builders are pure in
// (n, seed) — the property the warm-network cache key relies on.
var jobFamilies = map[string]func(n int, seed int64) *graph.Graph{
	"torus": func(n int, _ int64) *graph.Graph {
		side := squareSide(n)
		return graph.Torus(side, side)
	},
	"grid": func(n int, _ int64) *graph.Graph {
		side := squareSide(n)
		return graph.Grid(side, side)
	},
	"ladder": func(n int, _ int64) *graph.Graph {
		return graph.Ladder(max(n/2, 2))
	},
	"gridstar": func(n int, _ int64) *graph.Graph {
		rows := max(2, squareSide(n/6))
		return graph.GridStar(rows, 6*rows)
	},
	"random": func(n int, seed int64) *graph.Graph {
		n = max(n, 8)
		rng := rand.New(rand.NewSource(seed))
		return graph.RandomizeWeights(graph.RandomConnected(n, 3.0/float64(n), rng), 100, rng)
	},
	// The skewed families: hub nodes carrying a constant fraction of all
	// edges, the regime the edge-balanced shard boundaries exist for.
	"star": func(n int, _ int64) *graph.Graph {
		return graph.Star(max(n, 2))
	},
	"powerlaw": func(n int, seed int64) *graph.Graph {
		n = max(n, 8)
		rng := rand.New(rand.NewSource(seed))
		return graph.RandomizeWeights(graph.PowerLaw(n, 4, 2.5, rng), 100, rng)
	},
	"prefattach": func(n int, seed int64) *graph.Graph {
		n = max(n, 8)
		rng := rand.New(rand.NewSource(seed))
		return graph.RandomizeWeights(graph.PrefAttach(n, 3, rng), 100, rng)
	},
}

// squareSide rounds a target node count to the nearest square's side, >= 2.
func squareSide(n int) int {
	return max(2, int(math.Round(math.Sqrt(float64(max(n, 4))))))
}

// JobProtocolNames returns the protocol registry's names, sorted.
func JobProtocolNames() []string { return sortedKeys(jobProtocols) }

// JobFamilyNames returns the graph family registry's names, sorted.
func JobFamilyNames() []string { return sortedKeys(jobFamilies) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Expand flattens the spec's cross product into the work queue, validating
// every name. Jobs are ordered topology-major — all protocols of one
// (family, n, seed) are adjacent — so a sequential drain reuses each warm
// network maximally; concurrent workers still reuse whenever a warm network
// is checked in before the next same-topology job starts.
func (s JobSpec) Expand() ([]Job, error) {
	protocols := s.Protocols
	if len(protocols) == 0 {
		protocols = JobProtocolNames()
	}
	for _, p := range protocols {
		if _, ok := jobProtocols[p]; !ok {
			return nil, fmt.Errorf("unknown protocol %q (have: %s)", p, strings.Join(JobProtocolNames(), ", "))
		}
	}
	if len(s.Graphs) == 0 {
		return nil, fmt.Errorf("job spec has no graphs")
	}
	for _, g := range s.Graphs {
		if _, ok := jobFamilies[g.Family]; !ok {
			return nil, fmt.Errorf("unknown graph family %q (have: %s)", g.Family, strings.Join(JobFamilyNames(), ", "))
		}
		if g.N <= 0 {
			return nil, fmt.Errorf("graph family %q has non-positive size %d", g.Family, g.N)
		}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	jobs := make([]Job, 0, len(s.Graphs)*len(seeds)*len(protocols))
	for _, g := range s.Graphs {
		for _, seed := range seeds {
			for _, p := range protocols {
				jobs = append(jobs, Job{Index: len(jobs), Protocol: p, Family: g.Family, N: g.N, Seed: seed})
			}
		}
	}
	return jobs, nil
}

// netKey identifies a reusable warm network: the builder is pure in
// (family, n, seed), and NewNetwork's IDs and PRNG origins are functions of
// the same seed, so equal keys mean bit-identical as-new networks.
type netKey struct {
	family string
	n      int
	seed   int64
}

// netCache is the warm-network LRU. A checked-out network leaves the cache
// entirely — exclusivity is ownership, not locking — and returns at
// check-in, evicting the least-recently-used entry when over capacity. Two
// workers racing on one key simply means the loser builds fresh (and the
// newer network replaces the older at check-in); correctness never depends
// on a hit.
type netCache struct {
	mu   sync.Mutex
	cap  int
	tick int64
	warm map[netKey]warmNet
}

type warmNet struct {
	net   *congest.Network
	stamp int64
}

func newNetCache(capacity int) *netCache {
	return &netCache{cap: capacity, warm: make(map[netKey]warmNet)}
}

// checkout removes and returns the warm network for key, or nil on a miss.
func (c *netCache) checkout(key netKey) *congest.Network {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.warm[key]
	if !ok {
		return nil
	}
	delete(c.warm, key)
	return w.net
}

// checkin returns a network to the cache, evicting LRU entries over cap.
func (c *netCache) checkin(key netKey, net *congest.Network) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	c.warm[key] = warmNet{net: net, stamp: c.tick}
	for len(c.warm) > c.cap {
		var oldest netKey
		var oldestStamp int64 = math.MaxInt64
		for k, w := range c.warm {
			if w.stamp < oldestStamp {
				oldest, oldestStamp = k, w.stamp
			}
		}
		delete(c.warm, oldest)
	}
}

// RunJobs drains the spec's work queue over one shared worker pool, calling
// emit (serialized — emit needs no locking of its own) for each completed
// run in completion order. Every Result is self-identifying via Job, so
// consumers needing queue order sort on it. Protocol errors are reported in
// Result.Err and counted, never fatal: a serving drain survives individual
// run failures.
func RunJobs(spec JobSpec, emit func(Result)) (Summary, error) {
	jobs, err := spec.Expand()
	if err != nil {
		return Summary{}, err
	}
	// The scenario grammar is parsed once here; topology validation (does
	// that node/edge exist?) happens per network in runJob, where a mismatch
	// becomes that run's Result.Err, not a fatal drain error.
	scenario, err := congest.ParseScenario(spec.Scenario)
	if err != nil {
		return Summary{}, fmt.Errorf("job spec scenario: %w", err)
	}
	scenarioStr := scenario.String()
	poolWorkers := spec.PoolWorkers
	if poolWorkers <= 0 {
		poolWorkers = runtime.GOMAXPROCS(0)
	}
	cacheCap := spec.Cache
	if cacheCap == 0 {
		cacheCap = defaultJobCache
	}
	cache := newNetCache(cacheCap)
	var next atomic.Int64
	var mu sync.Mutex
	var sum Summary
	start := time.Now()
	congest.RunPool(poolWorkers, func(int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(jobs) {
				return
			}
			res := runJob(jobs[i], cache, spec.NetWorkers, scenario, scenarioStr)
			mu.Lock()
			sum.Runs++
			if res.Err != "" {
				sum.Errors++
			}
			if res.Reused {
				sum.Reused++
			}
			if emit != nil {
				emit(res)
			}
			mu.Unlock()
		}
	})
	sum.Elapsed = time.Since(start)
	if s := sum.Elapsed.Seconds(); s > 0 {
		sum.RunsPerSec = float64(sum.Runs) / s
	}
	return sum, nil
}

// runJob executes one work item: check out (or build) the topology's
// network, Reset it to as-new state, attach the drain's fault scenario, run
// the protocol, emit the accounting, and check the network back in warm.
// Reset runs on fresh networks too — a no-op there — so every run starts
// from the identical contract, and SetScenario compiles a rewound fault
// state every time, so a warm network replays the same faults a fresh one
// sees. A scenario the topology rejects (a crash node or drop edge the
// graph does not have) is that run's Result.Err.
func runJob(j Job, cache *netCache, netWorkers int, scenario *congest.Scenario, scenarioStr string) Result {
	start := time.Now()
	key := netKey{family: j.Family, n: j.N, seed: j.Seed}
	net := cache.checkout(key)
	reused := net != nil
	if net == nil {
		g := jobFamilies[j.Family](j.N, j.Seed)
		if netWorkers > 0 {
			net = congest.NewNetworkWorkers(g, j.Seed, netWorkers)
		} else {
			net = congest.NewNetwork(g, j.Seed)
		}
	}
	net.Reset()
	err := net.SetScenario(scenario)
	var out string
	if err == nil {
		out, err = jobProtocols[j.Protocol](net)
	}
	res := Result{
		Job:      j.Index,
		Protocol: j.Protocol,
		Family:   j.Family,
		N:        net.N(),
		Seed:     j.Seed,
		Reused:   reused,
		Rounds:   net.Total().Rounds,
		Messages: net.Total().Messages,
		Output:   digest(out),
		MS:       float64(time.Since(start).Microseconds()) / 1e3,
		Scenario: scenarioStr,
	}
	if err != nil {
		res.Err = err.Error()
	}
	cache.checkin(key, net)
	return res
}

// digest compresses a serialized protocol output to a 16-hex-digit FNV-64a
// tag: enough to prove bit-identity across runs without shipping O(n)
// output vectors on every JSON line.
func digest(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}

// ParseJobSpec parses the pabench -jobs spec string: semicolon-separated
// key=value clauses.
//
//	protocols=mst,domset       protocol names, or "all" (default: all)
//	graphs=torus:400,random:120  family:targetN pairs (required)
//	seeds=1,2,5-8              seed list with inclusive ranges (default: 1)
//	scenario=crash=7@2+seed-faults=0.01  fault scenario for every run
//
// The scenario value is itself in the congest.ParseScenario grammar, which
// accepts '+' as a clause separator precisely so a whole scenario fits in
// one jobs clause without colliding with the ';' that separates jobs
// clauses here.
//
// Example: -jobs 'graphs=torus:400;protocols=mst,sssp;seeds=1-16'.
// Pool width, engine workers, and cache capacity are flags, not spec
// clauses: they change wall-clock behavior only, never results.
func ParseJobSpec(s string) (JobSpec, error) {
	var spec JobSpec
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return JobSpec{}, fmt.Errorf("job spec clause %q is not key=value", clause)
		}
		switch key {
		case "protocols":
			if val != "all" {
				spec.Protocols = splitList(val)
			}
		case "graphs":
			for _, item := range splitList(val) {
				fam, size, ok := strings.Cut(item, ":")
				if !ok {
					return JobSpec{}, fmt.Errorf("graph %q is not family:n", item)
				}
				n, err := strconv.Atoi(size)
				if err != nil {
					return JobSpec{}, fmt.Errorf("graph %q: bad size: %v", item, err)
				}
				spec.Graphs = append(spec.Graphs, GraphSpec{Family: fam, N: n})
			}
		case "seeds":
			for _, item := range splitList(val) {
				lo, hi, isRange := strings.Cut(item, "-")
				a, err := strconv.ParseInt(lo, 10, 64)
				if err != nil {
					return JobSpec{}, fmt.Errorf("seed %q: %v", item, err)
				}
				b := a
				if isRange {
					if b, err = strconv.ParseInt(hi, 10, 64); err != nil {
						return JobSpec{}, fmt.Errorf("seed range %q: %v", item, err)
					}
					if b < a {
						return JobSpec{}, fmt.Errorf("seed range %q is descending", item)
					}
				}
				for v := a; v <= b; v++ {
					spec.Seeds = append(spec.Seeds, v)
				}
			}
		case "scenario":
			if _, err := congest.ParseScenario(val); err != nil {
				return JobSpec{}, fmt.Errorf("scenario %q: %v", val, err)
			}
			spec.Scenario = val
		default:
			return JobSpec{}, fmt.Errorf("unknown job spec key %q (have: protocols, graphs, seeds, scenario)", key)
		}
	}
	if len(spec.Graphs) == 0 {
		return JobSpec{}, fmt.Errorf("job spec needs a graphs= clause, e.g. graphs=torus:400")
	}
	return spec, nil
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
