package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
)

// sweep.go is the engine scale sweep (cmd/pabench -sweep): tori from n=10^4
// up to n=10^6 plus the skewed families (star, power-law) at the same
// scales, each running a fixed broadcast-aggregation storm through the
// shared-proc phase driver. Unlike the paper experiments, this measures
// the simulator itself — setup wall time, steady-state ns/round and
// ns/message, resident heap, and the shard-balance metric — to locate the
// next engine bottleneck as n grows (ROADMAP "Many-core scale-out"). The
// int32 CSR guard bounds how far the sweep could ever be pushed
// (2m <= 2^31); at n=10^6 a torus uses 4x10^6 of those half-edge slots.

// stormRounds is the number of broadcast rounds each sweep instance runs:
// every node broadcasts its running min-ID each round, so messages per
// round are exactly 2m and the instance quiesces one round after the last
// broadcast.
const stormRounds = 10

// balanceWorkers is the worker count the sweep's shard-balance columns are
// computed at. Fixed (rather than following -workers) so the imbalance
// number in a BENCH snapshot is comparable across hosts and flag settings;
// it matches the acceptance setting of the edge-balanced sharding work.
const balanceWorkers = 4

// sweepSizes are the target node counts each family is swept at.
var sweepSizes = []int{10_000, 62_500, 250_000, 1_000_000}

// sweepFamilies are the sweep's topology builders, uniform-degree first.
// The torus ladder is the historical scaling series; star and power-law
// are the skew series — the families where node-count sharding serializes
// a worker on the hub and edge-balanced boundaries must not.
var sweepFamilies = []struct {
	name  string
	build func(n int, seed int64) *graph.Graph
}{
	{"torus", func(n int, _ int64) *graph.Graph {
		side := squareSide(n)
		return graph.Torus(side, side)
	}},
	{"star", func(n int, _ int64) *graph.Graph {
		return graph.Star(n)
	}},
	{"powerlaw", func(n int, seed int64) *graph.Graph {
		return graph.PowerLaw(n, 4, 2.5, rand.New(rand.NewSource(seed)))
	}},
}

// ScaleSweep runs the sweep on all families with n <= maxN and returns the
// measurement table. Wall-clock numbers depend on the host; the sweep is a
// diagnostic, not a regression gate (BENCH_<pr>.json plays that role).
func ScaleSweep(seed int64, maxN int) (*Table, error) {
	t := &Table{
		ID:    "SWEEP",
		Title: fmt.Sprintf("engine scale sweep: broadcast storm, %d rounds, workers=%d", stormRounds, max(workers, 1)),
		Headers: []string{"graph", "n", "2m", "build ms", "net ms", "warm ms", "storm ms",
			"ns/round", "ns/msg", "msgs", "awake%", "heap MB", "B/slot",
			fmt.Sprintf("bal@%d", balanceWorkers), fmt.Sprintf("nodebal@%d", balanceWorkers)},
		Notes: []string{
			"setup is split by stage: build = graph construction, net = NewNetwork (IDs + slot geometry), warm = first-run engine-buffer allocation; storm: the timed phase only",
			"heap: HeapAlloc after a forced GC with the network still live (graph + engine footprint)",
			"B/slot: Network.MemFootprint().BytesPerSlot() — resident slot-array bytes per edge slot (72 = the compaction-free SoA floor; +40 if a compacting Recv ran, +32 if a sparse RecvMsgs did)",
			"awake%: mean stepped nodes per round / n (Network.ActivityStats) — the storm steps every node every round, so ~100 here; frontier-shaped protocols run far lower and take the sparse round path",
			fmt.Sprintf("bal@%d: max/mean incident-edge mass per shard under the engine's edge-balanced boundaries at %d workers; nodebal@%d: the same ratio under the pre-PR-7 uniform node-count split — the skew a hub used to impose on one worker", balanceWorkers, balanceWorkers, balanceWorkers),
			"a trailing ! on bal marks a shard pinned at the indivisible floor: one node heavier than a whole fair share (a star hub); no node-granular sharding can go lower",
		},
	}
	ran := 0
	for _, fam := range sweepFamilies {
		for _, n := range sweepSizes {
			if n > maxN {
				break
			}
			buildStart := time.Now()
			g := fam.build(n, seed)
			build := time.Since(buildStart)
			row, err := sweepInstance(seed, fam.name, g, build)
			if err != nil {
				return nil, fmt.Errorf("sweep %s n=%d: %w", fam.name, n, err)
			}
			t.Rows = append(t.Rows, row)
			ran++
		}
	}
	if ran == 0 {
		return nil, fmt.Errorf("sweep: maxN %d below the smallest instance (10000)", maxN)
	}
	return t, nil
}

// balanceCell formats a ShardMass as "1.02x", flagging a max shard pinned
// at the indivisible single-node floor with a trailing '!'.
func balanceCell(s congest.ShardMass) string {
	cell := fmt.Sprintf("%.2fx", s.Ratio())
	if s.Max == s.MaxNode && float64(s.Max) > 1.25*s.Mean {
		cell += "!"
	}
	return cell
}

// sweepInstance builds one network and times the storm phase on it. The
// three construction stages are timed separately so a setup regression is
// attributable: graph build (generator + CSR), NewNetwork (IDs + slot
// geometry), and the first-run engine-buffer warmup.
func sweepInstance(seed int64, label string, g *graph.Graph, build time.Duration) ([]string, error) {
	netStart := time.Now()
	net := newNetwork(g, seed)
	netElapsed := time.Since(netStart)

	rs := g.CSR().RowStart
	balanced := congest.MeasureShards(rs, congest.EdgeBalancedBounds(rs, balanceWorkers, 0))
	uniform := congest.MeasureShards(rs, congest.NodeRangeBounds(g.N(), balanceWorkers))

	warmStart := time.Now()
	n := g.N()
	minID := make([]int64, n)
	for v := 0; v < n; v++ {
		minID[v] = net.ID(v)
	}
	storm := congest.NodeProcFunc(func(ctx *congest.Ctx, v int) bool {
		ctx.ForRecv(func(_ int, in congest.Incoming) {
			if in.Msg.A < minID[v] {
				minID[v] = in.Msg.A
			}
		})
		if ctx.Round() < stormRounds {
			ctx.Broadcast(congest.Message{A: minID[v]})
			return true
		}
		return false
	})
	// One warmup round so the engine's network-lifetime buffers exist before
	// the timed phase (they are allocated on first run).
	if _, err := net.RunNodes("sweep/warmup", congest.NodeProcFunc(func(ctx *congest.Ctx, v int) bool {
		return false
	}), 4); err != nil {
		return nil, err
	}
	net.ResetMetrics()
	warm := time.Since(warmStart)

	stormStart := time.Now()
	cost, err := net.RunNodes("sweep/storm", storm, int64(stormRounds)+4)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(stormStart)

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	nsPerRound := float64(elapsed.Nanoseconds()) / float64(max(cost.Rounds, 1))
	nsPerMsg := float64(elapsed.Nanoseconds()) / float64(max(cost.Messages, 1))
	stepped, _ := net.ActivityStats()
	awake := 100 * float64(stepped) / float64(max(int64(n)*cost.Rounds, 1))
	return []string{
		label,
		itoaInt(n), itoaInt(2 * g.M()),
		itoa(build.Milliseconds()), itoa(netElapsed.Milliseconds()), itoa(warm.Milliseconds()),
		itoa(elapsed.Milliseconds()),
		fmt.Sprintf("%.0f", nsPerRound), fmt.Sprintf("%.1f", nsPerMsg),
		itoa(cost.Messages),
		fmt.Sprintf("%.1f", awake),
		fmt.Sprintf("%.0f", float64(ms.HeapAlloc)/(1<<20)),
		fmt.Sprintf("%.0f", net.MemFootprint().BytesPerSlot()),
		balanceCell(balanced), balanceCell(uniform),
	}, nil
}
