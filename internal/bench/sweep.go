package bench

import (
	"fmt"
	"runtime"
	"time"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/graph"
)

// sweep.go is the engine scale sweep (cmd/pabench -sweep): tori from n=10^4
// up to n=10^6, each running a fixed broadcast-aggregation storm through
// the shared-proc phase driver. Unlike the paper experiments, this measures
// the simulator itself — setup wall time, steady-state ns/round and
// ns/message, and the resident heap — to locate the next engine bottleneck
// as n grows (ROADMAP "Bigger instances"). The int32 CSR guard bounds how
// far the sweep could ever be pushed (2m <= 2^31); at n=10^6 a torus uses
// 4x10^6 of those half-edge slots.

// stormRounds is the number of broadcast rounds each sweep instance runs:
// every node broadcasts its running min-ID each round, so messages per
// round are exactly 2m and the instance quiesces one round after the last
// broadcast.
const stormRounds = 10

// ScaleSweep runs the sweep on square tori with n <= maxN and returns the
// measurement table. Wall-clock numbers depend on the host; the sweep is a
// diagnostic, not a regression gate (BENCH_<pr>.json plays that role).
func ScaleSweep(seed int64, maxN int) (*Table, error) {
	t := &Table{
		ID:      "SWEEP",
		Title:   fmt.Sprintf("engine scale sweep: torus broadcast storm, %d rounds, workers=%d", stormRounds, max(workers, 1)),
		Headers: []string{"torus", "n", "2m", "build ms", "net ms", "warm ms", "storm ms", "ns/round", "ns/msg", "msgs", "heap MB"},
		Notes: []string{
			"setup is split by stage: build = graph construction, net = NewNetwork (IDs + slot geometry), warm = first-run engine-buffer allocation; storm: the timed phase only",
			"heap: HeapAlloc after a forced GC with the network still live (graph + engine footprint)",
		},
	}
	for _, side := range []int{100, 250, 500, 1000} {
		n := side * side
		if n > maxN {
			break
		}
		row, err := sweepInstance(seed, side)
		if err != nil {
			return nil, fmt.Errorf("sweep side %d: %w", side, err)
		}
		t.Rows = append(t.Rows, row)
	}
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("sweep: maxN %d below the smallest instance (10000)", maxN)
	}
	return t, nil
}

// sweepInstance builds one torus network and times the storm phase on it.
// The three construction stages are timed separately so a setup regression
// is attributable: graph build (generator + CSR), NewNetwork (IDs + slot
// geometry), and the first-run engine-buffer warmup.
func sweepInstance(seed int64, side int) ([]string, error) {
	buildStart := time.Now()
	g := graph.Torus(side, side)
	build := time.Since(buildStart)

	netStart := time.Now()
	net := newNetwork(g, seed)
	netElapsed := time.Since(netStart)

	warmStart := time.Now()
	n := g.N()
	minID := make([]int64, n)
	for v := 0; v < n; v++ {
		minID[v] = net.ID(v)
	}
	storm := congest.NodeProcFunc(func(ctx *congest.Ctx, v int) bool {
		ctx.ForRecv(func(_ int, in congest.Incoming) {
			if in.Msg.A < minID[v] {
				minID[v] = in.Msg.A
			}
		})
		if ctx.Round() < stormRounds {
			ctx.Broadcast(congest.Message{A: minID[v]})
			return true
		}
		return false
	})
	// One warmup round so the engine's network-lifetime buffers exist before
	// the timed phase (they are allocated on first run).
	if _, err := net.RunNodes("sweep/warmup", congest.NodeProcFunc(func(ctx *congest.Ctx, v int) bool {
		return false
	}), 4); err != nil {
		return nil, err
	}
	net.ResetMetrics()
	warm := time.Since(warmStart)

	stormStart := time.Now()
	cost, err := net.RunNodes("sweep/storm", storm, int64(stormRounds)+4)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(stormStart)

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	nsPerRound := float64(elapsed.Nanoseconds()) / float64(max(cost.Rounds, 1))
	nsPerMsg := float64(elapsed.Nanoseconds()) / float64(max(cost.Messages, 1))
	return []string{
		fmt.Sprintf("%dx%d", side, side),
		itoaInt(n), itoaInt(2 * g.M()),
		itoa(build.Milliseconds()), itoa(netElapsed.Milliseconds()), itoa(warm.Milliseconds()),
		itoa(elapsed.Milliseconds()),
		fmt.Sprintf("%.0f", nsPerRound), fmt.Sprintf("%.1f", nsPerMsg),
		itoa(cost.Messages),
		fmt.Sprintf("%.0f", float64(ms.HeapAlloc)/(1<<20)),
	}, nil
}
