package bench

import "testing"

// TestAllExperimentsRun exercises every experiment end-to-end at the bench
// sizes (the same paths cmd/pabench and the root benchmarks take).
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment sweep")
	}
	for id, fn := range Experiments() {
		id, fn := id, fn
		t.Run(id, func(t *testing.T) {
			tab, err := fn(12345)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if len(tab.Format()) == 0 {
				t.Fatal("empty formatting")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Headers) {
					t.Fatalf("row width %d != header width %d: %v", len(row), len(tab.Headers), row)
				}
			}
		})
	}
}
