package bench

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkJobThroughput measures the serving mode's headline number:
// runs/sec draining a protocols × graphs × seeds queue over the shared
// pool, with warm-network reuse on. pool=1 is the amortization baseline
// (reuse without concurrency); pool=GOMAXPROCS is saturation — the number
// the ROADMAP's throughput item tracks in BENCH_<pr>.json (make bench
// snapshots the runs/sec metric, make bench-compare prints its trajectory).
func BenchmarkJobThroughput(b *testing.B) {
	pools := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		pools = append(pools, p)
	}
	for _, pool := range pools {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			spec := JobSpec{
				Protocols:   []string{"domset", "verify", "corefast-pa"},
				Graphs:      []GraphSpec{{Family: "torus", N: 64}, {Family: "random", N: 48}},
				Seeds:       []int64{1, 2, 3, 4},
				PoolWorkers: pool,
			}
			b.ReportAllocs()
			runs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum, err := RunJobs(spec, nil)
				if err != nil {
					b.Fatal(err)
				}
				if sum.Errors > 0 {
					b.Fatalf("%d of %d runs failed", sum.Errors, sum.Runs)
				}
				runs += sum.Runs
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(runs)/s, "runs/sec")
			}
		})
	}
}
