package mincut

import (
	"math/rand"
	"testing"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
)

func newEngine(t *testing.T, g *graph.Graph, seed int64) *core.Engine {
	t.Helper()
	net := congest.NewNetwork(g, seed)
	e, err := core.NewEngine(net, core.Randomized)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestApproxFindsObviousBottleneck(t *testing.T) {
	// Two dense blobs joined by one light edge: any tree packing isolates it.
	var edges []graph.Edge
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			edges = append(edges, graph.Edge{U: u, V: v, W: 10})
			edges = append(edges, graph.Edge{U: 6 + u, V: 6 + v, W: 10})
		}
	}
	edges = append(edges, graph.Edge{U: 2, V: 8, W: 3})
	g := graph.MustNew(12, edges)
	e := newEngine(t, g, 1)
	res, err := Approx(e, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 3 {
		t.Fatalf("found cut of weight %d, want 3", res.Weight)
	}
}

func TestApproxNearOptimalOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	worst := 1.0
	for trial := 0; trial < 4; trial++ {
		g := graph.RandomizeWeights(graph.RandomConnected(24, 0.2, rng), 12, rng)
		e := newEngine(t, g, int64(trial+10))
		res, err := Approx(e, 8)
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := g.StoerWagnerMinCut()
		ratio := res.Ratio(exact)
		if ratio < 1 {
			t.Fatalf("trial %d: cut %d below optimum %d — invalid", trial, res.Weight, exact)
		}
		if ratio > worst {
			worst = ratio
		}
	}
	// Shape target: with 8 packed trees on these sizes the packing stays
	// within a factor 2 of optimal (empirically it is almost always exact).
	if worst > 2.0 {
		t.Fatalf("worst ratio %.2f exceeds 2x", worst)
	}
}

func TestApproxCutIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomizeWeights(graph.Grid(4, 5), 9, rng)
	e := newEngine(t, g, 5)
	res, err := Approx(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Both sides non-empty.
	a, b := 0, 0
	for _, s := range res.Side {
		if s {
			a++
		} else {
			b++
		}
	}
	if a == 0 || b == 0 {
		t.Fatalf("degenerate cut: sides %d/%d", a, b)
	}
	// Reported weight equals the true weight of the reported side.
	side := make(map[int]bool)
	for _, v := range res.SortedSide() {
		side[v] = true
	}
	if got := g.CutWeight(side); got != res.Weight {
		t.Fatalf("reported %d, actual %d", res.Weight, got)
	}
}

func TestApproxRejectsZeroTrees(t *testing.T) {
	g := graph.Cycle(5)
	e := newEngine(t, g, 7)
	if _, err := Approx(e, 0); err == nil {
		t.Fatal("Approx accepted zero trees")
	}
}
