package mincut

import (
	"fmt"
	"sort"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/mst"
	"shortcutpa/internal/part"
)

// Result is an approximate minimum cut: one side's membership, the cut
// weight as verified by the distributed PA sum, and the number of MST
// rounds (trees packed).
type Result struct {
	Side     []bool
	Weight   graph.Weight
	Trees    int
	BestTree int // index of the packing round that produced the winner
}

// Approx packs `trees` MSTs and returns the best single-tree-edge cut.
// More trees improve the approximation (the paper uses O(log n)·poly(1/ε)).
func Approx(e *core.Engine, trees int) (*Result, error) {
	if trees < 1 {
		return nil, fmt.Errorf("mincut: need at least one tree, got %d", trees)
	}
	g := e.Net.Graph()
	n := e.N

	// Greedy tree packing: load(e) += 1/w(e) per use; each round's MST
	// minimizes (load, original weight, id). Loads are scaled to integers
	// to stay in the integral-weight model.
	const scale = 1 << 20
	load := make([]int64, g.M())
	bestWeight := graph.Weight(1) << 60
	var bestSide []bool
	bestTree := -1
	for t := 0; t < trees; t++ {
		packed, err := g.Reweight(func(i int, ed graph.Edge) graph.Weight {
			return graph.Weight(load[i]*1024) + ed.W
		})
		if err != nil {
			return nil, err
		}
		packedNet := congest.NewNetwork(packed, e.Net.Seed()+int64(t))
		packedNet.SetWorkers(e.Net.Workers())
		pe, err := core.NewEngine(packedNet, e.Mode)
		if err != nil {
			return nil, err
		}
		tr, err := mst.Run(pe, mst.Options{})
		if err != nil {
			return nil, fmt.Errorf("mincut: packing round %d: %w", t, err)
		}
		// Merge the packing run's cost into the caller's accounting.
		e.Net.MergeCosts(packedNet.Total())

		treeEdges := make([]int, 0, n-1)
		for i, in := range tr.InMST {
			if in {
				treeEdges = append(treeEdges, i)
				load[i] += scale / int64(g.Edge(i).W)
			}
		}
		// Engine-side candidate scan: the cut of each single tree edge.
		for _, cutEdge := range treeEdges {
			side := treeSide(g, treeEdges, cutEdge)
			w := cutWeightOf(g, side)
			if w < bestWeight {
				bestWeight = w
				bestSide = side
				bestTree = t
			}
		}
	}

	// Distributed confirmation of the winner via PA.
	verified, err := verifyCut(e, bestSide)
	if err != nil {
		return nil, err
	}
	if verified != bestWeight {
		return nil, fmt.Errorf("mincut: distributed verification got %d, scan got %d", verified, bestWeight)
	}
	return &Result{Side: bestSide, Weight: verified, Trees: trees, BestTree: bestTree}, nil
}

// treeSide returns the membership of the component of treeEdges \ cutEdge
// containing the cut edge's U endpoint.
func treeSide(g *graph.Graph, treeEdges []int, cutEdge int) []bool {
	dsu := graph.NewDSU(g.N())
	for _, i := range treeEdges {
		if i != cutEdge {
			e := g.Edge(i)
			dsu.Union(e.U, e.V)
		}
	}
	root := dsu.Find(g.Edge(cutEdge).U)
	side := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		side[v] = dsu.Find(v) == root
	}
	return side
}

func cutWeightOf(g *graph.Graph, side []bool) graph.Weight {
	var w graph.Weight
	g.ForEdges(func(_ int, e graph.Edge) bool {
		if side[e.U] != side[e.V] {
			w += e.W
		}
		return true
	})
	return w
}

// verifyCut computes the cut weight distributedly: the two sides form a
// partition (each side is connected: it is a subtree component), sides
// label themselves via Algorithm 9, a one-round exchange marks crossing
// ports, and a PA sum per side totals the crossing weights.
func verifyCut(e *core.Engine, side []bool) (graph.Weight, error) {
	g := e.Net.Graph()
	n := e.N
	in := part.NewInfo(e.Net)
	for v := 0; v < n; v++ {
		if side[v] {
			in.Dense[v] = 1
		}
		same := in.SameRow(v)
		sv := side[v]
		g.ForPorts(v, func(q, to, _ int) bool {
			same[q] = side[to] == sv
			return true
		})
	}
	if err := e.CoarsenToLeaders(in); err != nil {
		return 0, err
	}
	vals := make([]congest.Val, n)
	for v := 0; v < n; v++ {
		var w int64
		same := in.SameRow(v)
		g.ForPorts(v, func(q, _, edge int) bool {
			if !same[q] {
				w += int64(g.Edge(edge).W)
			}
			return true
		})
		vals[v] = congest.Val{A: w}
	}
	res, err := e.Solve(in, vals, congest.SumPair)
	if err != nil {
		return 0, err
	}
	// Every crossing edge is counted once by each side; both sides hold the
	// same total. Read it from node 0's side.
	return graph.Weight(res.Values[0].A), nil
}

// Ratio reports the achieved approximation ratio against an exact oracle
// weight (experiment helper).
func (r *Result) Ratio(exact graph.Weight) float64 {
	if exact == 0 {
		return 1
	}
	return float64(r.Weight) / float64(exact)
}

// SortedSide returns the winning side as sorted node indices.
func (r *Result) SortedSide() []int {
	var out []int
	for v, s := range r.Side {
		if s {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
