// Package mincut implements Corollary 1.4: approximate global minimum cut.
// Following the Ghaffari-Haeupler recipe [15] (Section 5.2 there), the
// algorithm computes O(log n)·poly(1/ε) MSTs under varying weights — here a
// Thorup-style greedy tree packing, where each round's MST minimizes
// accumulated edge load 1/w — such that some single tree edge's induced
// 2-component cut approximates the minimum cut. Every MST is computed by
// the distributed Borůvka-over-PA of Corollary 1.3.
//
// Candidate evaluation: the paper scores all n-1 single-tree-edge cuts with
// a PA-based sketching pass; this reproduction scores candidates engine-side
// and then *verifies the winning cut distributedly* — the two sides label
// themselves via PA (Algorithm 9 coarsening on the split tree) and the cut
// weight is a PA sum of crossing-edge weights. See DESIGN.md, substitutions.
package mincut
