package main

import "testing"

func TestGenerateEveryFamily(t *testing.T) {
	families := []string{"grid", "gridstar", "random", "path", "cycle", "torus", "ladder", "ktree", "cbt", "lollipop"}
	for _, f := range families {
		if err := run([]string{"-family", f, "-scale", "1", "-seed", "3"}); err != nil {
			t.Errorf("family %s: %v", f, err)
		}
	}
}

func TestEdgesFlag(t *testing.T) {
	if err := run([]string{"-family", "path", "-scale", "1", "-edges"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFamilyFails(t *testing.T) {
	if err := run([]string{"-family", "mobius"}); err == nil {
		t.Fatal("unknown family did not error")
	}
}
