package main

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"testing"
)

func TestGenerateEveryFamily(t *testing.T) {
	families := []string{"grid", "gridstar", "random", "path", "cycle", "torus", "ladder", "ktree", "cbt", "lollipop"}
	for _, f := range families {
		if err := run([]string{"-family", f, "-scale", "1", "-seed", "3"}, io.Discard); err != nil {
			t.Errorf("family %s: %v", f, err)
		}
	}
}

func TestEdgesFlag(t *testing.T) {
	if err := run([]string{"-family", "path", "-scale", "1", "-edges"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFamilyFails(t *testing.T) {
	if err := run([]string{"-family", "mobius"}, io.Discard); err == nil {
		t.Fatal("unknown family did not error")
	}
}

// TestLoadRoundTrip: -edges output of a generated graph feeds back through
// -load with the identical shape, and a second -load of the re-emitted
// normalized list is a fixed point — the full pagen -> LoadEdgeList cycle.
func TestLoadRoundTrip(t *testing.T) {
	var gen bytes.Buffer
	if err := run([]string{"-family", "torus", "-scale", "1", "-edges"}, &gen); err != nil {
		t.Fatal(err)
	}
	header, edges, ok := strings.Cut(gen.String(), "\n")
	if !ok {
		t.Fatalf("no edge lines after header %q", header)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "torus.txt")
	if err := os.WriteFile(file, []byte(edges), 0o644); err != nil {
		t.Fatal(err)
	}

	var loaded bytes.Buffer
	if err := run([]string{"-load", file, "-edges"}, &loaded); err != nil {
		t.Fatal(err)
	}
	loadHeader, loadEdges, _ := strings.Cut(loaded.String(), "\n")
	if want := "family=load n=36 m=72 diameter=6"; loadHeader != want {
		t.Fatalf("-load header = %q, want %q", loadHeader, want)
	}
	// The generator's IDs are already dense and its list normalized, so the
	// re-emitted list is the same edge set — modulo ordering only:
	// LoadEdgeList sorts pairs (and canonicalizes each to min-max endpoint
	// order) while the generator emits insertion order.
	if !slices.Equal(canonEdges(t, edges), canonEdges(t, loadEdges)) {
		t.Error("-load -edges did not reproduce the generated edge set")
	}

	// -load of its own output is a fixed point.
	again := filepath.Join(dir, "again.txt")
	if err := os.WriteFile(again, []byte(loadEdges), 0o644); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := run([]string{"-load", again, "-edges"}, &second); err != nil {
		t.Fatal(err)
	}
	if second.String() != loaded.String() {
		t.Error("-load is not a fixed point on its own output")
	}
}

// canonEdges parses "u v w" lines into a sorted list of canonical
// (min, max, w) strings, the order-independent projection of an edge list.
func canonEdges(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		f := strings.Fields(line)
		if len(f) != 3 {
			t.Fatalf("edge line %q is not 'u v w'", line)
		}
		u, v := f[0], f[1]
		if len(u) > len(v) || (len(u) == len(v) && u > v) {
			u, v = v, u
		}
		out = append(out, u+" "+v+" "+f[2])
	}
	sort.Strings(out)
	return out
}

// TestLoadDisconnectedAndErrors: a disconnected load reports diameter=-1; a
// malformed file and a missing file are CLI errors.
func TestLoadDisconnectedAndErrors(t *testing.T) {
	dir := t.TempDir()
	disc := filepath.Join(dir, "disc.txt")
	if err := os.WriteFile(disc, []byte("1 2\n3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-load", disc}, &out); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	sc.Scan()
	if want := "family=load n=4 m=2 diameter=-1"; sc.Text() != want {
		t.Errorf("disconnected header = %q, want %q", sc.Text(), want)
	}

	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("1 2 notaweight\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-load", bad}, io.Discard); err == nil {
		t.Error("malformed edge list did not error")
	}
	if err := run([]string{"-load", filepath.Join(dir, "nope.txt")}, io.Discard); err == nil {
		t.Error("missing file did not error")
	}
}
