// Command pagen generates the repository's graph families and prints their
// structural statistics (n, m, diameter) or an edge list.
//
// Usage:
//
//	pagen -family torus -scale 2 -edges
package main
