package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"shortcutpa/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pagen", flag.ContinueOnError)
	var (
		family = fs.String("family", "grid", "grid|gridstar|random|path|cycle|torus|ladder|ktree|cbt|lollipop|powerlaw|prefattach")
		scale  = fs.Int("scale", 2, "instance scale factor")
		seed   = fs.Int64("seed", 1, "seed")
		edges  = fs.Bool("edges", false, "print the edge list")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	switch *family {
	case "grid":
		g = graph.Grid(7**scale, 7**scale)
	case "gridstar":
		g = graph.GridStar(4**scale, 24**scale)
	case "random":
		n := 60 * *scale
		g = graph.RandomConnected(n, 3.0/float64(n), rng)
	case "path":
		g = graph.Path(60 * *scale)
	case "cycle":
		g = graph.Cycle(60 * *scale)
	case "torus":
		g = graph.Torus(6**scale, 6**scale)
	case "ladder":
		g = graph.Ladder(30 * *scale)
	case "ktree":
		g = graph.KTree(50**scale, 2, rng)
	case "cbt":
		g = graph.CompleteBinaryTree(3 + *scale)
	case "lollipop":
		g = graph.Lollipop(40**scale, 8**scale)
	case "powerlaw":
		g = graph.PowerLaw(60**scale, 4, 2.5, rng)
	case "prefattach":
		g = graph.PrefAttach(60**scale, 3, rng)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	fmt.Printf("family=%s scale=%d n=%d m=%d diameter=%d\n", *family, *scale, g.N(), g.M(), g.Diameter())
	if *edges {
		g.ForEdges(func(_ int, e graph.Edge) bool {
			fmt.Printf("%d %d %d\n", e.U, e.V, e.W)
			return true
		})
	}
	return nil
}
