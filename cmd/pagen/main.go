package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"shortcutpa/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pagen", flag.ContinueOnError)
	var (
		family = fs.String("family", "grid", "grid|gridstar|random|path|cycle|torus|ladder|ktree|cbt|lollipop|powerlaw|prefattach")
		scale  = fs.Int("scale", 2, "instance scale factor")
		seed   = fs.Int64("seed", 1, "seed")
		edges  = fs.Bool("edges", false, "print the edge list")
		load   = fs.String("load", "", "load a real edge list (SNAP or DIMACS format) instead of generating; -edges re-emits it normalized, with original node IDs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *load != "" {
		return runLoad(*load, *edges, stdout)
	}
	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	switch *family {
	case "grid":
		g = graph.Grid(7**scale, 7**scale)
	case "gridstar":
		g = graph.GridStar(4**scale, 24**scale)
	case "random":
		n := 60 * *scale
		g = graph.RandomConnected(n, 3.0/float64(n), rng)
	case "path":
		g = graph.Path(60 * *scale)
	case "cycle":
		g = graph.Cycle(60 * *scale)
	case "torus":
		g = graph.Torus(6**scale, 6**scale)
	case "ladder":
		g = graph.Ladder(30 * *scale)
	case "ktree":
		g = graph.KTree(50**scale, 2, rng)
	case "cbt":
		g = graph.CompleteBinaryTree(3 + *scale)
	case "lollipop":
		g = graph.Lollipop(40**scale, 8**scale)
	case "powerlaw":
		g = graph.PowerLaw(60**scale, 4, 2.5, rng)
	case "prefattach":
		g = graph.PrefAttach(60**scale, 3, rng)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	fmt.Fprintf(stdout, "family=%s scale=%d n=%d m=%d diameter=%d\n", *family, *scale, g.N(), g.M(), g.Diameter())
	if *edges {
		g.ForEdges(func(_ int, e graph.Edge) bool {
			fmt.Fprintf(stdout, "%d %d %d\n", e.U, e.V, e.W)
			return true
		})
	}
	return nil
}

// runLoad is the -load path: parse a real SNAP/DIMACS export through
// graph.LoadEdgeList, report its shape, and optionally re-emit the
// normalized edge list (deduplicated, self-loop-free) under the file's
// original node IDs — so the output feeds straight back into -load or into
// fault experiments on real topologies. Real exports are often
// disconnected, where Diameter is undefined; it is reported as -1 then.
func runLoad(path string, edges bool, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, ids, err := graph.LoadEdgeList(f)
	if err != nil {
		return fmt.Errorf("load %s: %w", path, err)
	}
	diameter := -1
	if g.Connected() {
		diameter = g.Diameter()
	}
	fmt.Fprintf(stdout, "family=load n=%d m=%d diameter=%d\n", g.N(), g.M(), diameter)
	if edges {
		g.ForEdges(func(_ int, e graph.Edge) bool {
			fmt.Fprintf(stdout, "%d %d %d\n", ids[e.U], ids[e.V], e.W)
			return true
		})
	}
	return nil
}
