package main

import "testing"

func TestMSTOnSmallGrid(t *testing.T) {
	if err := run([]string{"-family", "grid", "-scale", "1", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestMSTDeterministicParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("deterministic construction on a full instance")
	}
	if err := run([]string{"-family", "path", "-scale", "1", "-mode", "det", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFamilyFails(t *testing.T) {
	if err := run([]string{"-family", "hypercube"}); err == nil {
		t.Fatal("unknown family did not error")
	}
}
