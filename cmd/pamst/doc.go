// Command pamst runs the distributed Borůvka-over-PA MST (Corollary 1.3)
// on a generated graph and reports costs and correctness against Kruskal.
//
// Usage:
//
//	pamst -family grid -scale 3 -seed 7 -mode rand
package main
