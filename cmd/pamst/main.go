package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/mst"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pamst:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pamst", flag.ContinueOnError)
	var (
		family   = fs.String("family", "grid", "graph family: grid|gridstar|random|path|torus")
		scale    = fs.Int("scale", 2, "instance scale factor")
		seed     = fs.Int64("seed", 1, "seed")
		mode     = fs.String("mode", "rand", "rand|det")
		baseline = fs.Bool("baseline", false, "disable shortcuts (prior-work baseline)")
		workers  = fs.Int("workers", 1, "simulation engine workers (results are identical at any setting)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	switch *family {
	case "grid":
		g = graph.Grid(7**scale, 7**scale)
	case "gridstar":
		g = graph.GridStar(4**scale, 24**scale)
	case "random":
		n := 60 * *scale
		g = graph.RandomConnected(n, 3.0/float64(n), rng)
	case "path":
		g = graph.Path(60 * *scale)
	case "torus":
		g = graph.Torus(6**scale, 6**scale)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	g = graph.RandomizeWeights(g, 1000, rng)

	m := core.Randomized
	if *mode == "det" {
		m = core.Deterministic
	}
	net := congest.NewNetwork(g, *seed)
	net.SetWorkers(*workers)
	e, err := core.NewEngine(net, m)
	if err != nil {
		return err
	}
	res, err := mst.Run(e, mst.Options{Baseline: *baseline})
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s scale=%d n=%d m=%d D=%d\n", *family, *scale, g.N(), g.M(), e.D)
	fmt.Printf("mode: %s baseline=%v\n", m, *baseline)
	fmt.Printf("phases: %d  weight: %d  (kruskal: %d, match: %v)\n",
		res.Phases, res.Weight, g.MSTWeight(), res.Weight == g.MSTWeight())
	fmt.Printf("rounds: %d  messages: %d  (m=%d, msgs/m=%.1f)\n",
		net.Total().Rounds, net.Total().Messages, g.M(),
		float64(net.Total().Messages)/float64(g.M()))
	return nil
}
