package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: shortcutpa/internal/congest
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngine/family=torus/workers=1         	       3	   7275667 ns/op	    363783 ns/round	     802 B/op	      44 allocs/op
BenchmarkEngine/family=star/workers=8          	       3	   5967325 ns/op	    298366 ns/round	    1018 B/op	     372 allocs/op
PASS
ok  	shortcutpa/internal/congest	9.451s
`

func TestParseSample(t *testing.T) {
	snap, err := parse(bufio.NewScanner(strings.NewReader(sample)), "n")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "BenchmarkEngine/family=torus/workers=1" || b.Runs != 3 {
		t.Fatalf("bad first benchmark: %+v", b)
	}
	if b.Metrics["allocs/op"] != 44 || b.Metrics["ns/round"] != 363783 {
		t.Fatalf("bad metrics: %+v", b.Metrics)
	}
	if snap.Env["goos"] != "linux" || snap.Env["cpu"] == "" {
		t.Fatalf("bad env: %+v", snap.Env)
	}
	// Raw must round-trip the benchmark lines for benchstat.
	if len(snap.Raw) != 6 {
		t.Fatalf("raw kept %d lines, want 6 (4 env + 2 results)", len(snap.Raw))
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\n")), ""); err == nil {
		t.Fatal("empty input did not error")
	}
}
