// Command benchsnap converts `go test -bench` output on stdin into a JSON
// benchmark snapshot (BENCH_<n>.json), the repo's perf-trajectory format:
// one snapshot is committed per perf-relevant PR so regressions are diffable
// in review. The snapshot keeps the raw benchmark lines verbatim — pipe
// them back out (e.g. `jq -r '.raw[]'`) to feed benchstat — alongside a
// parsed form for ad-hoc tooling.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkEngine -benchmem ./internal/congest/ \
//	    | benchsnap -o BENCH_2.json -note "post flat-buffer refactor"
package main
