package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Snapshot is the file schema.
type Snapshot struct {
	Note       string            `json:"note,omitempty"`
	Env        map[string]string `json:"env"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Raw        []string          `json:"raw"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default: stdout)")
	note := fs.String("note", "", "free-form note recorded in the snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	snap, err := parse(bufio.NewScanner(os.Stdin), *note)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// parse reads `go test -bench` text: env header lines (goos/goarch/pkg/cpu),
// result lines ("BenchmarkX-8  10  123 ns/op  4 B/op ..."), and passthrough
// noise (PASS, ok). Result lines are echoed into Raw so the snapshot can be
// replayed through benchstat.
func parse(sc *bufio.Scanner, note string) (*Snapshot, error) {
	snap := &Snapshot{Note: note, Env: map[string]string{}}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if !ok {
				continue
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
			snap.Raw = append(snap.Raw, line)
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			snap.Env[k] = strings.TrimSpace(v)
			snap.Raw = append(snap.Raw, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return snap, nil
}

// parseResult parses one result line: name, run count, then (value, unit)
// pairs such as "123 ns/op", "7 allocs/op", "456 ns/round".
func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
