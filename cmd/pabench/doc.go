// Command pabench runs the paper-reproduction experiments (DESIGN.md
// Section 4) and prints their tables. EXPERIMENTS.md is generated from its
// output.
//
// Usage:
//
//	pabench -list
//	pabench -exp T1,F2 -seed 7
//	pabench -exp T2 -cpuprofile cpu.out -memprofile mem.out
//	pabench            # all experiments
//	pabench -sweep -sweep-max 1000000 -workers 4   # engine scale sweep
//	pabench -jobs 'graphs=torus:400,powerlaw:1000;protocols=mst,sssp;seeds=1-16' -jobs-pool 8
//
// The -sweep form measures the engine itself on torus, star, and
// power-law instances up to -sweep-max nodes; its bal@4/nodebal@4
// columns report the max/mean shard edge-mass ratio of the engine's
// edge-balanced boundaries versus the legacy uniform node split.
//
// The -jobs form is the multi-run serving mode: the spec's protocols x
// graphs x seeds cross product is drained over one shared worker pool,
// one JSON line per completed run streamed to stdout as it finishes
// (stable field set: job, protocol, family, n, seed, reused, rounds,
// messages, output, ms, and err on failures), with same-topology jobs
// reusing warm networks through congest.Network.Reset. A run summary
// (runs/sec at the configured pool width) goes to stderr.
package main
