// Command pabench runs the paper-reproduction experiments (DESIGN.md
// Section 4) and prints their tables. EXPERIMENTS.md is generated from its
// output.
//
// Usage:
//
//	pabench -list
//	pabench -exp T1,F2 -seed 7
//	pabench -exp T2 -cpuprofile cpu.out -memprofile mem.out
//	pabench            # all experiments
//	pabench -sweep -sweep-max 1000000 -workers 4   # engine scale sweep
package main
