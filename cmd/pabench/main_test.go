package main

import "testing"

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	if err := run([]string{"-exp", "NOPE"}); err == nil {
		t.Fatal("unknown experiment ID did not error")
	}
}

func TestBadFlagFails(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag did not error")
	}
}

// TestOneExperimentParallel runs the cheapest real experiment end-to-end
// through the CLI path with the parallel engine enabled.
func TestOneExperimentParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	if err := run([]string{"-exp", "A3", "-seed", "7", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
}
