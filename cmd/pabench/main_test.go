package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	if err := run([]string{"-exp", "NOPE"}, io.Discard); err == nil {
		t.Fatal("unknown experiment ID did not error")
	}
}

func TestBadFlagFails(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("bad flag did not error")
	}
}

// TestProfileFlagsWriteFiles checks -cpuprofile/-memprofile produce
// non-empty pprof files around a real (cheap) experiment run.
func TestProfileFlagsWriteFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	if err := run([]string{"-exp", "A3", "-seed", "7", "-cpuprofile", cpu, "-memprofile", mem}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestJobsModeStreamsJSONL drives the serving mode through the CLI path: a
// small protocols x graphs x seeds spec over a shared pool must emit exactly
// one well-formed JSON object per expanded job, each carrying the stable
// field set.
func TestJobsModeStreamsJSONL(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-jobs", "graphs=torus:36,ladder:24;protocols=domset,verify;seeds=1,2",
		"-jobs-pool", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	lines := 0
	for sc.Scan() {
		lines++
		var r map[string]any
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		for _, field := range []string{"job", "protocol", "family", "n", "seed", "reused", "rounds", "messages", "output", "ms"} {
			if _, ok := r[field]; !ok {
				t.Errorf("line %d lacks field %q: %s", lines, field, sc.Text())
			}
		}
		if _, ok := r["err"]; ok {
			t.Errorf("line %d reports a run error: %s", lines, sc.Text())
		}
	}
	if want := 2 * 2 * 2; lines != want {
		t.Fatalf("jobs mode emitted %d JSON lines, want %d", lines, want)
	}
}

// TestJobsBadSpecFails: a malformed spec is a CLI error, not a hang.
func TestJobsBadSpecFails(t *testing.T) {
	if err := run([]string{"-jobs", "graphs=nosuch:100"}, io.Discard); err == nil {
		t.Fatal("unknown graph family in -jobs did not error")
	}
}

// TestJobsScenarioFlag: -scenario attaches a fault scenario to every run
// (each JSONL line names it), is rejected without -jobs, and a malformed
// scenario is a CLI error.
func TestJobsScenarioFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-jobs", "graphs=torus:36;protocols=domset;seeds=1,2",
		"-scenario", "crash=7@40;seed-faults=0.002",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	lines := 0
	for sc.Scan() {
		lines++
		var r map[string]any
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if got, _ := r["scenario"].(string); got != "crash=7@40;seed-faults=0.002" {
			t.Errorf("line %d scenario = %q", lines, got)
		}
	}
	if lines != 2 {
		t.Fatalf("emitted %d JSON lines, want 2", lines)
	}

	if err := run([]string{"-scenario", "crash=7@40"}, io.Discard); err == nil {
		t.Error("-scenario without -jobs did not error")
	}
	if err := run([]string{"-jobs", "graphs=torus:36", "-scenario", "crash=7"}, io.Discard); err == nil {
		t.Error("malformed -scenario did not error")
	}
}

// TestOneExperimentParallel runs the cheapest real experiment end-to-end
// through the CLI path with the parallel engine enabled.
func TestOneExperimentParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	if err := run([]string{"-exp", "A3", "-seed", "7", "-workers", "4"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}
