package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	if err := run([]string{"-exp", "NOPE"}); err == nil {
		t.Fatal("unknown experiment ID did not error")
	}
}

func TestBadFlagFails(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag did not error")
	}
}

// TestProfileFlagsWriteFiles checks -cpuprofile/-memprofile produce
// non-empty pprof files around a real (cheap) experiment run.
func TestProfileFlagsWriteFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	if err := run([]string{"-exp", "A3", "-seed", "7", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestOneExperimentParallel runs the cheapest real experiment end-to-end
// through the CLI path with the parallel engine enabled.
func TestOneExperimentParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	if err := run([]string{"-exp", "A3", "-seed", "7", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
}
