package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"shortcutpa/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pabench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pabench", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list experiment IDs and exit")
		exp        = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		seed       = fs.Int64("seed", 12345, "master seed")
		workers    = fs.Int("workers", 1, "simulation engine workers (results are identical at any setting)")
		sweep      = fs.Bool("sweep", false, "run the engine scale sweep (torus/star/powerlaw up to -sweep-max nodes, with shard-balance columns) instead of the paper experiments")
		sweepMax   = fs.Int("sweep-max", 1_000_000, "largest node count the scale sweep builds per family")
		jobs       = fs.String("jobs", "", "serve a multi-run job spec (protocols x graphs x seeds) over one shared pool, streaming one JSON line per run; e.g. 'graphs=torus:400;protocols=mst,sssp;seeds=1-16'")
		jobsPool   = fs.Int("jobs-pool", 0, "job-queue workers draining the -jobs spec (0 = GOMAXPROCS)")
		jobsCache  = fs.Int("jobs-cache", 0, "warm-network LRU capacity for -jobs topology reuse (0 = default, negative disables reuse)")
		scenario   = fs.String("scenario", "", "fault scenario applied to every -jobs run, e.g. 'crash=17@100;drop=3-9@50;seed-faults=0.01' (overrides a scenario= spec clause)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	bench.SetWorkers(*workers)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		// Written after the experiments; engine regressions show up as
		// steady-state heap, so collect garbage first for a clean picture.
		defer func() {
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pabench: memprofile:", err)
			}
		}()
	}
	if *jobs == "" && *scenario != "" {
		return fmt.Errorf("-scenario only applies to -jobs runs")
	}
	if *jobs != "" {
		spec, err := bench.ParseJobSpec(*jobs)
		if err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
		spec.PoolWorkers = *jobsPool
		spec.NetWorkers = *workers
		spec.Cache = *jobsCache
		if *scenario != "" {
			spec.Scenario = *scenario
		}
		enc := json.NewEncoder(stdout)
		sum, err := bench.RunJobs(spec, func(r bench.Result) {
			// RunJobs serializes emit calls; stream each run as it finishes.
			if err := enc.Encode(r); err != nil {
				fmt.Fprintln(os.Stderr, "pabench: jobs:", err)
			}
		})
		if err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pabench: %d runs (%d reused, %d errors) in %s — %.1f runs/sec\n",
			sum.Runs, sum.Reused, sum.Errors, sum.Elapsed.Round(time.Millisecond), sum.RunsPerSec)
		if sum.Errors > 0 {
			return fmt.Errorf("jobs: %d of %d runs failed (see err fields in the output)", sum.Errors, sum.Runs)
		}
		return nil
	}
	if *sweep {
		table, err := bench.ScaleSweep(*seed, *sweepMax)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, table.Format())
		return nil
	}
	all := bench.Experiments()
	ids := make([]string, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if *list {
		for _, id := range ids {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}
	want := ids
	if *exp != "" {
		want = strings.Split(*exp, ",")
	}
	for _, id := range want {
		fn, ok := all[strings.TrimSpace(id)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		table, err := fn(*seed)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Fprintln(stdout, table.Format())
	}
	return nil
}
