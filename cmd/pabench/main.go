// Command pabench runs the paper-reproduction experiments (DESIGN.md
// Section 4) and prints their tables. EXPERIMENTS.md is generated from its
// output.
//
// Usage:
//
//	pabench -list
//	pabench -exp T1,F2 -seed 7
//	pabench            # all experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"shortcutpa/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pabench", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		exp     = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		seed    = fs.Int64("seed", 12345, "master seed")
		workers = fs.Int("workers", 1, "simulation engine workers (results are identical at any setting)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	bench.SetWorkers(*workers)
	all := bench.Experiments()
	ids := make([]string, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}
	want := ids
	if *exp != "" {
		want = strings.Split(*exp, ",")
	}
	for _, id := range want {
		fn, ok := all[strings.TrimSpace(id)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		table, err := fn(*seed)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Println(table.Format())
	}
	return nil
}
