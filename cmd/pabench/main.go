package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"shortcutpa/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pabench", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list experiment IDs and exit")
		exp        = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		seed       = fs.Int64("seed", 12345, "master seed")
		workers    = fs.Int("workers", 1, "simulation engine workers (results are identical at any setting)")
		sweep      = fs.Bool("sweep", false, "run the engine scale sweep (tori up to -sweep-max nodes) instead of the paper experiments")
		sweepMax   = fs.Int("sweep-max", 1_000_000, "largest torus node count the scale sweep builds")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	bench.SetWorkers(*workers)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		// Written after the experiments; engine regressions show up as
		// steady-state heap, so collect garbage first for a clean picture.
		defer func() {
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pabench: memprofile:", err)
			}
		}()
	}
	if *sweep {
		table, err := bench.ScaleSweep(*seed, *sweepMax)
		if err != nil {
			return err
		}
		fmt.Println(table.Format())
		return nil
	}
	all := bench.Experiments()
	ids := make([]string, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}
	want := ids
	if *exp != "" {
		want = strings.Split(*exp, ",")
	}
	for _, id := range want {
		fn, ok := all[strings.TrimSpace(id)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		table, err := fn(*seed)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Println(table.Format())
	}
	return nil
}
