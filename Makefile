# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets: `make check` on every push/PR, `make test-full` nightly.

GO ?= go

.PHONY: build vet test test-race test-race-w4 test-race-faulty test-full fuzz-smoke bench bench-smoke bench-compare bench-allocs-check docs-check check

# PR number stamped into benchmark snapshots (BENCH_$(PR).json), and the
# provenance note recorded inside; override both per perf PR, e.g.
#   make bench PR=5 BENCH_NOTE="batched wake scan; vs BENCH_2: ..."
PR ?= 10
BENCH_NOTE ?= engine benchmark snapshot (PR $(PR)); compare against the previous BENCH_<n>.json via benchstat

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast suite: every package, seconds of wall clock.
test:
	$(GO) test -short ./...

# Fast suite under the race detector — the standing check on the parallel
# CONGEST engine (internal/congest/parallel.go). CI runs this twice: once
# as-is (sequential default) and once with CONGEST_WORKERS=4, which makes
# every network default to the parallel engine so the pool and the sharded
# wake scan run under the race detector across the whole suite.
test-race:
	$(GO) test -race -short ./...

# The workers=4 leg of the race matrix, runnable locally.
test-race-w4:
	CONGEST_WORKERS=4 $(GO) test -race -short ./...

# The fault-injection race leg: drain a faulty-scenario jobs queue over the
# shared pool with every network on the parallel engine (CONGEST_WORKERS=4),
# under the race detector. Faults are applied by the coordinator between
# worker waves; this leg would trip -race if that ever stopped being true.
test-race-faulty:
	CONGEST_WORKERS=4 $(GO) test -race -count=1 \
		-run 'TestJobsFaultyScenarioSharedPoolRace|TestJobsScenarioDeterministicAcrossPoolAndCache|TestScenarioParallelMatchesSequential' \
		./internal/bench/ ./internal/congest/

# Full suite, including the multi-second experiment sweeps.
test-full:
	$(GO) test ./...

# Short native-fuzz pass over the spec grammars (nightly CI): the jobs spec
# and the fault-scenario spec must never panic, and every accepted scenario
# must survive a parse-print-parse round trip. `go test -fuzz` takes one
# target per invocation, hence the two runs.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseScenario -fuzztime=$(FUZZTIME) ./internal/congest/
	$(GO) test -run='^$$' -fuzz=FuzzParseJobSpec -fuzztime=$(FUZZTIME) ./internal/bench/

# Engine benchmarks (graph-family x worker-count matrix on n=10k graphs,
# plus the BenchmarkNetworkSetup cold-construction ladder n=10^4..10^6 and
# the BenchmarkJobThroughput multi-run serving row — runs/sec at pool
# saturation), snapshotted to a benchstat-friendly BENCH_$(PR).json for the
# perf trajectory. Replay into benchstat with: jq -r '.raw[]' BENCH_$(PR).json
bench:
	$(GO) test -run='^$$' -bench='BenchmarkEngine|BenchmarkNetworkSetup|BenchmarkJobThroughput' -benchmem -benchtime=5x -count=3 ./internal/congest/ ./internal/bench/ \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchsnap -o BENCH_$(PR).json -note "$(BENCH_NOTE)"

# One-iteration pass over every benchmark in the repo: keeps benchmark code
# compiling and running between perf PRs (nightly CI).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# benchstat comparison of two committed benchmark snapshots (nightly CI
# appends the output to its job summary for the perf trajectory). Falls
# back to naming the raw snapshots when jq/benchstat are unavailable.
# Snapshot ledger note: there is deliberately no BENCH_8.json — PR 8 was
# robustness-only (fault injection) and changed no perf surface, so the
# trajectory steps BENCH_7 -> BENCH_9 -> BENCH_10.
BENCH_OLD ?= BENCH_9.json
BENCH_NEW ?= BENCH_10.json
bench-compare:
	@if ! command -v jq >/dev/null 2>&1; then \
		echo "bench-compare: jq unavailable; raw snapshots: $(BENCH_OLD) $(BENCH_NEW)"; exit 0; fi; \
	jq -r '.raw[]' $(BENCH_OLD) > /tmp/bench_old.txt; \
	jq -r '.raw[]' $(BENCH_NEW) > /tmp/bench_new.txt; \
	echo "benchstat $(BENCH_OLD) vs $(BENCH_NEW):"; \
	if command -v benchstat >/dev/null 2>&1; then \
		benchstat /tmp/bench_old.txt /tmp/bench_new.txt; \
	else \
		$(GO) run golang.org/x/perf/cmd/benchstat@latest /tmp/bench_old.txt /tmp/bench_new.txt \
		|| echo "bench-compare: benchstat unavailable; raw snapshots: $(BENCH_OLD) $(BENCH_NEW)"; \
	fi; \
	echo ""; \
	echo "setup-storm allocs/op (BenchmarkEngineSetup, n=10k torus; the phase-setup trajectory):"; \
	for f in $(BENCH_OLD) $(BENCH_NEW); do \
		echo "  $$f:"; \
		jq -r '.raw[]' $$f | grep -E 'BenchmarkEngineSetup/family=torus' \
			| awk '{printf "    %-55s %s allocs/op\n", $$1, $$(NF-1)}' | sort -u; \
	done; \
	echo ""; \
	echo "network-setup ms/op (BenchmarkNetworkSetup ladder; the cold-construction trajectory):"; \
	for f in $(BENCH_OLD) $(BENCH_NEW); do \
		echo "  $$f:"; \
		jq -r '.raw[]' $$f | grep -E 'BenchmarkNetworkSetup/' \
			| awk '{printf "    %-40s %.1f ms/op  (%s allocs/op)\n", $$1, $$3/1e6, $$(NF-1)}' | sort -u; \
		jq -r '.raw[]' $$f | grep -qE 'BenchmarkNetworkSetup/' || echo "    (no BenchmarkNetworkSetup rows in this snapshot)"; \
	done; \
	echo ""; \
	echo "jobs throughput (BenchmarkJobThroughput; the multi-run serving trajectory):"; \
	for f in $(BENCH_OLD) $(BENCH_NEW); do \
		echo "  $$f:"; \
		jq -r '.raw[]' $$f | grep -E 'BenchmarkJobThroughput/' \
			| awk '{for (i=2; i<=NF; i++) if ($$i == "runs/sec") printf "    %-40s %s runs/sec\n", $$1, $$(i-1)}' | sort -u; \
		jq -r '.raw[]' $$f | grep -qE 'BenchmarkJobThroughput/' || echo "    (no BenchmarkJobThroughput rows in this snapshot)"; \
	done; \
	echo ""; \
	echo "skewed families (BenchmarkEngine star/powerlaw; ns/round and the shard-max/mean imbalance metric):"; \
	for f in $(BENCH_OLD) $(BENCH_NEW); do \
		echo "  $$f:"; \
		jq -r '.raw[]' $$f | grep -E 'BenchmarkEngine/family=(star|powerlaw)/' \
			| awk '{line = "    " $$1; for (i=2; i<=NF; i++) { if ($$i == "ns/round") line = line sprintf("  %s ns/round", $$(i-1)); if ($$i == "shard-max/mean") line = line sprintf("  %sx shard-max/mean", $$(i-1)) } print line}' | sort -u; \
		jq -r '.raw[]' $$f | grep -qE 'BenchmarkEngine/family=(star|powerlaw)/' || echo "    (no skewed-family rows in this snapshot)"; \
	done; \
	echo ""; \
	echo "bytes per edge slot (BenchmarkEngine bytes/slot; resident slot-array memory, Network.MemFootprint):"; \
	for f in $(BENCH_OLD) $(BENCH_NEW); do \
		echo "  $$f:"; \
		jq -r '.raw[]' $$f | grep -E 'BenchmarkEngine/family=' \
			| awk '{for (i=2; i<=NF; i++) if ($$i == "bytes/slot") printf "    %-55s %s bytes/slot\n", $$1, $$(i-1)}' | sort -u; \
		jq -r '.raw[]' $$f | grep -E 'BenchmarkEngine/family=' | grep -q 'bytes/slot' \
			|| echo "    (no bytes/slot metric in this snapshot — pre-PR-9 layout: 120 B of Incoming arrays + 16 B of int64 stamps per slot)"; \
	done; \
	echo ""; \
	echo "sparse-activity rounds (BenchmarkEngineSparse; ns/round under frontier drain vs the forced dense scan, at the row's awake fraction):"; \
	for f in $(BENCH_OLD) $(BENCH_NEW); do \
		echo "  $$f:"; \
		jq -r '.raw[]' $$f | grep -E 'BenchmarkEngineSparse/' \
			| awk '{line = "    " $$1; for (i=2; i<=NF; i++) { if ($$i == "ns/round") line = line sprintf("  %s ns/round", $$(i-1)); if ($$i == "awake%") line = line sprintf("  %s awake%%", $$(i-1)) } print line}' | sort -u; \
		jq -r '.raw[]' $$f | grep -qE 'BenchmarkEngineSparse/' \
			|| echo "    (no sparse-rounds rows — sparse execution landed in PR 10; BENCH_9.json and earlier are dense-only baselines)"; \
	done

# Allocation regression gate (nightly CI): the engine's steady-state round
# loop must stay allocation-free on the sequential engine and within pool
# overhead on the parallel one, and phase setup must stay at its two
# pinned workload-side allocations (the closure and counter documented on
# BenchmarkEngineSetup). Ceilings carry small headroom over the pinned
# values (0 / 31 / 52 / 2) so scheduler wobble in the pool rows doesn't
# flake the gate; a layout or setup regression blows straight past them.
# The BenchmarkEngineSparse rows extend the gate to sparse execution: a
# whole multi-thousand-round sequential phase is pinned at literally 0
# allocs/op (frontier drain, dirty merge, and overflow fallback all run in
# preallocated state), and the parallel rows stay within the same pool
# overhead as the dense storm (29 measured, 40 ceiling).
bench-allocs-check:
	@$(GO) test -run='^$$' -bench='^BenchmarkEngine$$|^BenchmarkEngineSetup$$|^BenchmarkEngineSparse$$' -benchmem -benchtime=5x ./internal/congest/ \
		| tee /tmp/bench_allocs.txt \
		| awk ' \
		/^Benchmark/ { \
			limit = -1; \
			if ($$1 ~ /^BenchmarkEngineSetup\//) { if ($$1 ~ /proc=shared/) limit = 4 } \
			else if ($$1 ~ /^BenchmarkEngineSparse\//) { \
				if ($$1 ~ /workers=1($$|-)/) limit = 0; \
				else if ($$1 ~ /workers=4($$|-)/) limit = 40; \
			} \
			else if ($$1 ~ /^BenchmarkEngine\//) { \
				if ($$1 ~ /workers=1($$|-)/) limit = 2; \
				else if ($$1 ~ /workers=4($$|-)/) limit = 40; \
				else if ($$1 ~ /workers=8($$|-)/) limit = 64; \
			} \
			if (limit < 0) next; \
			allocs = ""; \
			for (i = 2; i <= NF; i++) if ($$i == "allocs/op") allocs = $$(i-1); \
			if (allocs == "") next; \
			checked++; \
			if (allocs + 0 > limit) { printf "bench-allocs-check: %s at %s allocs/op exceeds pinned ceiling %d\n", $$1, allocs, limit; fail = 1 } \
		} \
		END { \
			if (checked == 0) { print "bench-allocs-check: no benchmark rows parsed"; exit 1 } \
			if (fail) exit 1; \
			printf "bench-allocs-check: %d rows within pinned allocs/op ceilings\n", checked \
		}'

# Every package must carry its package comment in a doc.go file, so
# `go doc` stays useful and docs don't drift into scattered lead files.
# Run in CI on every push/PR (part of `make check`).
docs-check:
	@fail=0; \
	for d in internal/*/ cmd/*/; do \
		if [ ! -f "$$d"doc.go ]; then \
			echo "docs-check: $${d}doc.go missing"; fail=1; \
		elif ! grep -Eq '^// (Package|Command) ' "$$d"doc.go; then \
			echo "docs-check: $${d}doc.go lacks a '// Package ...' comment"; fail=1; \
		fi; \
	done; \
	[ $$fail -eq 0 ] && echo "docs-check: all packages carry doc.go package comments"; \
	exit $$fail

check: build vet docs-check test-race
