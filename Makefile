# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets: `make check` on every push/PR, `make test-full` nightly.

GO ?= go

.PHONY: build vet test test-race test-full bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast suite: every package, seconds of wall clock.
test:
	$(GO) test -short ./...

# Fast suite under the race detector — the standing check on the parallel
# CONGEST engine (internal/congest/parallel.go).
test-race:
	$(GO) test -race -short ./...

# Full suite, including the multi-second experiment sweeps.
test-full:
	$(GO) test ./...

# Engine benchmarks: sequential vs parallel on an n=10k graph.
bench:
	$(GO) test -run='^$$' -bench=BenchmarkEngine -benchmem ./internal/congest/

check: build vet test-race
