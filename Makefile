# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets: `make check` on every push/PR, `make test-full` nightly.

GO ?= go

.PHONY: build vet test test-race test-full bench bench-smoke check

# PR number stamped into benchmark snapshots (BENCH_$(PR).json), and the
# provenance note recorded inside; override both per perf PR, e.g.
#   make bench PR=5 BENCH_NOTE="batched wake scan; vs BENCH_2: ..."
PR ?= 2
BENCH_NOTE ?= engine benchmark snapshot (PR $(PR)); compare against the previous BENCH_<n>.json via benchstat

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast suite: every package, seconds of wall clock.
test:
	$(GO) test -short ./...

# Fast suite under the race detector — the standing check on the parallel
# CONGEST engine (internal/congest/parallel.go).
test-race:
	$(GO) test -race -short ./...

# Full suite, including the multi-second experiment sweeps.
test-full:
	$(GO) test ./...

# Engine benchmarks (graph-family x worker-count matrix on n=10k graphs),
# snapshotted to a benchstat-friendly BENCH_$(PR).json for the perf
# trajectory. Replay into benchstat with: jq -r '.raw[]' BENCH_$(PR).json
bench:
	$(GO) test -run='^$$' -bench=BenchmarkEngine -benchmem -benchtime=5x -count=3 ./internal/congest/ \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchsnap -o BENCH_$(PR).json -note "$(BENCH_NOTE)"

# One-iteration pass over every benchmark in the repo: keeps benchmark code
# compiling and running between perf PRs (nightly CI).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

check: build vet test-race
