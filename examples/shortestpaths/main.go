// Approximate SSSP (Corollary 1.5): the β tradeoff between rounds and
// approximation quality, against exact Bellman-Ford and offline Dijkstra.
//
// Run: go run ./examples/shortestpaths
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/sssp"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomizeWeights(graph.Path(200), 50, rng)
	exact := g.Dijkstra(0)

	for _, beta := range []float64{0, 0.5, 1.0} {
		net := congest.NewNetwork(g, 5)
		engine, err := core.NewEngine(net, core.Randomized)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sssp.Approx(engine, 0, beta)
		if err != nil {
			log.Fatal(err)
		}
		worst := 1.0
		for v := 0; v < g.N(); v++ {
			if exact[v] > 0 {
				if r := float64(res.Dist[v]) / float64(exact[v]); r > worst {
					worst = r
				}
			}
		}
		fmt.Printf("beta=%.1f: meta-rounds=%3d  worst ratio=%.2f  rounds=%d\n",
			beta, res.MetaRounds, worst, net.Total().Rounds)
	}

	net := congest.NewNetwork(g, 5)
	engine, err := core.NewEngine(net, core.Randomized)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sssp.BellmanFord(engine, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact Bellman-Ford: rounds=%d (pays the full hop diameter)\n", net.Total().Rounds)
}
