// The Figure 2 lower-bound demonstration (Section 3.1): on the grid-star
// instance, the prior-work block-push aggregation pays Θ(nD) messages per
// call while the sub-part algorithm pays Θ̃(n).
//
// Run: go run ./examples/badexample
package main

import (
	"fmt"
	"log"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
)

func main() {
	for _, rows := range []int{6, 12, 24} {
		cols := 8 * rows
		g := graph.GridStar(rows, cols)
		parts := graph.GridStarRowParts(rows, cols)
		var push, ours int64
		for _, blockPush := range []bool{true, false} {
			net := congest.NewNetwork(g, int64(100+rows))
			engine, err := core.NewEngineAt(net, core.Randomized, g.N()-1) // root at the apex, as in Fig. 2a
			if err != nil {
				log.Fatal(err)
			}
			in, err := part.FromDense(net, parts)
			if err != nil {
				log.Fatal(err)
			}
			if err := part.ElectLeaders(net, in, int64(16*g.N()+4096)); err != nil {
				log.Fatal(err)
			}
			vals := make([]congest.Val, g.N())
			for v := range vals {
				vals[v] = congest.Val{A: int64(v)}
			}
			var inf *core.Infra
			if blockPush {
				inf, err = engine.BuildInfraOpts(in, core.InfraOptions{SingletonSubParts: true})
			} else {
				inf, err = engine.BuildInfra(in)
			}
			if err != nil {
				log.Fatal(err)
			}
			net.ResetMetrics()
			if blockPush {
				_, err = engine.BlockPushAggregate(inf, vals, congest.SumPair)
			} else {
				_, err = engine.SolveWithInfra(inf, vals, congest.SumPair)
			}
			if err != nil {
				log.Fatal(err)
			}
			if blockPush {
				push = net.Total().Messages
			} else {
				ours = net.Total().Messages
			}
		}
		n := g.N()
		fmt.Printf("rows=%2d n=%5d: block-push %7d msgs (%5.1f/node)  sub-parts %7d msgs (%5.1f/node)  gap %.2fx\n",
			rows, n, push, float64(push)/float64(n), ours, float64(ours)/float64(n),
			float64(push)/float64(ours))
	}
}
