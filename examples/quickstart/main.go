// Quickstart: solve one Part-Wise Aggregation instance (Definition 1.1).
//
// A 6x30 grid is partitioned into its six rows; every node holds a value;
// after Solve every node knows the sum of its row's values, computed in the
// CONGEST model with the paper's round- and message-optimal machinery.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/part"
)

func main() {
	const rows, cols = 6, 30
	g := graph.Grid(rows, cols)
	net := congest.NewNetwork(g, 42)

	// Engine setup: leader election + BFS tree (shared by every PA call).
	engine, err := core.NewEngine(net, core.Randomized)
	if err != nil {
		log.Fatal(err)
	}

	// The PA instance: one part per grid row, leaders elected in-part.
	in, err := part.FromDense(net, graph.StripePartition(rows, cols))
	if err != nil {
		log.Fatal(err)
	}
	if err := part.ElectLeaders(net, in, 100000); err != nil {
		log.Fatal(err)
	}

	// Each node contributes its own index; f = component-wise sum.
	vals := make([]congest.Val, g.N())
	for v := range vals {
		vals[v] = congest.Val{A: int64(v), B: 1}
	}
	res, err := engine.Solve(in, vals, congest.SumPair)
	if err != nil {
		log.Fatal(err)
	}

	for r := 0; r < rows; r++ {
		v := r * cols // first node of the row
		fmt.Printf("row %d: sum=%d count=%d\n", r, res.Values[v].A, res.Values[v].B)
	}
	fmt.Printf("costs: %d rounds, %d messages (m=%d)\n",
		net.Total().Rounds, net.Total().Messages, g.M())
}
