// Graph verification (Corollary A.1): Thurimella-style component labeling
// via Part-Wise Aggregation, then spanning-tree and bipartiteness checks.
//
// Run: go run ./examples/networkverify
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/verify"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomizeWeights(graph.RandomConnected(100, 0.05, rng), 100, rng)

	// Candidate subgraph H: the true MST (should verify as spanning tree).
	keep := make([]bool, g.M())
	for _, i := range g.KruskalMST() {
		keep[i] = true
	}

	net := congest.NewNetwork(g, 11)
	engine, err := core.NewEngine(net, core.Randomized)
	if err != nil {
		log.Fatal(err)
	}
	h := verify.SubgraphFromEdges(engine, keep)
	lab, err := verify.ComponentLabels(engine, h)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := verify.SpanningTree(engine, h, lab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("H = MST of G: spanning tree? %v\n", ok)

	bip, err := verify.Bipartite(engine, h, lab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("H = MST of G: bipartite? %v (trees always are)\n", bip)

	// Break the tree: remove one edge, verify again on a fresh network.
	for i := range keep {
		if keep[i] {
			keep[i] = false
			break
		}
	}
	net2 := congest.NewNetwork(g, 12)
	engine2, err := core.NewEngine(net2, core.Randomized)
	if err != nil {
		log.Fatal(err)
	}
	h2 := verify.SubgraphFromEdges(engine2, keep)
	lab2, err := verify.ComponentLabels(engine2, h2)
	if err != nil {
		log.Fatal(err)
	}
	ok2, err := verify.SpanningTree(engine2, h2, lab2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("H minus one edge: spanning tree? %v\n", ok2)
	fmt.Printf("costs: %d rounds, %d messages\n", net2.Total().Rounds, net2.Total().Messages)
}
