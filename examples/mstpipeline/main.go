// MST pipeline (Corollary 1.3): distributed Borůvka over Part-Wise
// Aggregation on a random weighted graph, verified against Kruskal.
//
// Run: go run ./examples/mstpipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shortcutpa/internal/congest"
	"shortcutpa/internal/core"
	"shortcutpa/internal/graph"
	"shortcutpa/internal/mst"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomizeWeights(graph.RandomConnected(150, 0.03, rng), 500, rng)
	net := congest.NewNetwork(g, 7)
	engine, err := core.NewEngine(net, core.Randomized)
	if err != nil {
		log.Fatal(err)
	}

	res, err := mst.Run(engine, mst.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d m=%d D=%d\n", g.N(), g.M(), engine.D)
	fmt.Printf("Borůvka phases: %d\n", res.Phases)
	fmt.Printf("MST weight: %d (Kruskal oracle: %d)\n", res.Weight, g.MSTWeight())
	fmt.Printf("rounds: %d, messages: %d (%.1fx m)\n",
		net.Total().Rounds, net.Total().Messages,
		float64(net.Total().Messages)/float64(g.M()))
	if res.Weight != g.MSTWeight() {
		log.Fatal("MST mismatch!")
	}
	fmt.Println("distributed MST matches the offline oracle ✓")
}
