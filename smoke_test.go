package main

import (
	"testing"

	"shortcutpa/internal/bench"
)

// benchmarkIDs are the experiment IDs the benchmarks in bench_test.go
// reference; keep in sync with the runExperiment call sites.
var benchmarkIDs = []string{"T1", "T2", "F2", "C13", "C14", "C15", "A1", "A3", "ABL"}

// TestBenchmarkExperimentIDsExist pins every benchmark's experiment ID to a
// registered experiment, so renaming an experiment cannot silently turn a
// benchmark into a b.Fatalf at bench time.
func TestBenchmarkExperimentIDsExist(t *testing.T) {
	all := bench.Experiments()
	for _, id := range benchmarkIDs {
		if _, ok := all[id]; !ok {
			t.Errorf("benchmark references unknown experiment %q", id)
		}
	}
	if len(all) != len(benchmarkIDs) {
		t.Errorf("bench registers %d experiments but benchmarks cover %d — add the missing benchmark",
			len(all), len(benchmarkIDs))
	}
}
