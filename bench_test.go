// Root benchmark harness: one testing.B benchmark per paper table / figure
// (the DESIGN.md Section 4 experiment index). Each benchmark runs the
// corresponding experiment and reports the headline simulation costs as
// custom metrics, so `go test -bench=. -benchmem` regenerates every
// reproduction artifact in one sweep. cmd/pabench prints the same
// experiments as full tables.
package main

import (
	"strconv"
	"testing"

	"shortcutpa/internal/bench"
)

// runExperiment executes one experiment per benchmark iteration and
// reports the sum of a numeric column as a custom metric.
func runExperiment(b *testing.B, id string, metricCol int, metricName string) {
	b.Helper()
	fn, ok := bench.Experiments()[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		table, err := fn(12345)
		if err != nil {
			b.Fatal(err)
		}
		total := 0.0
		for _, row := range table.Rows {
			if metricCol < len(row) {
				if v, err := strconv.ParseFloat(row[metricCol], 64); err == nil {
					total += v
				}
			}
		}
		last = total
	}
	b.ReportMetric(last, metricName)
}

// BenchmarkTable1ShortcutQuality regenerates Table 1: measured block
// parameter and congestion of constructed shortcuts per graph family.
func BenchmarkTable1ShortcutQuality(b *testing.B) {
	runExperiment(b, "T1", 8, "sum-congestion")
}

// BenchmarkTable2PARounds regenerates Table 2: PA round complexity per
// family, randomized and deterministic.
func BenchmarkTable2PARounds(b *testing.B) {
	runExperiment(b, "T2", 5, "sum-rand-rounds")
}

// BenchmarkFigure2BadExample regenerates the Figure 2 / Section 3.1
// message-separation demonstration.
func BenchmarkFigure2BadExample(b *testing.B) {
	runExperiment(b, "F2", 7, "sum-gap")
}

// BenchmarkCorollary13MST regenerates the MST experiment.
func BenchmarkCorollary13MST(b *testing.B) {
	runExperiment(b, "C13", 5, "sum-pa-rounds")
}

// BenchmarkCorollary14MinCut regenerates the approximate min-cut
// experiment.
func BenchmarkCorollary14MinCut(b *testing.B) {
	runExperiment(b, "C14", 5, "sum-ratio")
}

// BenchmarkCorollary15SSSP regenerates the approximate SSSP experiment.
func BenchmarkCorollary15SSSP(b *testing.B) {
	runExperiment(b, "C15", 2, "sum-meta-rounds")
}

// BenchmarkCorollaryA1Verification regenerates the graph-verification
// experiment.
func BenchmarkCorollaryA1Verification(b *testing.B) {
	runExperiment(b, "A1", 4, "sum-rounds")
}

// BenchmarkCorollaryA3KDominatingSet regenerates the k-dominating-set
// experiment.
func BenchmarkCorollaryA3KDominatingSet(b *testing.B) {
	runExperiment(b, "A3", 3, "sum-size")
}

// BenchmarkAblations regenerates the Section 3.2 design-choice ablations.
func BenchmarkAblations(b *testing.B) {
	runExperiment(b, "ABL", 2, "sum-messages")
}
